"""Legacy setup shim.

The execution environment has no `wheel` package, so PEP 660 editable
installs fail; `pip install -e . --no-build-isolation` falls back to this
file via `--no-use-pep517` when needed. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
