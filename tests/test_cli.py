"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.network.generators import grid_network
from repro.network.io import write_network
from repro.search import list_engines


@pytest.fixture()
def map_file(tmp_path):
    path = tmp_path / "city.txt"
    write_network(grid_network(10, 10, perturbation=0.1, seed=9), path)
    return str(path)


class TestGenerate:
    @pytest.mark.parametrize(
        "topology,extra",
        [
            ("grid", ["--width", "6", "--height", "5"]),
            ("geometric", ["--nodes", "120", "--radius", "0.15"]),
            ("ring-radial", ["--rings", "3", "--spokes", "6"]),
            ("tiger", ["--blocks", "2", "--block-size", "4"]),
        ],
    )
    def test_generates_readable_map(self, tmp_path, capsys, topology, extra):
        out = str(tmp_path / "net.txt")
        code = main(["generate", topology, *extra, "-o", out])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["summarize", out]) == 0

    def test_output_required(self):
        with pytest.raises(SystemExit):
            main(["generate", "grid"])


class TestSummarize:
    def test_prints_stats(self, map_file, capsys):
        assert main(["summarize", map_file]) == 0
        out = capsys.readouterr().out
        assert "nodes:            100" in out
        assert "road-like:        yes" in out

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["summarize", "/does/not/exist.txt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRoute:
    # Every registered engine, never a hard-coded subset: a new engine
    # must be routable from the CLI the moment it enters ENGINES.
    @pytest.mark.parametrize("engine", list_engines())
    def test_engines_agree(self, map_file, capsys, engine):
        assert main(["route", map_file, "0", "99", "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert "distance:" in out
        assert "route: 0" in out

    def test_avoid_highways_flag(self, map_file, capsys):
        assert main(["route", map_file, "0", "99", "--avoid-highways"]) == 0
        assert "distance:" in capsys.readouterr().out

    def test_no_path_reports_error(self, tmp_path, capsys):
        from repro.network.graph import RoadNetwork

        net = RoadNetwork()
        net.add_node(0, 0, 0)
        net.add_node(1, 1, 0)
        path = tmp_path / "disconnected.txt"
        write_network(net, path)
        assert main(["route", str(path), "0", "1"]) == 1
        assert "no path" in capsys.readouterr().err


class TestProtect:
    def test_protected_query_output(self, map_file, capsys):
        assert main(
            ["protect", map_file, "0", "99", "--f-s", "3", "--f-t", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "breach probability: 0.1667" in out
        assert "server saw S" in out

    def test_protection_of_one_is_direct(self, map_file, capsys):
        assert main(
            ["protect", map_file, "0", "99", "--f-s", "1", "--f-t", "1"]
        ) == 0
        assert "breach probability: 1.0000" in capsys.readouterr().out

    def test_protect_with_ch_engine(self, map_file, capsys):
        assert main(
            ["protect", map_file, "0", "99", "--engine", "ch"]
        ) == 0
        out = capsys.readouterr().out
        assert "distance:" in out
        assert "server saw S" in out


class TestPartition:
    def test_prints_stats_and_writes_file(self, map_file, tmp_path, capsys):
        out = str(tmp_path / "city.part")
        code = main(
            ["partition", map_file, "--cell-capacity", "20", "-o", out]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "cells:" in text
        assert "cut edges:" in text
        assert "wrote partition to" in text
        from repro.network.io import read_network, read_partition

        net = read_network(map_file)
        partition = read_partition(out, net)
        assert partition.cell_capacity == 20
        assert partition.num_nodes == net.num_nodes

    def test_stats_only_without_output(self, map_file, capsys):
        assert main(["partition", map_file, "--method", "bfs"]) == 0
        assert "boundary nodes:" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flag,value", [("--cell-capacity", "0"), ("--refine-rounds", "-1")]
    )
    def test_invalid_arguments_fail_cleanly(self, map_file, capsys, flag, value):
        assert main(["partition", map_file, flag, value]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["partition", "/does/not/exist.txt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestWorkload:
    def test_writes_readable_workload(self, map_file, tmp_path, capsys):
        out = str(tmp_path / "rush.txt")
        assert main(["workload", map_file, "-o", out, "--count", "10"]) == 0
        assert "wrote 10 hotspot queries" in capsys.readouterr().out
        from repro.workloads.replay import read_workload

        entries = read_workload(out)
        assert len(entries) == 10
        assert all(e.setting.f_s == 3 for e in entries)


class TestScenario:
    def test_writes_v2_traffic_file(self, map_file, tmp_path, capsys):
        out = tmp_path / "churn.txt"
        assert main(
            [
                "scenario", "uniform", map_file, "-o", str(out),
                "--duration-ms", "500", "--events", "10",
            ]
        ) == 0
        assert "wrote 10 uniform traffic events" in capsys.readouterr().out
        assert out.read_text().startswith("# repro workload v2\n")
        from repro.workloads.replay import TrafficEvent, read_workload_items

        items = read_workload_items(out)
        assert len(items) == 10
        assert all(isinstance(i, TrafficEvent) for i in items)
        assert [i.at_ms for i in items] == sorted(i.at_ms for i in items)

    def test_merge_workload_interleaves_queries(
        self, map_file, tmp_path, capsys
    ):
        queries = str(tmp_path / "queries.txt")
        assert main(
            ["workload", map_file, "-o", queries, "--count", "6"]
        ) == 0
        out = tmp_path / "rush.txt"
        assert main(
            [
                "scenario", "morning-rush", map_file, "-o", str(out),
                "--duration-ms", "1000", "--events", "12",
                "--merge-workload", queries,
            ]
        ) == 0
        assert "12 morning-rush traffic events and 6 queries" in (
            capsys.readouterr().out
        )
        from repro.workloads.replay import TrafficEvent, read_workload_items

        items = read_workload_items(out)
        flags = [isinstance(i, TrafficEvent) for i in items]
        assert flags.count(True) == 12
        assert flags.count(False) == 6
        # Queries are spread through the stream, not appended at one end.
        first_q, last_q = flags.index(False), len(flags) - 1 - flags[::-1].index(False)
        assert any(flags[:first_q]) and any(flags[last_q + 1 :])

    def test_unknown_scenario_rejected_by_parser(self, map_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["scenario", "gridlock", map_file, "-o", str(tmp_path / "x")]
            )

    def test_bad_duration_fails_cleanly(self, map_file, tmp_path, capsys):
        assert main(
            [
                "scenario", "uniform", map_file,
                "-o", str(tmp_path / "x.txt"), "--duration-ms", "0",
            ]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestServeReplay:
    @pytest.fixture()
    def workload_file(self, map_file, tmp_path):
        out = str(tmp_path / "rush.txt")
        assert main(
            ["workload", map_file, "-o", out, "--count", "8", "--kind", "uniform"]
        ) == 0
        return out

    def test_replay_reports_latency_and_hit_rates(
        self, map_file, workload_file, capsys
    ):
        assert main(
            [
                "serve-replay", map_file, workload_file,
                "--engine", "dijkstra", "--repeat", "3", "--batch", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "latency p50/p95/p99" in out
        assert "result cache:        16 hits, 8 misses" in out
        assert "hit rate 67%" in out

    def test_replay_with_preprocessing_engine(
        self, map_file, workload_file, capsys
    ):
        assert main(
            ["serve-replay", map_file, workload_file, "--engine", "ch"]
        ) == 0
        out = capsys.readouterr().out
        assert "preprocessing cache:" in out

    def test_replay_with_coalescing_reports_windows(
        self, map_file, workload_file, capsys
    ):
        assert main(
            [
                "serve-replay", map_file, workload_file,
                "--engine", "dijkstra", "--batch", "8",
                "--coalesce-window", "8", "--coalesce-wait-ms", "50",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "coalescing:" in out
        assert "union passes" in out

    def test_replay_without_coalescing_omits_window_report(
        self, map_file, workload_file, capsys
    ):
        assert main(["serve-replay", map_file, workload_file]) == 0
        assert "coalescing:" not in capsys.readouterr().out

    def test_empty_workload_fails_cleanly(self, map_file, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("# repro workload v1\n")
        assert main(["serve-replay", map_file, str(empty)]) == 1
        assert "error: empty workload" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag,value",
        [("--batch", "0"), ("--repeat", "0"), ("--concurrency", "0"),
         ("--result-capacity", "-1"), ("--coalesce-window", "-1"),
         ("--coalesce-wait-ms", "-0.5")],
    )
    def test_bad_flags_fail_cleanly(
        self, map_file, workload_file, capsys, flag, value
    ):
        assert main(["serve-replay", map_file, workload_file, flag, value]) == 1
        assert "error:" in capsys.readouterr().err

    def test_telemetry_outputs_written(
        self, map_file, workload_file, tmp_path, capsys
    ):
        import json

        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "traces.jsonl"
        assert main(
            [
                "serve-replay", map_file, workload_file,
                "--engine", "dijkstra-csr", "--repeat", "2", "--batch", "4",
                "--metrics-out", str(metrics_out),
                "--trace-out", str(trace_out),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote metrics to {metrics_out}" in out
        assert f"trace trees to {trace_out}" in out
        doc = json.loads(metrics_out.read_text(encoding="utf-8"))
        assert "repro_server_queries_served_total" in doc["metrics"]
        assert "repro_result_cache_hits_total" in doc["metrics"]
        assert "repro_kernel_csr_dijkstra_to_many_calls_total" in doc["metrics"]
        roots = [
            json.loads(line)
            for line in trace_out.read_text(encoding="utf-8").splitlines()
        ]
        assert roots
        assert all(r["name"] == "serve.answer_batch" for r in roots)

    def test_mixed_workload_drives_the_traffic_pipeline(
        self, map_file, workload_file, tmp_path, capsys
    ):
        mixed = str(tmp_path / "mixed.txt")
        assert main(
            [
                "scenario", "uniform", map_file, "-o", mixed,
                "--duration-ms", "200", "--events", "10",
                "--merge-workload", workload_file,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "serve-replay", map_file, mixed,
                "--engine", "overlay-csr", "--repeat", "2", "--batch", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "traffic pipeline:" in out
        assert "20 events" in out  # 10 per repeat, re-published each pass
        assert "staleness p50/p95/max" in out

    def test_churn_flag_feeds_synthetic_traffic(
        self, map_file, workload_file, capsys
    ):
        assert main(
            [
                "serve-replay", map_file, workload_file,
                "--engine", "overlay-csr", "--repeat", "2",
                "--churn-cells-per-min", "6000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "traffic pipeline:" in out
        assert "staleness p50/p95/max" in out

    def test_query_only_replay_omits_pipeline_report(
        self, map_file, workload_file, capsys
    ):
        assert main(["serve-replay", map_file, workload_file]) == 0
        assert "traffic pipeline:" not in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flag,value",
        [("--churn-cells-per-min", "-1"), ("--debounce-ms", "-0.5")],
    )
    def test_bad_pipeline_flags_fail_cleanly(
        self, map_file, workload_file, capsys, flag, value
    ):
        assert main(["serve-replay", map_file, workload_file, flag, value]) == 1
        assert "error:" in capsys.readouterr().err

    def test_slow_query_log_emits_json(
        self, map_file, workload_file, capsys
    ):
        import json

        assert main(
            [
                "serve-replay", map_file, workload_file,
                "--engine", "dijkstra", "--slow-query-ms", "0",
            ]
        ) == 0
        lines = [
            line for line in capsys.readouterr().err.splitlines() if line
        ]
        assert lines, "threshold 0 must flag every root as slow"
        doc = json.loads(lines[0])
        assert "slow span" in doc["message"]
        assert doc["span"]["name"] == "serve.answer_batch"


class TestObsReport:
    @pytest.fixture()
    def telemetry_files(self, map_file, tmp_path):
        out = str(tmp_path / "rush.txt")
        assert main(
            ["workload", map_file, "-o", out, "--count", "6", "--kind", "uniform"]
        ) == 0
        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "traces.jsonl"
        assert main(
            [
                "serve-replay", map_file, out,
                "--metrics-out", str(metrics_out),
                "--trace-out", str(trace_out),
            ]
        ) == 0
        return str(metrics_out), str(trace_out)

    def test_reports_instruments_and_span_percentiles(
        self, telemetry_files, capsys
    ):
        metrics_out, trace_out = telemetry_files
        capsys.readouterr()  # drop the serve-replay output
        assert main(
            ["obs-report", "--metrics", metrics_out, "--traces", trace_out]
        ) == 0
        out = capsys.readouterr().out
        assert "instruments from" in out
        assert "repro_server_queries_served_total" in out
        assert "serve.answer_batch" in out
        assert "p95=" in out
        assert "slowest" in out

    def test_requires_at_least_one_input(self, capsys):
        assert main(["obs-report"]) == 1
        assert "error:" in capsys.readouterr().err


class TestExperiment:
    def test_runs_selected_experiment(self, capsys):
        assert main(["experiment", "e1"]) == 0
        assert "[E1]" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E42"]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "generate",
            "summarize",
            "route",
            "protect",
            "workload",
            "scenario",
            "serve-replay",
            "obs-report",
            "experiment",
        ):
            assert command in text

    def test_module_entrypoint_importable(self):
        import repro.__main__  # noqa: F401
