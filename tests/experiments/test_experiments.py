"""Tests for the experiment suite: each experiment runs (small config) and
its table exhibits the paper-expected shape."""

from __future__ import annotations

import pytest

from repro.experiments import (
    e1_breach,
    e2_processing_cost,
    e3_mechanism_comparison,
    e4_independent_vs_shared,
    e5_collusion,
    e6_scalability,
    e7_endpoint_strategies,
    e8_clustering,
    e9_cost_model,
    e13_partition_overlay,
    e14_pipeline,
    e15_parallel_customization,
)
from repro.experiments.harness import ExperimentResult, run_all
from repro.experiments.tables import format_table, format_value


class TestE1Breach:
    @pytest.fixture(scope="class")
    def result(self):
        config = e1_breach.Config(
            grid_width=15,
            grid_height=15,
            num_queries=8,
            settings=[(1, 1), (2, 3), (3, 3)],
            trials_per_record=150,
        )
        return e1_breach.run(config)

    def test_analytic_matches_definition_2(self, result):
        for row in result.rows:
            assert row["analytic_breach"] == pytest.approx(
                1 / (row["f_s"] * row["f_t"])
            )

    def test_empirical_tracks_analytic(self, result):
        for row in result.rows:
            assert row["empirical_breach"] == pytest.approx(
                row["analytic_breach"], abs=0.06
            )

    def test_breach_decreases_with_power(self, result):
        breaches = result.column("analytic_breach")
        assert breaches == sorted(breaches, reverse=True)


class TestE2ProcessingCost:
    @pytest.fixture(scope="class")
    def result(self):
        config = e2_processing_cost.Config(
            grid_width=20,
            grid_height=20,
            num_queries=4,
            f_t_values=[1, 2, 4],
            min_query_distance=5.0,
            max_query_distance=9.0,
        )
        return e2_processing_cost.run(config)

    def test_shared_never_worse_than_naive(self, result):
        for row in result.rows:
            assert row["shared_settled"] <= row["naive_settled"]

    def test_speedup_widens_with_f_t(self, result):
        speedups = result.column("speedup")
        assert speedups[-1] > speedups[0]

    def test_equal_at_single_destination(self, result):
        row = result.rows[0]
        assert row["f_t"] == 1
        assert row["speedup"] == pytest.approx(1.0)

    def test_ch_amortizes_across_the_batch(self, result):
        # CH pays one bounded sweep per endpoint, so its cost grows more
        # slowly in |T| than the naive per-pair searches do...
        first, last = result.rows[0], result.rows[-1]
        ch_growth = last["ch_settled"] / max(first["ch_settled"], 1)
        naive_growth = last["naive_settled"] / max(first["naive_settled"], 1)
        assert ch_growth < naive_growth
        # ...and beats naive outright at every |T|.
        for row in result.rows:
            assert row["ch_settled"] < row["naive_settled"]


class TestE3MechanismComparison:
    @pytest.fixture(scope="class")
    def result(self):
        config = e3_mechanism_comparison.Config(
            grid_width=15, grid_height=15, num_queries=6,
            min_query_distance=4.0, max_query_distance=9.0,
        )
        return e3_mechanism_comparison.run(config)

    def _row(self, result, mechanism):
        return next(r for r in result.rows if r["mechanism"] == mechanism)

    def test_direct_exact_but_breached(self, result):
        row = self._row(result, "direct")
        assert row["exact_rate"] == 1.0
        assert row["mean_breach"] == 1.0

    def test_landmark_private_but_irrelevant(self, result):
        row = self._row(result, "landmark")
        assert row["mean_breach"] == 0.0
        assert row["exact_rate"] < 1.0
        assert row["mean_displacement"] > 0

    def test_opaque_exact_private_and_cheaper_than_plain(self, result):
        opaque = self._row(result, "opaque")
        plain = self._row(result, "plain-obfuscation")
        assert opaque["exact_rate"] == 1.0
        assert opaque["mean_breach"] == pytest.approx(plain["mean_breach"])
        assert opaque["settled_nodes"] < plain["settled_nodes"]
        assert opaque["traffic_bytes"] < plain["traffic_bytes"]


class TestE4IndependentVsShared:
    @pytest.fixture(scope="class")
    def result(self):
        config = e4_independent_vs_shared.Config(
            grid_width=20, grid_height=20, k_values=[1, 4, 8]
        )
        return e4_independent_vs_shared.run(config)

    def test_shared_is_single_query(self, result):
        for row in result.rows:
            assert row["shared_queries"] == 1
            assert row["indep_queries"] == row["k"]

    def test_shared_cheaper_at_scale(self, result):
        last = result.rows[-1]
        assert last["shared_settled"] < last["indep_settled"]

    def test_shared_breach_drops_with_k(self, result):
        last = result.rows[-1]
        assert last["shared_breach"] < last["indep_breach"]


class TestE5Collusion:
    @pytest.fixture(scope="class")
    def result(self):
        config = e5_collusion.Config(
            grid_width=15, grid_height=15,
            num_participants=6, colluder_counts=[0, 2, 4], f_s=6, f_t=6,
        )
        return e5_collusion.run(config)

    def test_independent_collapses_under_pool_compromise(self, result):
        for row in result.rows:
            assert row["indep_breach_pool"] == 1.0

    def test_shared_degrades_gracefully(self, result):
        breaches = [row["shared_breach_pool"] for row in result.rows]
        assert breaches == sorted(breaches)  # worsens with m...
        assert all(b < 1.0 for b in breaches)  # ...but never collapses

    def test_shared_formula(self, result):
        k = 6
        for row in result.rows:
            expected = 1.0 / ((k - row["m"]) ** 2)
            assert row["shared_breach_pool"] == pytest.approx(expected)


class TestE6Scalability:
    @pytest.fixture(scope="class")
    def result(self):
        config = e6_scalability.Config(grid_sizes=[12, 20], num_queries=3)
        return e6_scalability.run(config)

    def test_ranking_preserved_at_every_size(self, result):
        for row in result.rows:
            assert row["shared_settled"] <= row["naive_settled"]
            assert row["side_settled"] <= row["shared_settled"]

    def test_cost_grows_with_size(self, result):
        assert result.rows[-1]["naive_settled"] > result.rows[0]["naive_settled"]

    def test_ch_speedup_widens_with_size(self, result):
        assert result.rows[-1]["ch_speedup"] > result.rows[0]["ch_speedup"]
        for row in result.rows:
            assert row["ch_settled"] < row["shared_settled"]


class TestE7EndpointStrategies:
    @pytest.fixture(scope="class")
    def result(self):
        config = e7_endpoint_strategies.Config(
            grid_width=15, grid_height=15, num_queries=6
        )
        return e7_endpoint_strategies.run(config)

    def _row(self, result, name):
        return next(r for r in result.rows if r["strategy"] == name)

    def test_compact_cheapest_uniform_not(self, result):
        compact = self._row(result, "compact")["cost_inflation"]
        uniform = self._row(result, "uniform")["cost_inflation"]
        assert compact < uniform

    def test_popularity_restores_breach_bound(self, result):
        pop = self._row(result, "popularity")
        uni = self._row(result, "uniform")
        assert abs(pop["breach_excess"]) < abs(uni["breach_excess"])


class TestE8Clustering:
    @pytest.fixture(scope="class")
    def result(self):
        config = e8_clustering.Config(
            grid_width=20, grid_height=20, num_requests=10,
            diameter_bounds=[3.0, float("inf")],
        )
        return e8_clustering.run(config)

    def test_tighter_bound_more_clusters(self, result):
        clusters = result.column("clusters")
        assert clusters[0] >= clusters[-1]
        assert clusters[-1] == 1

    def test_looser_bound_better_privacy(self, result):
        breaches = result.column("mean_breach")
        assert breaches[-1] <= breaches[0]


class TestE9CostModel:
    @pytest.fixture(scope="class")
    def result(self):
        config = e9_cost_model.Config(
            grid_width=30, grid_height=30, queries_per_band=6,
            distance_bands=[(2, 4), (6, 10), (12, 18)],
        )
        return e9_cost_model.run(config)

    def test_cost_grows_superlinearly(self, result):
        rows = result.rows
        # Between the first and last band the distance ratio is ~4x; a
        # quadratic law predicts ~16x cost. Require clearly superlinear.
        d_ratio = rows[-1]["mean_distance"] / rows[0]["mean_distance"]
        c_ratio = rows[-1]["mean_settled"] / rows[0]["mean_settled"]
        assert c_ratio > d_ratio * 1.5

    def test_fit_reported_with_high_r2(self, result):
        assert "R^2" in result.notes
        r2 = float(result.notes.split("R^2 = ")[1].split()[0])
        assert r2 > 0.7


class TestE13PartitionOverlay:
    @pytest.fixture(scope="class")
    def result(self):
        config = e13_partition_overlay.Config(
            grid_width=20, grid_height=20,
            cell_capacities=[16, 64, 200], num_queries=6,
        )
        return e13_partition_overlay.run(config)

    def test_cut_and_boundary_shrink_with_cell_size(self, result):
        cuts = result.column("cut_edges")
        boundary = result.column("boundary_nodes")
        assert cuts == sorted(cuts, reverse=True)
        assert boundary == sorted(boundary, reverse=True)
        cells = result.column("cells")
        assert cells == sorted(cells, reverse=True)

    def test_recustomize_is_fraction_of_customize(self, result):
        for row in result.rows:
            assert 0 < row["recustomize_settled"] < row["customize_settled"]
        # At many-cell granularity the refresh touches a small slice.
        first = result.rows[0]
        assert first["recustomize_settled"] * 4 <= first["customize_settled"]

    def test_two_phase_queries_beat_dijkstra_at_best_capacity(self, result):
        best = min(row["overlay_settled"] for row in result.rows)
        assert best < result.rows[0]["dijkstra_settled"]


class TestE14Pipeline:
    @pytest.fixture(scope="class")
    def result(self):
        config = e14_pipeline.Config(
            grid_width=12, grid_height=12,
            churn_per_min=[0, 3000], duration_s=0.15, num_queries=8,
        )
        return e14_pipeline.run(config)

    def test_no_churn_row_is_the_baseline(self, result):
        first = result.rows[0]
        assert first["churn_per_min"] == 0
        assert first["installs"] == 0
        assert first["cells_per_min"] == 0
        assert first["throughput_pct"] == 100.0

    def test_churn_rows_install_and_measure_staleness(self, result):
        # Timing-sensitive ratios (throughput_pct) are asserted only in
        # the soak test and the bench gate; here we pin the shape.
        for row in result.rows[1:]:
            assert row["events"] > 0
            assert row["installs"] > 0
            assert row["cells_per_min"] > 0
            assert row["staleness_max_ms"] >= row["staleness_p95_ms"] > 0
            assert row["queries_per_s"] > 0

    def test_registered_with_harness(self):
        (res,) = run_all(["E14"])
        assert res.experiment_id == "E14"


class TestE15ParallelCustomization:
    @pytest.fixture(scope="class")
    def result(self):
        config = e15_parallel_customization.Config(
            grid_width=10, grid_height=10, cell_capacity=12,
            workers=[2], start_method="fork",
        )
        return e15_parallel_customization.run(config)

    def test_serial_row_is_the_baseline(self, result):
        first = result.rows[0]
        assert first["workers"] == 0
        assert first["speedup"] == 1.0
        assert first["byte_identical"] is True

    def test_parallel_rows_are_byte_identical(self, result):
        # Speedups are machine-dependent (asserted only in the bench
        # gate); byte identity is the machine-independent claim.
        assert len(result.rows) == 2
        for row in result.rows[1:]:
            assert row["byte_identical"] is True
            assert row["cells"] == result.rows[0]["cells"]
            assert row["cells_per_sec"] > 0
            assert row["pool_warm_ms"] >= 0

    def test_registered_with_harness(self):
        # Unknown ids are rejected before anything runs; E42 alone
        # appearing in the error proves E15 resolved in the registry
        # without paying for a full default-config run here.
        with pytest.raises(KeyError, match=r"\['E42'\]"):
            run_all(["E15", "E42"])


class TestHarness:
    def test_run_all_subset(self):
        results = run_all(["E1"])
        assert len(results) == 1
        assert results[0].experiment_id == "E1"

    def test_run_all_unknown_id(self):
        with pytest.raises(KeyError):
            run_all(["E42"])

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}],
            expectation="shape",
            notes="note",
        )
        text = str(result)
        assert "[EX] demo" in text
        assert "expected shape: shape" in text
        assert "notes: note" in text

    def test_column_extraction(self):
        result = ExperimentResult("EX", "demo", ["a"], rows=[{"a": 1}, {}])
        assert result.column("a") == [1, None]


class TestTables:
    def test_format_value_floats(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(1e9) == "1.000e+09"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(0.0) == "0"
        assert format_value(True) == "yes"

    def test_format_table_alignment_and_missing(self):
        table = format_table(["x", "longcolumn"], [{"x": 1}, {"x": 2, "longcolumn": 3}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "-" in lines[2]  # missing cell placeholder
        assert all(len(line) == len(lines[0]) for line in lines[1:])
