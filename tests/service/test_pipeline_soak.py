"""Concurrency soak: 8 sessions serving while the pipeline churns cells.

The live-pipeline acceptance criteria in one place:

* thousands of traffic events install through the background
  :class:`~repro.service.pipeline.RecustomizeWorker` while concurrent
  sessions hammer ``answer_batch`` — no exceptions, no torn tables;
* telemetry is consistent: the ``pipeline.install`` trace spans agree
  with the ``repro_pipeline_*`` counters attribute for attribute;
* after quiescing, the installed overlay is byte-identical to a
  from-scratch build on the final weights;
* a churn rate far above 5% of cells per minute keeps ``answer_batch``
  throughput at >= 80% of the no-churn baseline (measured as the
  cleanest of several idle/churn round pairs, the same noise shield the
  CI bench gate uses).
"""

from __future__ import annotations

import math
import random
import threading
import time

import pytest

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.network.generators import grid_network
from repro.obs.trace import Tracer
from repro.search.dijkstra import dijkstra_path
from repro.search.overlay import build_overlay, dumps_overlay
from repro.service.cache import ResultCache
from repro.service.pipeline import TrafficPipeline
from repro.service.serving import ServingConfig, ServingStack
from repro.workloads.replay import TrafficEvent

NET = grid_network(14, 14, perturbation=0.1, seed=404)
NODES = list(NET.nodes())
EDGES = list(NET.edges())
NUM_SESSIONS = 8
EVENTS_TOTAL = 2400
BURST = 40


def _session_queries(seed, count=6):
    rng = random.Random(seed)
    obfuscator = PathQueryObfuscator(NET, seed=seed)
    queries = []
    for _ in range(count):
        s, t = rng.sample(NODES, 2)
        record = obfuscator.obfuscate_independent(
            ClientRequest("u", PathQuery(s, t), ProtectionSetting(2, 2))
        )
        queries.append(record.query)
    return queries


def _churn_events(seed, count):
    rng = random.Random(seed)
    return [
        TrafficEvent(u, v, round(w * (0.5 + rng.random()), 6))
        for u, v, w in (rng.choice(EDGES) for _ in range(count))
    ]


class TestPipelineSoak:
    def test_concurrent_sessions_survive_thousands_of_churn_events(self):
        tracer = Tracer(max_roots=100_000)
        stack = ServingStack.from_config(
            NET.copy(),
            ServingConfig(engine="overlay-csr", max_workers=4),
            tracer=tracer,
        )
        errors: list[BaseException] = []
        responses: list = []
        responses_lock = threading.Lock()
        stop = threading.Event()

        def session(seed):
            queries = _session_queries(seed)
            local = []
            try:
                while not stop.is_set():
                    local.extend(stack.answer_batch(queries))
            except BaseException as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)
            with responses_lock:
                responses.extend(local)

        with stack:
            stack.warm()
            events = _churn_events(99, EVENTS_TOTAL)
            with TrafficPipeline(stack, debounce_ms=1.0) as pipeline:
                threads = [
                    threading.Thread(target=session, args=(i,))
                    for i in range(NUM_SESSIONS)
                ]
                for t in threads:
                    t.start()
                for i in range(0, EVENTS_TOTAL, BURST):
                    pipeline.publish_many(events[i : i + BURST])
                    time.sleep(0.001)
                pipeline.quiesce(timeout_s=60.0)
                stop.set()
                for t in threads:
                    t.join()
                snap = pipeline.snapshot()

            assert errors == []
            assert snap.events == EVENTS_TOTAL
            assert snap.pending == 0
            assert snap.installs > 0
            assert stack.epoch == snap.installs

            # No torn tables: every response carries its full |S|x|T|
            # candidate table with finite distances for valid pairs.
            assert len(responses) >= NUM_SESSIONS * 6
            for response in responses:
                query = response.query
                expected = {
                    (s, t) for s in query.sources for t in query.destinations
                }
                assert set(response.candidates.paths) == expected
                for path in response.candidates.paths.values():
                    assert math.isfinite(path.distance)
                    assert path.distance >= 0.0

            # Trace-vs-counters: the pipeline.install spans must agree
            # with the repro_pipeline_* counters attribute by attribute.
            installs = [r for r in tracer.roots if r.name == "pipeline.install"]
            assert len(installs) == snap.installs
            assert sum(s.attrs["batch_events"] for s in installs) == EVENTS_TOTAL
            assert (
                sum(s.attrs["unique_edges"] for s in installs)
                == snap.edges_applied
            )
            assert (
                sum(s.attrs["touched_cells"] for s in installs)
                == snap.cells_recustomized
            )
            assert sorted(s.attrs["epoch"] for s in installs) == list(
                range(1, snap.installs + 1)
            )
            # Staleness was measured for every event.
            assert snap.staleness_max_ms >= snap.staleness_p95_ms > 0.0

            # Quiesced state: byte-identical to a scratch build, and
            # answers are exact against the final weights.
            installed = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert dumps_overlay(installed) == dumps_overlay(
                build_overlay(stack.network, kernel=installed.kernel)
            )
            final = stack.answer_batch(_session_queries(1234))
            for response in final:
                for (s, t), path in response.candidates.paths.items():
                    ref = dijkstra_path(stack.network, s, t).distance
                    assert path.distance == pytest.approx(ref, abs=1e-9)

    def test_churn_keeps_throughput_above_the_floor(self):
        duration_s = 0.3
        rounds = 3
        queries = _session_queries(7, count=12)

        def run(events):
            stack = ServingStack.from_config(
                NET.copy(),
                ServingConfig(engine="overlay-csr", max_workers=2),
                result_cache=ResultCache(capacity=0),
            )
            with stack:
                overlay = stack.warm()
                pipeline = TrafficPipeline(stack, debounce_ms=2.0)
                pipeline.start()
                served = cursor = 0
                interval = duration_s / max(1, len(events))
                start = time.perf_counter()
                try:
                    while True:
                        elapsed = time.perf_counter() - start
                        if elapsed >= duration_s:
                            break
                        while (
                            cursor < len(events)
                            and cursor * interval <= elapsed
                        ):
                            pipeline.publish(events[cursor])
                            cursor += 1
                        stack.answer_batch(queries)
                        served += len(queries)
                    elapsed = time.perf_counter() - start
                finally:
                    pipeline.stop()
                return served / elapsed, pipeline.snapshot(), overlay

        churn = _churn_events(5, 3)
        best_ratio = 0.0
        best_snap = best_overlay = None
        for _ in range(rounds):
            idle_qps, _, _ = run([])
            churn_qps, snap, overlay = run(churn)
            if churn_qps / idle_qps > best_ratio:
                best_ratio = churn_qps / idle_qps
                best_snap, best_overlay = snap, overlay
        # The churn rate dwarfs the 5%-of-cells-per-minute floor ...
        cells_per_min = best_snap.cells_recustomized / (duration_s / 60.0)
        assert best_snap.installs > 0
        assert cells_per_min >= 0.05 * best_overlay.num_cells
        # ... while throughput keeps the absolute 80% floor.
        assert best_ratio >= 0.8
