"""Tests for the page-aligned artifact blobs (:mod:`repro.service.blob`).

Covers the generic container (layout, alignment, malformed input), the
CSR and overlay codecs (round trips, mmap backing, byte determinism),
and the preprocessing cache's spill/reload integration for the blob
engines — the warm-start channel the gateway shard workers use.
"""

import json
import struct
from array import array

import pytest

from repro.exceptions import GraphError
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.search import get_engine
from repro.search.overlay import (
    NestedOverlayGraph,
    build_nested_overlay,
    dumps_overlay,
    overlay_snapshot,
)
from repro.service.blob import (
    BLOB_MAGIC,
    PAGE_SIZE,
    read_blob,
    read_csr_blob,
    read_overlay_blob,
    write_blob,
    write_csr_blob,
    write_overlay_blob,
)
from repro.service.cache import PreprocessingCache


@pytest.fixture(scope="module")
def net():
    return grid_network(12, 12, perturbation=0.1, seed=7)


class TestContainer:
    def test_round_trip_meta_and_sections(self, tmp_path):
        path = tmp_path / "x.blob"
        write_blob(path, {"kind": "test", "n": 3}, [
            ("ints", "q", array("q", [1, -2, 3])),
            ("floats", "d", array("d", [0.5, 1.25])),
            ("empty", "q", array("q")),
        ])
        blob = read_blob(path)
        assert blob.meta == {"kind": "test", "n": 3}
        assert blob.sections["ints"].tolist() == [1, -2, 3]
        assert blob.sections["floats"].tolist() == [0.5, 1.25]
        assert blob.sections["empty"].tolist() == []
        blob.close()

    def test_sections_are_page_aligned(self, tmp_path):
        path = tmp_path / "x.blob"
        write_blob(path, {}, [
            ("a", "q", array("q", range(5))),
            ("b", "d", array("d", [1.0] * 700)),
            ("c", "q", array("q", [9])),
        ])
        raw = path.read_bytes()
        assert raw[:len(BLOB_MAGIC)] == BLOB_MAGIC
        (hlen,) = struct.unpack(
            "<Q", raw[len(BLOB_MAGIC):len(BLOB_MAGIC) + 8]
        )
        header = json.loads(raw[len(BLOB_MAGIC) + 8:len(BLOB_MAGIC) + 8 + hlen])
        offsets = [s["offset"] for s in header["sections"]]
        assert all(offset % PAGE_SIZE == 0 for offset in offsets)
        assert offsets == sorted(offsets)

    def test_views_are_zero_copy_and_read_only(self, tmp_path):
        path = tmp_path / "x.blob"
        write_blob(path, {}, [("a", "q", array("q", [1, 2, 3]))])
        blob = read_blob(path)
        view = blob.sections["a"]
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 9
        blob.close()

    def test_iterables_are_converted(self, tmp_path):
        path = tmp_path / "x.blob"
        write_blob(path, {}, [("a", "d", [1.0, 2.0])])
        blob = read_blob(path)
        assert blob.sections["a"].tolist() == [1.0, 2.0]
        blob.close()

    def test_duplicate_section_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="duplicate"):
            write_blob(tmp_path / "x.blob", {}, [
                ("a", "q", array("q")), ("a", "q", array("q")),
            ])

    def test_unsupported_typecode_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="typecode"):
            write_blob(tmp_path / "x.blob", {}, [("a", "f", array("f"))])

    @pytest.mark.parametrize("payload", [
        b"", b"NOTABLOB", BLOB_MAGIC + b"\x00" * 8,
        BLOB_MAGIC + struct.pack("<Q", 4) + b"{!!}",
    ])
    def test_malformed_file_raises(self, tmp_path, payload):
        path = tmp_path / "bad.blob"
        path.write_bytes(payload)
        with pytest.raises(GraphError):
            read_blob(path)

    def test_section_past_end_of_file_raises(self, tmp_path):
        path = tmp_path / "bad.blob"
        header = json.dumps({
            "meta": {},
            "sections": [
                {"name": "a", "fmt": "q", "count": 99, "offset": 0}
            ],
        }).encode()
        path.write_bytes(
            BLOB_MAGIC + struct.pack("<Q", len(header)) + header
        )
        with pytest.raises(GraphError, match="section"):
            read_blob(path)


class TestCSRBlob:
    def test_round_trip_and_query_parity(self, net, tmp_path):
        csr = csr_snapshot(net)
        path = tmp_path / "g.csrb"
        write_csr_blob(csr, path)
        loaded = read_csr_blob(path)
        assert loaded.node_ids == csr.node_ids
        assert loaded.directed == csr.directed
        assert list(loaded.offsets) == list(csr.offsets)
        assert list(loaded.targets) == list(csr.targets)
        assert list(loaded.weights) == list(csr.weights)
        engine = get_engine("dijkstra-csr")
        nodes = sorted(net.nodes())
        for s, t in [(nodes[0], nodes[-1]), (nodes[3], nodes[-7])]:
            got = engine.route(net, s, t, context=loaded)
            ref = engine.route(net, s, t, context=csr)
            assert got.nodes == ref.nodes
            assert got.distance == ref.distance

    def test_arrays_are_mmap_backed_views(self, net, tmp_path):
        path = tmp_path / "g.csrb"
        write_csr_blob(csr_snapshot(net), path)
        loaded = read_csr_blob(path)
        # zero-copy: the flat arrays are read-only views of the mapping,
        # not materialized array copies
        assert isinstance(loaded.offsets, memoryview)
        assert loaded.offsets.readonly
        assert isinstance(loaded.weights, memoryview)
        # the kernels' lazy list mirror still works on top
        offsets, targets, weights = loaded.kernel_view()
        assert offsets == list(csr_snapshot(net).offsets)

    def test_directed_round_trip_keeps_reverse_arrays(self, tmp_path):
        net = RoadNetwork(directed=True)
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 2.0)
        net.add_edge(3, 1, 4.0)
        csr = csr_snapshot(net)
        path = tmp_path / "d.csrb"
        write_csr_blob(csr, path)
        loaded = read_csr_blob(path)
        assert loaded.directed
        assert list(loaded.roffsets) == list(csr.roffsets)
        assert list(loaded.rtargets) == list(csr.rtargets)
        assert list(loaded.rweights) == list(csr.rweights)

    def test_as_numpy_views_stay_read_only(self, net, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "g.csrb"
        write_csr_blob(csr_snapshot(net), path)
        views = read_csr_blob(path).as_numpy()
        assert not views["weights"].flags.writeable
        with pytest.raises(ValueError):
            views["weights"][0] = 999.0
        assert views["offsets"].dtype == np.int64

    def test_non_integer_ids_rejected(self, tmp_path):
        net = RoadNetwork()
        net.add_node("a", 0.0, 0.0)
        net.add_node("b", 1.0, 0.0)
        net.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError, match="integer"):
            write_csr_blob(CSRGraph.from_network(net), tmp_path / "x.csrb")

    def test_wrong_kind_rejected(self, net, tmp_path):
        path = tmp_path / "o.ovlb"
        write_overlay_blob(overlay_snapshot(net, kernel="csr"), path)
        with pytest.raises(GraphError, match="CSR blob"):
            read_csr_blob(path)


class TestOverlayBlob:
    def test_flat_round_trip_byte_identical(self, net, tmp_path):
        overlay = overlay_snapshot(net, kernel="csr")
        path = tmp_path / "o.ovlb"
        write_overlay_blob(overlay, path)
        loaded = read_overlay_blob(path, net)
        assert type(loaded) is type(overlay)
        assert loaded.kernel == "csr"
        assert dumps_overlay(loaded) == dumps_overlay(overlay)
        nodes = sorted(net.nodes())
        got = loaded.route(nodes[0], nodes[-1])
        ref = overlay.route(nodes[0], nodes[-1])
        assert got.nodes == ref.nodes
        assert got.distance == pytest.approx(ref.distance, abs=1e-9)

    def test_identical_overlays_write_identical_blobs(self, net, tmp_path):
        overlay = overlay_snapshot(net, kernel="csr")
        write_overlay_blob(overlay, tmp_path / "a.ovlb")
        write_overlay_blob(overlay, tmp_path / "b.ovlb")
        assert (
            (tmp_path / "a.ovlb").read_bytes()
            == (tmp_path / "b.ovlb").read_bytes()
        )

    def test_nested_round_trip(self, net, tmp_path):
        nested = build_nested_overlay(net, kernel="csr")
        path = tmp_path / "n.ovlb"
        write_overlay_blob(nested, path)
        loaded = read_overlay_blob(path, net)
        assert isinstance(loaded, NestedOverlayGraph)
        assert loaded.super_capacity == nested.super_capacity
        # level 1 loads from the blob; the re-derived supercell level is
        # deterministic, so the top arrays match the original exactly
        assert dumps_overlay(loaded) == dumps_overlay(nested)
        assert list(loaded.top_offsets) == list(nested.top_offsets)
        assert list(loaded.top_targets) == list(nested.top_targets)
        assert list(loaded.top_weights) == list(nested.top_weights)
        assert list(loaded.top_kinds) == list(nested.top_kinds)
        nodes = sorted(net.nodes())
        got = loaded.route(nodes[2], nodes[-3])
        ref = nested.route(nodes[2], nodes[-3])
        assert got.nodes == ref.nodes

    def test_dict_kernel_round_trip(self, net, tmp_path):
        overlay = overlay_snapshot(net, kernel="dict")
        path = tmp_path / "o.ovlb"
        write_overlay_blob(overlay, path)
        loaded = read_overlay_blob(path, net)
        assert loaded.kernel == "dict"
        assert dumps_overlay(loaded) == dumps_overlay(overlay)

    def test_non_integer_ids_rejected(self, tmp_path):
        net = RoadNetwork()
        net.add_node("a", 0.0, 0.0)
        net.add_node("b", 1.0, 0.0)
        net.add_edge("a", "b", 1.0)
        overlay = overlay_snapshot(net, kernel="dict")
        with pytest.raises(GraphError, match="integer"):
            write_overlay_blob(overlay, tmp_path / "x.ovlb")

    def test_wrong_kind_rejected(self, net, tmp_path):
        path = tmp_path / "g.csrb"
        write_csr_blob(csr_snapshot(net), path)
        with pytest.raises(GraphError, match="overlay blob"):
            read_overlay_blob(path, net)

    def test_mismatched_network_rejected(self, net, tmp_path):
        path = tmp_path / "o.ovlb"
        write_overlay_blob(overlay_snapshot(net, kernel="csr"), path)
        other = grid_network(5, 5, seed=1)
        with pytest.raises(GraphError):
            read_overlay_blob(path, other)


class TestCacheIntegration:
    """The spill channel the gateway's shard-worker handoff rides on."""

    @pytest.mark.parametrize("engine", [
        "overlay-csr", "overlay-nested", "dijkstra-csr",
    ])
    def test_spill_now_and_reload(self, net, tmp_path, engine):
        cache = PreprocessingCache(capacity=2, spill_dir=tmp_path)
        artifact = cache.get(net, engine)
        from repro.service.cache import network_fingerprint

        fingerprint = network_fingerprint(net)
        spilled = cache.spill_now(fingerprint, engine)
        assert spilled is not None and spilled.exists()
        # a second cache on the same spill dir warms from disk
        cold = PreprocessingCache(capacity=2, spill_dir=tmp_path)
        reloaded = cold.get(net, engine)
        assert cold.disk_loads == 1
        assert type(reloaded) is type(artifact)
        nodes = sorted(net.nodes())
        eng = get_engine(engine)
        got = eng.route(net, nodes[1], nodes[-2], context=reloaded)
        ref = eng.route(net, nodes[1], nodes[-2], context=artifact)
        assert got.nodes == ref.nodes
        assert got.distance == pytest.approx(ref.distance, abs=1e-9)

    def test_spill_suffixes_by_engine(self, net, tmp_path):
        cache = PreprocessingCache(capacity=8, spill_dir=tmp_path)
        from repro.service.cache import network_fingerprint

        fingerprint = network_fingerprint(net)
        for engine, suffix in [
            ("overlay-nested", "ovlb"),
            ("dijkstra-csr", "csrb"),
            ("ch", "ch"),
        ]:
            cache.get(net, engine)
            path = cache.spill_now(fingerprint, engine)
            assert path is not None
            assert path.suffix == f".{suffix}"

    def test_nested_spill_round_trips_level_one_bytes(self, net, tmp_path):
        cache = PreprocessingCache(capacity=1, spill_dir=tmp_path)
        nested = cache.get(net, "overlay-nested")
        other = grid_network(4, 4, seed=2)
        cache.get(other, "dijkstra")  # evicts (and spills) the nested overlay
        assert list(tmp_path.glob("*.ovlb"))
        reloaded = cache.get(net, "overlay-nested")
        assert cache.disk_loads == 1
        assert isinstance(reloaded, NestedOverlayGraph)
        assert dumps_overlay(reloaded) == dumps_overlay(nested)
