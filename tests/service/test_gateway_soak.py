"""Gateway soak: concurrent HTTP load, churn, and byte-identity.

The load generator drives a live :class:`GatewayServer` with several
concurrent keep-alive connections while this suite checks the gate's
core claim end to end: every payload that crosses the wire is
*byte-identical* to what an in-process
:meth:`~repro.service.serving.ServingStack.answer_batch` call produces
for the same query — cold, under concurrent re-weights (after the
epoch settles), and through spawned shard workers.
"""

from __future__ import annotations

import http.client
import json
import random
import threading

from repro.core.query import ObfuscatedPathQuery
from repro.network.generators import grid_network
from repro.service.gateway import API_PREFIX, GatewayConfig, GatewayServer
from repro.service.serving import ServingConfig, ServingStack
from repro.service.wire import RouteRequest, RouteResponse
from repro.workloads.loadgen import run_load

ENGINE = "overlay-csr"


def _workload(network, n, seed):
    """``n`` obfuscated queries with 2x2 endpoint sets."""
    rng = random.Random(seed)
    nodes = list(network.nodes())
    return [
        ObfuscatedPathQuery(
            tuple(rng.sample(nodes, 2)), tuple(rng.sample(nodes, 2))
        )
        for _ in range(n)
    ]


def _expected_payloads(network, queries, changes=()):
    """In-process answers (optionally after epoch re-weights)."""
    with ServingStack.from_config(
        network.copy(), ServingConfig(engine=ENGINE)
    ) as stack:
        stack.warm()
        for batch in changes:
            stack.reweight(batch, epoch=True)
        return [
            RouteResponse.from_server(r).payload_json()
            for r in stack.answer_batch(queries)
        ]


def _payloads(report):
    """Byte-identity surfaces of every captured response body."""
    return [
        RouteResponse.from_json(payload).payload_json()
        for payload in report.payloads
    ]


def _post(server, path, doc):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("POST", path, body=json.dumps(doc))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def test_soak_byte_identical_to_in_process():
    network = grid_network(10, 10, perturbation=0.1, seed=21)
    queries = _workload(network, 16, seed=2)
    requests = [RouteRequest.from_query(q) for q in queries]
    expected = _expected_payloads(network, queries)
    with GatewayServer(
        network.copy(), ServingConfig(engine=ENGINE)
    ) as server:
        report = run_load(
            server.host,
            server.port,
            requests,
            clients=4,
            repeats=3,
            capture_payloads=True,
        )
    assert report.requests == len(queries) * 3
    assert report.errors == 0
    assert report.status_counts == {200: report.requests}
    # Completion order interleaves across clients; compare multisets.
    assert sorted(_payloads(report)) == sorted(expected * 3)


def test_soak_under_churn_settles_byte_identical():
    network = grid_network(10, 10, perturbation=0.1, seed=33)
    queries = _workload(network, 12, seed=4)
    requests = [RouteRequest.from_query(q) for q in queries]
    rng = random.Random(9)
    edges = list(network.edges())
    change_batches = [
        [
            (u, v, w * rng.uniform(1.5, 3.0))
            for u, v, w in rng.sample(edges, 3)
        ]
        for _ in range(4)
    ]
    with GatewayServer(
        network.copy(), ServingConfig(engine=ENGINE)
    ) as server:
        failures: list[str] = []

        def churn() -> None:
            for batch in change_batches:
                status, _ = _post(
                    server,
                    f"{API_PREFIX}/reweight",
                    {"changes": [list(change) for change in batch]},
                )
                if status != 200:
                    failures.append(f"reweight -> {status}")

        feeder = threading.Thread(target=churn)
        feeder.start()
        # Load and churn race on purpose: answers during the race may
        # come from either epoch, but every request must still succeed.
        under_churn = run_load(
            server.host, server.port, requests, clients=4, repeats=2
        )
        feeder.join()
        assert not failures
        assert under_churn.errors == 0

        # Quiesced: every install is in. Now the gateway must agree
        # byte-for-byte with an in-process stack that replayed the same
        # change history.
        settled = run_load(
            server.host,
            server.port,
            requests,
            clients=2,
            capture_payloads=True,
        )
    expected = _expected_payloads(network, queries, changes=change_batches)
    assert settled.errors == 0
    assert sorted(_payloads(settled)) == sorted(expected)


def test_soak_through_shard_workers():
    network = grid_network(10, 10, perturbation=0.1, seed=55)
    queries = _workload(network, 12, seed=6)
    requests = [RouteRequest.from_query(q) for q in queries]
    expected = _expected_payloads(network, queries)
    with GatewayServer(
        network.copy(),
        ServingConfig(engine=ENGINE),
        GatewayConfig(workers=2, window_ms=2.0, max_batch=4),
    ) as server:
        report = run_load(
            server.host,
            server.port,
            requests,
            clients=4,
            repeats=2,
            capture_payloads=True,
        )
    assert report.requests == len(queries) * 2
    assert report.errors == 0
    assert sorted(_payloads(report)) == sorted(expected * 2)
