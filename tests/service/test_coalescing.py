"""Unit tests for the cross-session query coalescer."""

from __future__ import annotations

import threading

import pytest

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.core.system import OpaqueSystem
from repro.exceptions import NoPathError
from repro.network.graph import RoadNetwork
from repro.service.serving import CoalesceConfig, ServingConfig, ServingStack


def _queries(network, n=6, seed=5, offset=40):
    requests = [
        ClientRequest(f"u{i}", PathQuery(i, offset + i), ProtectionSetting(3, 3))
        for i in range(n)
    ]
    obfuscator = PathQueryObfuscator(network, seed=seed)
    records = obfuscator.obfuscate_batch(requests, mode="independent")
    return [r.query for r in records]


def _tables(responses):
    return [
        {
            pair: (path.nodes, path.distance)
            for pair, path in r.candidates.paths.items()
        }
        for r in responses
    ]


class TestWindowSemantics:
    def test_count_threshold_flushes_inline(self, small_grid):
        queries = _queries(small_grid)
        config = CoalesceConfig(max_batch=len(queries), max_wait_s=60.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            responses = stack.answer_batch(queries)
            snap = stack.coalesce_snapshot()
        assert snap.windows == 1
        assert snap.max_window == len(queries)
        assert snap.shared_windows == 1
        assert all(r.coalesced for r in responses)

    def test_time_threshold_flushes_via_injected_clock(
        self, small_grid, stepping_clock
    ):
        query = _queries(small_grid, n=1)[0]
        config = CoalesceConfig(
            max_batch=64, max_wait_s=1.0, clock=stepping_clock(2.0)
        )
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            response = stack.answer(query)
            snap = stack.coalesce_snapshot()
        assert snap.windows == 1 and snap.queries == 1
        # A window of one shares nothing: no coalesced marking.
        assert not response.coalesced
        assert snap.shared_windows == 0 and snap.coalesced_queries == 0

    def test_flush_on_empty_window_is_noop(self, small_grid):
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=CoalesceConfig(max_batch=4)),
        ) as stack:
            assert stack.coalescer.flush() == 0
            assert stack.coalesce_snapshot().windows == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoalesceConfig(max_batch=0)
        with pytest.raises(ValueError):
            CoalesceConfig(max_wait_s=-1.0)

    def test_snapshot_none_without_coalescer(self, small_grid):
        with ServingStack.from_config(small_grid) as stack:
            assert stack.coalesce_snapshot() is None
            assert stack.coalescer is None


class TestExactness:
    def test_coalesced_responses_byte_identical_to_serial(self, small_grid):
        queries = _queries(small_grid, n=8)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as serial:
            expected = _tables(serial.answer_batch(queries))
        config = CoalesceConfig(max_batch=len(queries), max_wait_s=60.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra", coalesce=config),
        ) as stack:
            got = _tables(stack.answer_batch(queries))
        assert got == expected

    def test_cross_thread_sessions_share_one_union_pass(self, small_grid):
        queries = _queries(small_grid, n=8)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="ch-csr"),
        ) as serial:
            expected = _tables(serial.answer_batch(queries))
            settled_serial = serial.server.counters.stats.settled_nodes
        config = CoalesceConfig(max_batch=len(queries), max_wait_s=10.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="ch-csr", coalesce=config),
        ) as stack:
            outputs: list = [None] * 4
            def session(i):
                outputs[i] = stack.answer_batch(queries[i * 2 : (i + 1) * 2])
            threads = [
                threading.Thread(target=session, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = stack.coalesce_snapshot()
            settled = stack.server.counters.stats.settled_nodes
            coalesced_counter = stack.server.counters.coalesced_queries
        assert _tables([r for out in outputs for r in out]) == expected
        assert snap.windows == 1 and snap.queries == 8
        assert coalesced_counter == 8
        # The union bucket pass shares backward/forward sweeps.
        assert settled <= settled_serial

    def test_failing_query_does_not_poison_window_mates(self, stepping_clock):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        good = ObfuscatedPathQuery((0,), (1,))
        bad = ObfuscatedPathQuery((0,), (3,))
        config = CoalesceConfig(
            max_batch=2, max_wait_s=1.0, clock=stepping_clock(2.0)
        )
        with ServingStack.from_config(net, ServingConfig(coalesce=config)) as stack:
            with pytest.raises(NoPathError):
                stack.answer_batch([good, bad])
            # The good window-mate was evaluated and cached anyway; its
            # lone follow-up window expires via the injected clock.
            response = stack.answer(good)
        assert response.from_cache

    def test_work_attributed_once_across_slices(self, small_grid):
        queries = _queries(small_grid, n=4)
        config = CoalesceConfig(max_batch=4, max_wait_s=60.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            responses = stack.answer_batch(queries)
            settled = stack.server.counters.stats.settled_nodes
        per_response = [r.candidates.stats.settled_nodes for r in responses]
        assert sum(per_response) == settled
        # First slice carries the pass, the rest carry zero.
        assert per_response[0] == settled
        assert all(count == 0 for count in per_response[1:])


class TestCacheInterplay:
    def test_coalesced_results_populate_result_cache(self, small_grid):
        queries = _queries(small_grid, n=4)
        config = CoalesceConfig(max_batch=4, max_wait_s=60.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            cold = stack.answer_batch(queries)
            warm = stack.answer_batch(queries)
            snap = stack.snapshot()
        assert all(not r.from_cache for r in cold)
        assert all(r.from_cache for r in warm)
        # Warm responses come straight from the cache: no new union pass.
        assert all(not r.coalesced for r in warm)
        assert snap.result_hits == len(queries)
        assert snap.result_misses == len(queries)

    def test_in_window_duplicates_share_one_slice(self, small_grid):
        query = _queries(small_grid, n=1)[0]
        config = CoalesceConfig(max_batch=3, max_wait_s=60.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            responses = stack.answer_batch([query, query, query])
        assert [r.from_cache for r in responses] == [False, True, True]
        assert responses[0].candidates is responses[2].candidates
        assert (stack.results.hits, stack.results.misses) == (2, 1)

    def test_preprocessing_artifact_shared_with_union_pass(self, small_grid):
        queries = _queries(small_grid, n=4)
        config = CoalesceConfig(max_batch=4, max_wait_s=60.0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="ch", coalesce=config),
        ) as stack:
            stack.answer_batch(queries)
            stack.answer_batch(_queries(small_grid, n=4, seed=9))
        assert stack.preprocessing.misses == 1  # one contraction total


class TestSystemIntegration:
    def test_session_report_counts_coalesced_queries(
        self, small_grid, stepping_clock
    ):
        requests = [
            ClientRequest(f"u{i}", PathQuery(i, 40 + i), ProtectionSetting(3, 3))
            for i in range(6)
        ]
        config = CoalesceConfig(
            max_batch=64, max_wait_s=1.0, clock=stepping_clock(2.0)
        )
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            system = OpaqueSystem(
                small_grid, mode="independent", serving=stack, seed=1
            )
            baseline = OpaqueSystem(
                small_grid, mode="independent", seed=1
            )
            results = system.submit(requests)
            expected = baseline.submit(requests)
            report = system.last_report
        assert {u: p.nodes for u, p in results.items()} == {
            u: p.nodes for u, p in expected.items()
        }
        assert report.coalesced_queries == len(report.records)
        assert report.cached_queries == 0

    def test_service_report_counts_coalesced_queries(
        self, small_grid, stepping_clock
    ):
        from repro.service.simulator import (
            BatchingObfuscationService,
            poisson_arrivals,
        )

        requests = [
            ClientRequest(f"u{i}", PathQuery(i, 40 + i), ProtectionSetting(2, 2))
            for i in range(6)
        ]
        arrivals = poisson_arrivals(requests, rate=50.0, seed=0)
        config = CoalesceConfig(max_batch=32, max_wait_s=0.5,
                                clock=stepping_clock(1.0))
        with ServingStack.from_config(
            small_grid,
            ServingConfig(coalesce=config),
        ) as stack:
            system = OpaqueSystem(small_grid, mode="shared", serving=stack, seed=3)
            _res, report = BatchingObfuscationService(system, window=10.0).run(
                arrivals
            )
        # One 10s window holds all arrivals; its queries coalesce all
        # together (>= 2 distinct queries shared a pass) or not at all.
        assert report.coalesced_queries in (0, report.obfuscated_queries)
        if report.obfuscated_queries < 2:
            assert report.coalesced_queries == 0
