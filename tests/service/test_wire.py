"""Wire schema tests: round trips, strict decoding, error codes.

The wire layer is the gateway's contract with clients; these tests pin
the canonical encoding (sorted keys, no whitespace), the strict decode
rules (unknown fields and malformed endpoints are rejected with
machine-readable codes), and the redaction property that error bodies
never carry free-form exception text.
"""

from __future__ import annotations

import json

import pytest

from repro.core.query import ObfuscatedPathQuery
from repro.network.generators import grid_network
from repro.service.serving import ServingConfig, ServingStack
from repro.service.wire import (
    ERROR_CODES,
    WIRE_SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    RouteRequest,
    RouteResponse,
    WireError,
    canonical_json,
)


@pytest.fixture(scope="module")
def answered():
    """One answered obfuscated query on a small grid."""
    network = grid_network(6, 6, seed=3)
    nodes = sorted(network.nodes())
    query = ObfuscatedPathQuery(tuple(nodes[:3]), tuple(nodes[-3:]))
    with ServingStack.from_config(
        network, ServingConfig(engine="dijkstra")
    ) as stack:
        response = stack.answer_batch([query])[0]
    return query, response


class TestCanonicalJson:
    def test_sorted_keys_no_whitespace(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_equal_documents_are_equal_bytes(self):
        left = {"x": 1, "y": {"b": 2, "a": 3}}
        right = {"y": {"a": 3, "b": 2}, "x": 1}
        assert canonical_json(left) == canonical_json(right)


class TestRouteRequest:
    def test_json_round_trip(self):
        request = RouteRequest((1, 2, 3), (9, 8))
        again = RouteRequest.from_json(request.to_json())
        assert again == request

    def test_query_round_trip(self):
        query = ObfuscatedPathQuery((4, 5), (6, 7))
        request = RouteRequest.from_query(query)
        assert request.to_query() == query

    def test_wire_order_preserved(self):
        request = RouteRequest.from_json(
            RouteRequest((3, 1, 2), (7, 5)).to_json()
        )
        assert request.sources == (3, 1, 2)
        assert request.destinations == (7, 5)

    def test_schema_stamp_present(self):
        assert RouteRequest((1,), (2,)).to_dict()["schema"] == (
            WIRE_SCHEMA_VERSION
        )

    def test_unsupported_schema_rejected(self):
        doc = RouteRequest((1,), (2,)).to_dict()
        doc["schema"] = 99
        with pytest.raises(WireError) as err:
            RouteRequest.from_dict(doc)
        assert err.value.code == "invalid_request"

    def test_unknown_field_rejected(self):
        doc = RouteRequest((1,), (2,)).to_dict()
        doc["extra"] = True
        with pytest.raises(WireError) as err:
            RouteRequest.from_dict(doc)
        assert err.value.code == "invalid_request"

    @pytest.mark.parametrize(
        "sources", [[], [1.5], ["a"], [True], None, "1,2"]
    )
    def test_malformed_sources_rejected(self, sources):
        with pytest.raises(WireError) as err:
            RouteRequest.from_dict(
                {"sources": sources, "destinations": [2]}
            )
        assert err.value.code == "invalid_request"

    def test_invalid_json_code(self):
        with pytest.raises(WireError) as err:
            RouteRequest.from_json(b"{not json")
        assert err.value.code == "invalid_json"

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError) as err:
            RouteRequest.from_json("[1,2,3]")
        assert err.value.code == "invalid_request"

    def test_duplicate_endpoints_do_not_leak_node_ids(self):
        # The core QueryError message interpolates node ids; the wire
        # error the client sees must not.
        request = RouteRequest((5, 5), (7,))
        with pytest.raises(WireError) as err:
            request.to_query()
        assert err.value.code == "invalid_request"
        assert "5" not in str(err.value)


class TestBatchRequest:
    def test_json_round_trip(self):
        batch = BatchRequest(
            (RouteRequest((1, 2), (3,)), RouteRequest((4,), (5, 6)))
        )
        assert BatchRequest.from_json(batch.to_json()) == batch

    def test_empty_batch_rejected(self):
        with pytest.raises(WireError) as err:
            BatchRequest.from_dict({"queries": []})
        assert err.value.code == "invalid_request"

    def test_non_object_entry_rejected(self):
        with pytest.raises(WireError) as err:
            BatchRequest.from_dict({"queries": [[1, 2]]})
        assert err.value.code == "invalid_request"

    def test_to_queries_order(self):
        batch = BatchRequest(
            (RouteRequest((1,), (2,)), RouteRequest((3,), (4,)))
        )
        queries = batch.to_queries()
        assert [q.sources for q in queries] == [(1,), (3,)]


class TestRouteResponse:
    def test_from_server_covers_wire_order(self, answered):
        query, server_response = answered
        response = RouteResponse.from_server(server_response)
        expected = [
            (s, t) for s in query.sources for t in query.destinations
        ]
        assert [(p[0], p[1]) for p in response.paths] == expected

    def test_json_round_trip(self, answered):
        _, server_response = answered
        response = RouteResponse.from_server(server_response)
        assert RouteResponse.from_json(response.to_json()) == response

    def test_payload_excludes_serving_metadata(self, answered):
        _, server_response = answered
        response = RouteResponse.from_server(server_response)
        payload = response.payload_dict()
        assert "from_cache" not in payload
        assert "coalesced" not in payload

    def test_payload_identical_across_cache_flags(self, answered):
        # The byte-identity surface must not depend on how the answer
        # was produced — only on the paths themselves.
        _, server_response = answered
        cold = RouteResponse.from_server(server_response)
        warm = RouteResponse(
            cold.paths, from_cache=True, coalesced=True
        )
        assert warm.payload_json() == cold.payload_json()
        assert warm.to_json() != cold.to_json()

    def test_malformed_path_entry_rejected(self):
        with pytest.raises(WireError) as err:
            RouteResponse.from_dict({"paths": [{"source": 1}]})
        assert err.value.code == "invalid_request"


class TestBatchResponse:
    def test_json_round_trip(self, answered):
        _, server_response = answered
        batch = BatchResponse.from_server([server_response] * 2)
        assert BatchResponse.from_json(batch.to_json()) == batch


class TestErrorResponse:
    @pytest.mark.parametrize("code", sorted(ERROR_CODES))
    def test_round_trip_every_code(self, code):
        error = ErrorResponse(code)
        again = ErrorResponse.from_json(error.to_json())
        assert again.code == code
        assert again.message == ERROR_CODES[code]

    def test_unknown_code_rejected_at_build(self):
        with pytest.raises(ValueError):
            ErrorResponse("made_up_code")

    def test_message_is_generic_lookup(self):
        # The message field cannot be set by callers at all — it is
        # derived, so exception text can never reach the body.
        error = ErrorResponse("no_path")
        assert error.message == ERROR_CODES["no_path"]
        with pytest.raises(TypeError):
            ErrorResponse("no_path", message="node 91001 unreachable")

    def test_retry_after_round_trip(self):
        error = ErrorResponse("overloaded", retry_after_s=0.25)
        doc = json.loads(error.to_json())
        assert doc["retry_after_s"] == 0.25
        assert ErrorResponse.from_dict(doc).retry_after_s == 0.25

    def test_retry_after_omitted_when_absent(self):
        assert "retry_after_s" not in ErrorResponse("internal").to_dict()
