"""Unit tests for the serving-layer caches."""

from __future__ import annotations

import pytest

from repro.network.generators import grid_network
from repro.search.ch import ContractedGraph
from repro.search.multi import MSMDResult
from repro.search.result import PathResult
from repro.service.cache import (
    PreprocessingCache,
    ResultCache,
    network_fingerprint,
)


def _table(s, t) -> MSMDResult:
    result = MSMDResult()
    result.paths[(s, t)] = PathResult(s, t, (s, t), 1.0)
    return result


class TestNetworkFingerprint:
    def test_deterministic_and_content_based(self, small_grid):
        assert network_fingerprint(small_grid) == network_fingerprint(small_grid)
        clone = small_grid.copy()
        assert network_fingerprint(clone) == network_fingerprint(small_grid)

    def test_different_networks_differ(self, small_grid, tiger_net):
        assert network_fingerprint(small_grid) != network_fingerprint(tiger_net)

    def test_mutation_changes_fingerprint(self, small_grid):
        net = small_grid.copy()
        before = network_fingerprint(net)
        net.add_edge(0, 11, 0.123)  # new diagonal shortcut
        assert network_fingerprint(net) != before

    def test_weight_change_changes_fingerprint(self, small_grid):
        net = small_grid.copy()
        before = network_fingerprint(net)
        u, v, w = next(net.edges())
        net.remove_edge(u, v)
        net.add_edge(u, v, w + 1.0)
        assert network_fingerprint(net) != before


class TestPreprocessingCache:
    def test_hit_miss_counters(self, small_grid):
        cache = PreprocessingCache(capacity=2)
        first = cache.get(small_grid, "ch")
        assert isinstance(first, ContractedGraph)
        assert (cache.hits, cache.misses) == (0, 1)
        again = cache.get(small_grid, "ch")
        assert again is first  # same artifact object, not a rebuild
        assert (cache.hits, cache.misses) == (1, 1)

    def test_engine_is_part_of_the_key(self, small_grid):
        cache = PreprocessingCache(capacity=4)
        cache.get(small_grid, "ch")
        cache.get(small_grid, "alt")
        assert cache.misses == 2 and len(cache) == 2

    def test_mutated_network_misses(self, small_grid):
        net = small_grid.copy()
        cache = PreprocessingCache(capacity=4)
        first = cache.get(net, "ch")
        net.add_edge(0, 22, 0.01)
        second = cache.get(net, "ch")
        assert second is not first
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction_counter(self, small_grid, tiger_net, tiny_triangle):
        cache = PreprocessingCache(capacity=2)
        cache.get(small_grid, "dijkstra")
        cache.get(tiger_net, "dijkstra")
        cache.get(tiny_triangle, "dijkstra")  # evicts small_grid
        assert cache.evictions == 1 and len(cache) == 2
        cache.get(small_grid, "dijkstra")
        assert cache.misses == 4  # evicted entry had to be rebuilt

    def test_none_artifacts_are_cached(self, small_grid):
        cache = PreprocessingCache(capacity=2)
        assert cache.get(small_grid, "dijkstra") is None
        assert cache.get(small_grid, "dijkstra") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disk_spill_round_trip(self, tmp_path):
        net_a = grid_network(4, 4, perturbation=0.0, seed=1)
        net_b = grid_network(5, 5, perturbation=0.0, seed=2)
        cache = PreprocessingCache(capacity=1, spill_dir=tmp_path)
        built = cache.get(net_a, "ch")
        cache.get(net_b, "ch")  # evicts and spills net_a's graph
        assert cache.evictions == 1
        assert list(tmp_path.glob("*.ch")), "evicted graph was not spilled"
        reloaded = cache.get(net_a, "ch")
        assert cache.disk_loads == 1
        assert reloaded is not built
        assert reloaded.num_nodes == built.num_nodes
        assert reloaded.num_shortcuts == built.num_shortcuts

    def test_disk_spill_round_trip_ch_csr(self, tmp_path):
        from repro.search.kernels import CSRHierarchy, csr_ch_path

        net_a = grid_network(4, 4, perturbation=0.1, seed=1)
        net_b = grid_network(5, 5, perturbation=0.1, seed=2)
        cache = PreprocessingCache(capacity=1, spill_dir=tmp_path)
        built = cache.get(net_a, "ch-csr")
        assert isinstance(built, CSRHierarchy)
        cache.get(net_b, "ch-csr")  # evicts net_a; spills the wrapped graph
        assert cache.evictions == 1
        assert list(tmp_path.glob("*-ch-csr.ch")), "hierarchy was not spilled"
        reloaded = cache.get(net_a, "ch-csr")
        assert cache.disk_loads == 1
        assert isinstance(reloaded, CSRHierarchy)
        assert reloaded.num_nodes == built.num_nodes
        # The reloaded hierarchy answers queries identically.
        nodes = list(net_a.nodes())
        for s, t in [(nodes[0], nodes[-1]), (nodes[3], nodes[7])]:
            assert csr_ch_path(reloaded, s, t).distance == pytest.approx(
                csr_ch_path(built, s, t).distance
            )

    def test_invalidate(self, small_grid):
        cache = PreprocessingCache(capacity=2)
        cache.get(small_grid, "ch")
        assert cache.invalidate(small_grid, "ch") is True
        assert cache.invalidate(small_grid, "ch") is False
        cache.get(small_grid, "ch")
        assert cache.misses == 2

    def test_unknown_engine_rejected(self, small_grid):
        with pytest.raises(KeyError):
            PreprocessingCache().get(small_grid, "warp-drive")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PreprocessingCache(capacity=0)


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("fp", (1, 2), (3,), "ch") is None
        table = _table(1, 3)
        cache.put("fp", (1, 2), (3,), "ch", table)
        assert cache.get("fp", (1, 2), (3,), "ch") is table
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_includes_engine_order_and_network(self):
        cache = ResultCache(capacity=8)
        cache.put("fp", (1, 2), (3,), "ch", _table(1, 3))
        assert cache.get("fp", (1, 2), (3,), "dijkstra") is None
        assert cache.get("fp", (2, 1), (3,), "ch") is None  # wire order matters
        assert cache.get("other", (1, 2), (3,), "ch") is None  # other network

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("fp", (1,), (2,), "ch", _table(1, 2))
        cache.put("fp", (3,), (4,), "ch", _table(3, 4))
        cache.get("fp", (1,), (2,), "ch")  # refresh recency of the first
        cache.put("fp", (5,), (6,), "ch", _table(5, 6))  # evicts (3,)->(4,)
        assert cache.evictions == 1
        assert cache.get("fp", (3,), (4,), "ch") is None
        assert cache.get("fp", (1,), (2,), "ch") is not None

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("fp", (1,), (2,), "ch", _table(1, 2))
        assert len(cache) == 0
        assert cache.get("fp", (1,), (2,), "ch") is None

    def test_clear_resets_counters(self):
        cache = ResultCache(capacity=2)
        cache.put("fp", (1,), (2,), "ch", _table(1, 2))
        cache.get("fp", (1,), (2,), "ch")
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_snapshot_hit_rate(self):
        cache = ResultCache(capacity=2)
        cache.put("fp", (1,), (2,), "ch", _table(1, 2))
        cache.get("fp", (1,), (2,), "ch")
        cache.get("fp", (9,), (8,), "ch")
        snap = cache.snapshot()
        assert snap.result_hits == 1 and snap.result_misses == 1
        assert snap.result_hit_rate == pytest.approx(0.5)


class TestInvalidateFingerprint:
    def test_preprocessing_drops_all_engines_of_one_fingerprint(
        self, small_grid, tiger_net
    ):
        cache = PreprocessingCache(capacity=8)
        cache.get(small_grid, "ch")
        cache.get(small_grid, "dijkstra-csr")
        cache.get(tiger_net, "ch")
        fp = network_fingerprint(small_grid)
        assert cache.invalidate_fingerprint(fp) == 2
        assert cache.peek(fp, "ch") is None
        assert cache.peek(fp, "dijkstra-csr") is None
        # The other fingerprint's artifact survives.
        assert cache.peek(network_fingerprint(tiger_net), "ch") is not None
        # Idempotent: nothing left to drop.
        assert cache.invalidate_fingerprint(fp) == 0

    def test_result_cache_drops_only_that_fingerprint(self):
        cache = ResultCache(capacity=8)
        cache.put("old", (1,), (2,), "ch", _table(1, 2))
        cache.put("old", (3,), (4,), "ch", _table(3, 4))
        cache.put("new", (1,), (2,), "ch", _table(1, 2))
        assert cache.invalidate_fingerprint("old") == 2
        assert cache.get("old", (1,), (2,), "ch") is None
        assert cache.get("new", (1,), (2,), "ch") is not None
