"""Tests for the serving stack's traffic-reweight path and shard hints."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import EdgeError
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.overlay import OverlayGraph, build_overlay, dumps_overlay
from repro.service.cache import PreprocessingCache
from repro.service.serving import ReweightOutcome, ServingConfig, ServingStack


@pytest.fixture()
def net():
    return grid_network(12, 12, perturbation=0.1, seed=6)


def _query(net, source, destination, seed=0):
    obfuscator = PathQueryObfuscator(net, seed=seed)
    record = obfuscator.obfuscate_independent(
        ClientRequest("u", PathQuery(source, destination), ProtectionSetting(2, 2))
    )
    return record.query


def _assert_exact(net, response):
    for (s, t), path in response.candidates.paths.items():
        ref = dijkstra_path(net, s, t).distance
        assert path.distance == pytest.approx(ref, abs=1e-9)


class TestReweight:
    def test_incremental_recustomization(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            old_overlay = stack.warm()
            assert isinstance(old_overlay, OverlayGraph)
            query = _query(net, 3, 140)
            stack.answer(query)
            intra = next(
                (u, v, w)
                for u, v, w in net.edges()
                if old_overlay.touched_cells([(u, v)])
            )
            u, v, w = intra
            outcome = stack.reweight([(u, v, w * 4.0)])
            assert isinstance(outcome, ReweightOutcome)
            assert outcome.recustomized
            assert outcome.edges == 1
            assert outcome.touched_cells == tuple(
                sorted(old_overlay.touched_cells([(u, v)]))
            )
            # The installed artifact is the incrementally refreshed
            # overlay (shares untouched cells with the old one) ...
            new_overlay = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert isinstance(new_overlay, OverlayGraph)
            shared = [
                cell
                for cell in range(old_overlay.num_cells)
                if cell not in outcome.touched_cells
            ]
            for cell in shared:
                assert new_overlay.cliques[cell] is old_overlay.cliques[cell]
            # ... serving hits it without a rebuild miss ...
            misses_before = stack.preprocessing.misses
            response = stack.answer(query)
            assert stack.preprocessing.misses == misses_before
            # ... and answers reflect the new weights exactly (the old
            # result table stopped matching via the fingerprint).
            assert not response.from_cache
            _assert_exact(net, response)

    def test_matches_scratch_build(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay", max_workers=1),
        ) as stack:
            stack.warm()
            u, v, w = next(net.edges())
            stack.reweight([(u, v, w * 2.0)])
            installed = stack.preprocessing.peek(
                stack._fingerprint(), "overlay"
            )
            assert dumps_overlay(installed) == dumps_overlay(
                build_overlay(net, kernel="dict")
            )

    def test_missing_edge_rejected(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            with pytest.raises(EdgeError):
                stack.reweight([(0, 0, 1.0)])
            # Nothing was applied: the fingerprint did not move.
            assert stack.preprocessing.misses == 0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_invalid_weight_applies_nothing(self, net, bad):
        u, v, w = next(net.edges())
        version = net.version
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            with pytest.raises(EdgeError):
                stack.reweight([(u, v, w * 2.0), (u, v, bad)])
        # Atomic: the valid leading change was not applied either.
        assert net.edge_weight(u, v) == w
        assert net.version == version

    def test_metric_flag_tracks_reweights(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            overlay = stack.warm()
            assert overlay.metric  # grid weights are Euclidean lengths
            u, v, w = next(
                (u, v, w)
                for u, v, w in net.edges()
                if overlay.touched_cells([(u, v)])
            )
            # Undercut the geometry: the A* bound becomes inadmissible,
            # so the incrementally installed overlay must drop the flag
            # (checked via only the changed edges, no full rescan) ...
            stack.reweight([(u, v, w * 0.25)])
            dropped = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert not dropped.metric
            _assert_exact(net, stack.answer(_query(net, 3, 140)))
            # ... and restoring the weight turns it back on.
            stack.reweight([(u, v, w)])
            restored = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert restored.metric
            _assert_exact(net, stack.answer(_query(net, 3, 140)))

    def test_non_overlay_engine_falls_back_to_rebuild(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="dijkstra-csr", max_workers=1),
        ) as stack:
            stack.warm()
            u, v, w = next(net.edges())
            outcome = stack.reweight([(u, v, w * 2.0)])
            assert not outcome.recustomized
            assert outcome.touched_cells == ()
            response = stack.answer(_query(net, 3, 140))
            _assert_exact(net, response)

    def test_shared_cache_never_recustomizes_foreign_overlay(self):
        # Two stacks over content-identical network *objects* share one
        # PreprocessingCache.  A reweight on stack A must not
        # recustomize the cached overlay bound to stack B's network —
        # it would read B's un-mutated weights and serve stale routes.
        net_a = grid_network(10, 10, perturbation=0.1, seed=6)
        net_b = grid_network(10, 10, perturbation=0.1, seed=6)
        cache = PreprocessingCache()
        with ServingStack.from_config(
            net_b,
            ServingConfig(engine="overlay-csr", max_workers=1),
            preprocessing_cache=cache,
        ) as stack_b, ServingStack.from_config(
            net_a,
            ServingConfig(engine="overlay-csr", max_workers=1),
            preprocessing_cache=cache,
        ) as stack_a:
            foreign = stack_b.warm()
            assert stack_a.warm() is foreign  # same fingerprint, B's object
            u, v, w = next(
                (u, v, w)
                for u, v, w in net_a.edges()
                if foreign.touched_cells([(u, v)])
            )
            outcome = stack_a.reweight([(u, v, w * 10.0)])
            assert not outcome.recustomized
            _assert_exact(net_a, stack_a.answer(_query(net_a, 3, 77)))

    def test_cold_cache_falls_back_to_rebuild(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            u, v, w = next(net.edges())
            outcome = stack.reweight([(u, v, w * 2.0)])
            assert not outcome.recustomized
            response = stack.answer(_query(net, 3, 140))
            _assert_exact(net, response)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)
class TestReweightPoolCoherence:
    """Re-weights that bypass the pooled recustomize (``recustomize=
    False``, an evicted artifact, a foreign overlay) must still reach
    the persistent pool's cumulative delta map — otherwise the next
    pooled refresh computes cliques from the blob's pre-change weights
    and silently serves wrong distances."""

    def test_bypassed_reweight_reaches_the_pool(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(
                engine="overlay-csr", max_workers=1, customize_workers=2
            ),
        ) as stack:
            stack.customizer._start_method = "fork"
            stack.warm()
            # Round 1: pooled recustomize — spills the blob.
            r1 = [(u, v, w * 1.5) for u, v, w in list(net.edges())[::5]]
            assert stack.reweight(r1).recustomized
            assert stack.customizer.spills == 1
            # Round 2: the pool is bypassed, but the network moves.
            r2 = [(u, v, w * 3.0) for u, v, w in list(net.edges())[1::7]]
            assert not stack.reweight(r2, recustomize=False).recustomized
            # Round 3: back on the pool (the artifact was not refreshed
            # in round 2, so rebuild it serially first).  The workers
            # must observe round 2's weights too, not just round 3's.
            stack.warm()
            r3 = [(u, v, w * 0.8) for u, v, w in list(net.edges())[2::6]]
            assert stack.reweight(r3).recustomized
            installed = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert dumps_overlay(installed) == dumps_overlay(
                build_overlay(net, kernel="csr")
            )
            # The bypass was absorbed into the delta map, not papered
            # over by a fresh spill.
            assert stack.customizer.spills == 1

    def test_bypassed_epoch_reweight_reaches_the_pool(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(
                engine="overlay-csr", max_workers=1, customize_workers=2
            ),
        ) as stack:
            stack.customizer._start_method = "fork"
            stack.warm()
            r1 = [(u, v, w * 1.5) for u, v, w in list(net.edges())[::5]]
            assert stack.reweight(r1, epoch=True).recustomized
            assert stack.customizer.spills == 1
            r2 = [
                (u, v, w * 3.0)
                for u, v, w in list(stack.network.edges())[1::7]
            ]
            outcome = stack.reweight(r2, recustomize=False, epoch=True)
            assert not outcome.recustomized
            stack.warm()
            r3 = [
                (u, v, w * 0.8)
                for u, v, w in list(stack.network.edges())[2::6]
            ]
            assert stack.reweight(r3, epoch=True).recustomized
            installed = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert dumps_overlay(installed) == dumps_overlay(
                build_overlay(stack.network, kernel="csr")
            )
            assert stack.customizer.spills == 1


class TestDispatchHint:
    def test_hint_is_source_cell(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            overlay = stack.warm()
            query = _query(net, 3, 140)
            hint = stack.dispatch_hint(query)
            assert hint == overlay.partition.cell_of[query.sources[0]]

    def test_hint_none_without_overlay(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="ch", max_workers=1),
        ) as stack:
            stack.warm()
            assert stack.dispatch_hint(_query(net, 3, 140)) is None

    def test_hint_none_on_cold_cache(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            assert stack.dispatch_hint(_query(net, 3, 140)) is None
            assert stack.preprocessing.misses == 0

    def test_batches_group_by_cell_byte_identically(self, net):
        queries = [
            _query(net, s, t, seed=i)
            for i, (s, t) in enumerate([(3, 140), (140, 3), (60, 80), (7, 100)])
        ]
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            batched = stack.answer_batch(queries)
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            solo = [stack.answer(q) for q in queries]
        for got, ref in zip(batched, solo):
            assert got.query is ref.query
            assert list(got.candidates.paths) == list(ref.candidates.paths)
            for pair, path in ref.candidates.paths.items():
                assert got.candidates.paths[pair].nodes == path.nodes
                assert got.candidates.paths[pair].distance == path.distance


class TestOverlaySpill:
    def test_evicted_overlay_reloads_from_disk(self, net, tmp_path):
        cache = PreprocessingCache(capacity=1, spill_dir=tmp_path)
        overlay = cache.get(net, "overlay-csr")
        assert isinstance(overlay, OverlayGraph)
        other = grid_network(5, 5, seed=1)
        cache.get(other, "dijkstra-csr")  # evicts (and spills) the overlay
        assert list(tmp_path.glob("*.ovlb")), "overlay spill file missing"
        reloaded = cache.get(net, "overlay-csr")
        assert cache.disk_loads == 1
        assert dumps_overlay(reloaded) == dumps_overlay(overlay)

    def test_spill_skips_non_integer_ids(self, tmp_path):
        from repro.network.graph import RoadNetwork

        net = RoadNetwork()
        net.add_node("a", 0.0, 0.0)
        net.add_node("b", 1.0, 0.0)
        net.add_edge("a", "b", 1.0)
        cache = PreprocessingCache(capacity=1, spill_dir=tmp_path)
        cache.get(net, "overlay")
        other = grid_network(4, 4, seed=1)
        cache.get(other, "dijkstra")  # evicts; spill must not blow up
        assert not list(tmp_path.glob("*.ovlb"))
