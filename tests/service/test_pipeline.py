"""Unit tests for the live traffic pipeline: stream, batcher, worker, facade."""

from __future__ import annotations

import pytest

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import EdgeError, GraphError
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.overlay import build_overlay, dumps_overlay
from repro.service.pipeline import (
    DeltaBatcher,
    RecustomizeWorker,
    TrafficEventStream,
    TrafficPipeline,
    replay_with_traffic,
)
from repro.service.serving import ServingConfig, ServingStack
from repro.workloads.replay import TrafficEvent


class ManualClock:
    """Settable monotonic clock; advances only via :meth:`advance`."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def net():
    return grid_network(10, 10, perturbation=0.1, seed=6)


def _query(net, source, destination, seed=0):
    obfuscator = PathQueryObfuscator(net, seed=seed)
    record = obfuscator.obfuscate_independent(
        ClientRequest("u", PathQuery(source, destination), ProtectionSetting(2, 2))
    )
    return record.query


def _assert_exact(stack, response):
    for (s, t), path in response.candidates.paths.items():
        ref = dijkstra_path(stack.network, s, t).distance
        assert path.distance == pytest.approx(ref, abs=1e-9)


def _events(net, count, factor=1.5):
    out = []
    for (u, v, w), _ in zip(net.edges(), range(count)):
        out.append(TrafficEvent(u, v, w * factor))
    return out


class TestTrafficEventStream:
    def test_publish_offsets_and_order(self, net):
        stream = TrafficEventStream()
        events = _events(net, 3)
        assert [stream.publish(e) for e in events] == [0, 1, 2]
        assert len(stream) == 3
        assert stream.events() == events

    def test_publish_many_single_stamp(self, net):
        clock = ManualClock()
        stream = TrafficEventStream(clock=clock)
        clock.advance(2.0)
        assert stream.publish_many(_events(net, 4)) == 4
        stamps = {s.arrived for s in stream.read_from(0)}
        assert stamps == {2.0}

    def test_read_from_replays_any_suffix(self, net):
        stream = TrafficEventStream()
        events = _events(net, 5)
        stream.publish_many(events)
        assert [s.event for s in stream.read_from(2)] == events[2:]
        assert stream.read_from(5) == []


class TestDeltaBatcher:
    def test_debounce_window_holds_then_flushes_everything(self, net):
        clock = ManualClock()
        stream = TrafficEventStream(clock=clock)
        batcher = DeltaBatcher(stream, debounce_s=1.0, clock=clock)
        events = _events(net, 3)
        stream.publish_many(events)
        assert batcher.drain() is None  # window still open
        assert batcher.due_in() == pytest.approx(1.0)
        clock.advance(1.0)
        assert batcher.due_in() == 0.0
        batch = batcher.drain()
        assert batch is not None
        assert batch.first_offset == 0
        assert len(batch) == 3
        assert batcher.pending() == 0
        assert batcher.due_in() is None

    def test_last_writer_wins_within_a_batch(self, net):
        u, v, w = next(net.edges())
        stream = TrafficEventStream()
        batcher = DeltaBatcher(stream, debounce_s=0.0)
        stream.publish(TrafficEvent(u, v, w * 2.0))
        stream.publish(TrafficEvent(u, v, w * 3.0))
        batch = batcher.drain()
        assert batch.changes == ((u, v, w * 3.0),)
        assert len(batch) == 2  # both events still carry staleness stamps

    def test_max_batch_makes_the_window_due_immediately(self, net):
        clock = ManualClock()
        stream = TrafficEventStream(clock=clock)
        batcher = DeltaBatcher(stream, debounce_s=60.0, max_batch=2, clock=clock)
        stream.publish_many(_events(net, 2))
        assert batcher.due_in() == 0.0
        assert len(batcher.drain()) == 2

    def test_force_flushes_an_open_window(self, net):
        clock = ManualClock()
        stream = TrafficEventStream(clock=clock)
        batcher = DeltaBatcher(stream, debounce_s=60.0, clock=clock)
        stream.publish_many(_events(net, 2))
        assert batcher.drain() is None
        assert len(batcher.drain(force=True)) == 2

    def test_batches_partition_the_stream_contiguously(self, net):
        stream = TrafficEventStream()
        batcher = DeltaBatcher(stream, debounce_s=0.0)
        events = _events(net, 6)
        stream.publish_many(events[:2])
        first = batcher.drain()
        stream.publish_many(events[2:])
        second = batcher.drain()
        assert first.first_offset == 0 and len(first) == 2
        assert second.first_offset == 2 and len(second) == 4

    def test_cells_attribution(self, net):
        stream = TrafficEventStream()
        batcher = DeltaBatcher(stream, debounce_s=0.0)
        overlay = build_overlay(net, kernel="csr")
        stream.publish_many(_events(net, 4))
        counts = batcher.drain().cells(overlay.partition.cell_of)
        assert sum(counts.values()) == 4

    def test_invalid_parameters_rejected(self, net):
        stream = TrafficEventStream()
        with pytest.raises(ValueError):
            DeltaBatcher(stream, debounce_s=-1.0)
        with pytest.raises(ValueError):
            DeltaBatcher(stream, max_batch=0)


class TestEpochReweight:
    def test_install_swaps_network_without_mutating_the_old(self, net):
        u, v, w = next(net.edges())
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            old_network = stack.network
            old_epoch = stack.epoch
            outcome = stack.reweight([(u, v, w * 2.0)], epoch=True)
            assert stack.epoch == old_epoch + 1
            assert outcome.epoch == stack.epoch
            assert outcome.fingerprint != outcome.previous_fingerprint
            # Copy-on-write: the old epoch's snapshot is untouched, the
            # serving pointer moved to a new object with the new weight.
            assert stack.network is not old_network
            assert old_network.edge_weight(u, v) == w
            assert stack.network.edge_weight(u, v) == w * 2.0
            _assert_exact(stack, stack.answer(_query(stack.network, 3, 77)))

    def test_recustomized_install_matches_scratch_build(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            overlay = stack.warm()
            u, v, w = next(
                (u, v, w)
                for u, v, w in net.edges()
                if overlay.touched_cells([(u, v)])
            )
            outcome = stack.reweight([(u, v, w * 3.0)], epoch=True)
            assert outcome.recustomized
            installed = stack.preprocessing.peek(
                outcome.fingerprint, "overlay-csr"
            )
            assert dumps_overlay(installed) == dumps_overlay(
                build_overlay(stack.network, kernel=installed.kernel)
            )

    def test_empty_change_set_is_a_no_op(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            epoch = stack.epoch
            outcome = stack.reweight([], epoch=True)
            assert outcome.edges == 0
            assert stack.epoch == epoch

    def test_epoch_validation_is_atomic(self, net):
        u, v, w = next(net.edges())
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            epoch = stack.epoch
            with pytest.raises(EdgeError):
                stack.reweight([(u, v, w * 2.0), (0, 0, 1.0)], epoch=True)
            assert stack.epoch == epoch
            assert stack.network.edge_weight(u, v) == w

    def test_recustomized_on_rejects_mismatched_snapshot(self, net):
        overlay = build_overlay(net, kernel="csr")
        other = grid_network(5, 5, seed=1)
        with pytest.raises(GraphError):
            overlay.recustomized_on(other, cells=[0])


class TestRecustomizeWorker:
    def test_step_without_pending_events_is_none(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            assert pipeline.worker.step() is None

    def test_staleness_measured_on_the_injected_clock(self, net):
        clock = ManualClock()
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0, clock=clock)
            pipeline.publish_many(_events(net, 2))
            clock.advance(0.25)
            assert pipeline.pump() == 1
            samples = pipeline.worker.staleness_samples()
            assert samples == [pytest.approx(0.25)] * 2
            snap = pipeline.snapshot()
            assert snap.staleness_p95_ms == pytest.approx(250.0)
            assert snap.staleness_max_ms == pytest.approx(250.0)

    def test_snapshot_surfaces_customize_pool_health(self, net):
        """A parallel-customization stack reports its worker count and
        blob-spill count (a healthy pool spills exactly once)."""
        with ServingStack.from_config(
            net,
            ServingConfig(
                engine="overlay-csr", max_workers=1, customize_workers=2
            ),
        ) as stack:
            assert stack.customizer is not None
            stack.customizer._start_method = "fork"
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            for factor in (1.5, 2.0):
                pipeline.publish_many(_events(net, 30, factor=factor))
                pipeline.pump()
            snap = pipeline.snapshot()
            assert snap.customize_workers == 2
            assert snap.customize_spills == 1
            assert snap.to_dict()["customize_workers"] == 2

    def test_snapshot_serial_stack_reports_zero_workers(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            snap = pipeline.snapshot()
            assert snap.customize_workers == 0
            assert snap.customize_spills == 0

    def test_retirement_releases_old_epoch_cache_keys(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0, keep_epochs=1)
            fingerprints = [stack._fingerprint()]
            for factor in (2.0, 3.0, 4.0):
                pipeline.publish_many(_events(net, 1, factor=factor))
                pipeline.pump()
                fingerprints.append(stack._fingerprint())
            # Oldest epochs beyond the keep window are released; the
            # previous and current epochs' artifacts remain serveable.
            assert stack.preprocessing.peek(fingerprints[0], "overlay-csr") is None
            assert stack.preprocessing.peek(fingerprints[1], "overlay-csr") is None
            for fp in fingerprints[2:]:
                assert stack.preprocessing.peek(fp, "overlay-csr") is not None

    def test_background_error_is_parked_and_reraised(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            pipeline.start()
            try:
                pipeline.publish(TrafficEvent(0, 0, 1.0))  # no such edge
                with pytest.raises(EdgeError):
                    pipeline.quiesce(timeout_s=10.0)
            finally:
                pipeline.worker.stop(drain=False)

    def test_keep_epochs_validation(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            with pytest.raises(ValueError):
                RecustomizeWorker(
                    stack,
                    DeltaBatcher(TrafficEventStream()),
                    keep_epochs=0,
                )


class TestTrafficPipeline:
    def test_pump_installs_and_counts(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            pipeline.publish_many(_events(net, 5))
            assert pipeline.pump() == 1
            snap = pipeline.snapshot()
            assert snap.events == 5
            assert snap.pending == 0
            assert snap.installs == 1
            assert snap.edges_applied == 5
            assert snap.epoch == stack.epoch >= 1
            assert "epoch" in repr(pipeline)

    def test_background_quiesce_reaches_scratch_built_state(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            with TrafficPipeline(stack, debounce_ms=1.0) as pipeline:
                pipeline.publish_many(_events(net, 12, factor=0.9))
                pipeline.publish_many(_events(net, 12, factor=1.7))
                pipeline.quiesce()
                assert pipeline.snapshot().pending == 0
            installed = stack.preprocessing.peek(
                stack._fingerprint(), "overlay-csr"
            )
            assert dumps_overlay(installed) == dumps_overlay(
                build_overlay(stack.network, kernel=installed.kernel)
            )

    def test_pipeline_metrics_registered_on_the_stack(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            pipeline.publish_many(_events(net, 2))
            pipeline.pump()
            doc = stack.metrics.to_json()
            for name in (
                "repro_pipeline_events_total",
                "repro_pipeline_pending_events",
                "repro_pipeline_installs_total",
                "repro_pipeline_staleness_seconds",
            ):
                assert name in doc


class TestReplayWithTraffic:
    def test_mixed_stream_serves_and_installs_in_order(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            u, v, w = next(net.edges())
            items = [
                _query(net, 3, 77),
                _query(net, 8, 55),
                TrafficEvent(u, v, w * 2.5),
                _query(net, 20, 90),
            ]
            report = replay_with_traffic(
                stack, items, pipeline, repeats=2, batch_size=2
            )
            assert report.queries == 6
            assert len(report.latencies) == 6
            assert stack.network.edge_weight(u, v) == w * 2.5
            assert pipeline.snapshot().pending == 0
            _assert_exact(stack, stack.answer(_query(stack.network, 3, 77)))

    def test_invalid_parameters_rejected(self, net):
        with ServingStack.from_config(
            net,
            ServingConfig(engine="overlay-csr", max_workers=1),
        ) as stack:
            pipeline = TrafficPipeline(stack)
            with pytest.raises(ValueError):
                replay_with_traffic(stack, [], pipeline, repeats=0)
            with pytest.raises(ValueError):
                replay_with_traffic(stack, [], pipeline, batch_size=0)
