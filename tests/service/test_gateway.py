"""HTTP gateway tests: endpoints, middleware, errors, byte-identity.

Drives a real :class:`~repro.service.gateway.GatewayServer` over TCP
with stdlib ``http.client`` — no mocked transport — and checks the
properties the gateway gate relies on: versioned routing (including the
obfuscated numeric aliases), admission control with ``Retry-After``,
machine-readable error mapping, and canonical response bodies that are
byte-identical to in-process
:meth:`~repro.service.serving.ServingStack.answer_batch` answers.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.query import ObfuscatedPathQuery
from repro.network.generators import grid_network
from repro.service.gateway import (
    API_PREFIX,
    ROUTE_ALIASES,
    GatewayConfig,
    GatewayServer,
    redacted_fields,
)
from repro.service.serving import ServingConfig, ServingStack
from repro.service.wire import RouteRequest, RouteResponse

ENGINE = "dijkstra"


def _request(server, method, path, body=None, headers=None):
    """One HTTP request against ``server``; returns (status, headers, body)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, perturbation=0.1, seed=7)


@pytest.fixture(scope="module")
def server(network):
    with GatewayServer(
        network, ServingConfig(engine=ENGINE), GatewayConfig()
    ) as gateway_server:
        yield gateway_server


@pytest.fixture(scope="module")
def query(network):
    nodes = sorted(network.nodes())
    return ObfuscatedPathQuery(tuple(nodes[:3]), tuple(nodes[-3:]))


class TestLifecycle:
    def test_binds_a_real_port(self, server):
        assert server.port > 0
        assert server.host == "127.0.0.1"

    def test_health(self, server):
        status, _, body = _request(server, "GET", f"{API_PREFIX}/health")
        doc = json.loads(body)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["engine"] == ENGINE
        assert doc["workers"] == 0

    def test_metrics_shape(self, server):
        status, _, body = _request(server, "GET", f"{API_PREFIX}/metrics")
        doc = json.loads(body)
        assert status == 200
        assert doc["kind"] == "gateway_metrics"
        assert doc["config"]["kind"] == "serving_config"
        assert "epoch" in doc["serving"]
        assert "repro_gateway_requests_total" in doc["gateway"]["metrics"]


class TestRouting:
    def test_route_answers_and_is_byte_identical(
        self, server, network, query
    ):
        status, headers, body = _request(
            server,
            "POST",
            f"{API_PREFIX}/route",
            body=RouteRequest.from_query(query).to_json(),
        )
        assert status == 200
        assert headers.get("X-Request-Id")
        over_http = RouteResponse.from_json(body)
        with ServingStack.from_config(
            network, ServingConfig(engine=ENGINE)
        ) as stack:
            in_process = RouteResponse.from_server(
                stack.answer_batch([query])[0]
            )
        assert over_http.payload_json() == in_process.payload_json()

    def test_batch_answers_every_query(self, server, query):
        entry = {
            "sources": list(query.sources),
            "destinations": list(query.destinations),
        }
        status, _, body = _request(
            server,
            "POST",
            f"{API_PREFIX}/batch",
            body=json.dumps({"queries": [entry, entry]}),
        )
        doc = json.loads(body)
        assert status == 200
        assert len(doc["results"]) == 2
        for result in doc["results"]:
            assert len(result["paths"]) == len(query.sources) * len(
                query.destinations
            )

    def test_numeric_alias_routes_like_named_endpoint(self, server, query):
        wire = RouteRequest.from_query(query).to_json()
        _, _, named = _request(
            server, "POST", f"{API_PREFIX}/route", body=wire
        )
        status, _, aliased = _request(
            server, "POST", f"{API_PREFIX}/1.1", body=wire
        )
        assert status == 200
        named_payload = RouteResponse.from_json(named).payload_json()
        alias_payload = RouteResponse.from_json(aliased).payload_json()
        assert alias_payload == named_payload

    def test_alias_table_covers_every_endpoint(self, server):
        assert set(ROUTE_ALIASES.values()) == {
            "route", "batch", "health", "metrics", "reweight",
        }
        status, _, body = _request(server, "GET", f"{API_PREFIX}/1.3")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_reweight_bumps_epoch(self, network):
        nodes = sorted(network.nodes())
        neighbor, weight = next(iter(network.neighbors(nodes[0]).items()))
        with GatewayServer(
            network.copy(), ServingConfig(engine=ENGINE)
        ) as fresh:
            changes = [[nodes[0], neighbor, weight * 4.0]]
            status, _, body = _request(
                fresh,
                "POST",
                f"{API_PREFIX}/reweight",
                body=json.dumps({"changes": changes}),
            )
            doc = json.loads(body)
            assert status == 200
            assert doc["edges"] == 1
            assert doc["epoch"] == 1
            _, _, health = _request(fresh, "GET", f"{API_PREFIX}/health")
            assert json.loads(health)["epoch"] == 1


class TestErrors:
    def test_invalid_json_is_400(self, server):
        status, _, body = _request(
            server, "POST", f"{API_PREFIX}/route", body="{nope"
        )
        assert status == 400
        assert json.loads(body)["error"] == "invalid_json"

    def test_unknown_route_is_404(self, server):
        status, _, body = _request(server, "GET", f"{API_PREFIX}/nope")
        assert status == 404
        assert json.loads(body)["error"] == "unknown_route"

    def test_unversioned_path_is_404(self, server):
        status, _, body = _request(server, "GET", "/health")
        assert status == 404
        assert json.loads(body)["error"] == "unknown_route"

    def test_wrong_method_is_405(self, server):
        status, _, body = _request(server, "GET", f"{API_PREFIX}/route")
        assert status == 405
        assert json.loads(body)["error"] == "bad_method"

    def test_invalid_query_is_400_and_leaks_no_node_ids(self, server):
        status, _, body = _request(
            server,
            "POST",
            f"{API_PREFIX}/route",
            body=json.dumps(
                {"sources": [123454321, 123454321],
                 "destinations": [123454321]}
            ),
        )
        assert status == 400
        doc = json.loads(body)
        assert doc["error"] == "invalid_request"
        assert "123454321" not in body.decode()

    def test_no_path_is_422(self):
        network = grid_network(4, 4, seed=1)
        island = 999_000
        network.add_node(island, -50.0, -50.0)
        nodes = sorted(network.nodes())
        with GatewayServer(network, ServingConfig(engine=ENGINE)) as srv:
            status, _, body = _request(
                srv,
                "POST",
                f"{API_PREFIX}/route",
                body=json.dumps(
                    {"sources": [nodes[0]], "destinations": [island]}
                ),
            )
        assert status == 422
        doc = json.loads(body)
        assert doc["error"] == "no_path"
        assert str(island) not in body.decode()

    def test_admission_control_refuses_with_429(self, server):
        gateway = server.gateway
        assert gateway._inflight == 0
        gateway._inflight = gateway.config.max_inflight
        try:
            status, headers, body = _request(
                server, "GET", f"{API_PREFIX}/health"
            )
        finally:
            gateway._inflight = 0
        doc = json.loads(body)
        assert status == 429
        assert doc["error"] == "overloaded"
        # Precise float hint in the body, RFC 9110 integer delta-seconds
        # (rounded up, never 0) on the wire header.
        assert doc["retry_after_s"] == gateway.config.retry_after_s
        assert headers.get("Retry-After") == "1"
        assert headers["Retry-After"].isdigit()

    def test_retry_after_header_rounds_up(self):
        from repro.service.gateway import _error_response

        assert _error_response(
            "overloaded", retry_after_s=0.05
        ).headers["Retry-After"] == "1"
        assert _error_response(
            "overloaded", retry_after_s=2.2
        ).headers["Retry-After"] == "3"
        assert _error_response(
            "overloaded", retry_after_s=4.0
        ).headers["Retry-After"] == "4"
        assert "Retry-After" not in _error_response("internal").headers

    def test_loadgen_parses_both_retry_hints(self):
        from repro.workloads.loadgen import parse_retry_after

        body = json.dumps(
            {"error": "overloaded", "retry_after_s": 0.05}
        ).encode()
        # Body float wins over the coarser header.
        assert parse_retry_after("1", body) == 0.05
        # Header alone (any RFC-compliant server) still parses.
        assert parse_retry_after("3", b"not json") == 3.0
        assert parse_retry_after("junk", b"{}") is None
        assert parse_retry_after(None, b"") is None


class TestRequestId:
    def test_valid_supplied_id_is_echoed(self, server):
        _, headers, _ = _request(
            server,
            "GET",
            f"{API_PREFIX}/health",
            headers={"X-Request-Id": "abc-123_XYZ"},
        )
        assert headers["X-Request-Id"] == "abc-123_XYZ"

    def test_invalid_supplied_id_is_replaced(self, server):
        _, headers, _ = _request(
            server,
            "GET",
            f"{API_PREFIX}/health",
            headers={"X-Request-Id": "bad id with spaces!"},
        )
        issued = headers["X-Request-Id"]
        assert issued != "bad id with spaces!"
        assert issued  # a fresh id was minted

    def test_fresh_id_when_absent(self, server):
        _, first, _ = _request(server, "GET", f"{API_PREFIX}/health")
        _, second, _ = _request(server, "GET", f"{API_PREFIX}/health")
        assert first["X-Request-Id"] != second["X-Request-Id"]


class TestRedactedFields:
    def test_rejects_forbidden_keys(self):
        with pytest.raises(ValueError):
            redacted_fields(sources=(1, 2))
        with pytest.raises(ValueError):
            redacted_fields(path=[1, 2, 3])

    def test_passes_safe_keys_through(self):
        fields = redacted_fields(status=200, duration_ms=1.5)
        assert fields == {"status": 200, "duration_ms": 1.5}


class TestGatewayConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"max_inflight": 0},
            {"max_batch": 0},
            {"window_ms": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GatewayConfig(**kwargs)

    def test_frozen(self):
        config = GatewayConfig()
        with pytest.raises(AttributeError):
            config.workers = 3


class TestShardWorkers:
    """Multi-process dispatch: spawn workers, spill handoff, reweight."""

    def test_worker_answers_match_in_process(self):
        network = grid_network(8, 8, perturbation=0.1, seed=11)
        nodes = sorted(network.nodes())
        queries = [
            ObfuscatedPathQuery(
                (nodes[i], nodes[i + 9]), (nodes[-1 - i], nodes[-10 - i])
            )
            for i in range(4)
        ]
        serving = ServingConfig(engine="overlay-csr")
        with GatewayServer(
            network, serving, GatewayConfig(workers=2)
        ) as srv:
            _, _, health = _request(srv, "GET", f"{API_PREFIX}/health")
            assert json.loads(health)["workers"] == 2
            over_http = []
            for query in queries:
                status, _, body = _request(
                    srv,
                    "POST",
                    f"{API_PREFIX}/route",
                    body=RouteRequest.from_query(query).to_json(),
                )
                assert status == 200
                over_http.append(RouteResponse.from_json(body))
        with ServingStack.from_config(
            network, ServingConfig(engine="overlay-csr")
        ) as stack:
            expected = [
                RouteResponse.from_server(r)
                for r in stack.answer_batch(queries)
            ]
        assert [r.payload_json() for r in over_http] == [
            r.payload_json() for r in expected
        ]

    def test_reweight_broadcast_reaches_every_shard(self):
        network = grid_network(8, 8, seed=5)
        nodes = sorted(network.nodes())
        neighbor, weight = next(iter(network.neighbors(nodes[0]).items()))
        with GatewayServer(
            network,
            ServingConfig(engine="overlay-csr"),
            GatewayConfig(workers=2),
        ) as srv:
            status, _, body = _request(
                srv,
                "POST",
                f"{API_PREFIX}/reweight",
                body=json.dumps(
                    {"changes": [[nodes[0], neighbor, weight * 3.0]]}
                ),
            )
            assert status == 200
            assert json.loads(body)["epoch"] == 1
            _, _, metrics = _request(srv, "GET", f"{API_PREFIX}/metrics")
            shards = json.loads(metrics)["shards"]
            assert [shard["epoch"] for shard in shards] == [1, 1]
            # every worker reports its measured cold warm-up time; with
            # the parent's pre-spilled blob it is a disk load, not a
            # rebuild, so it is bounded and strictly positive
            assert all(shard["warm_ms"] > 0.0 for shard in shards)
