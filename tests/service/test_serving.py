"""Tests for the concurrent serving stack."""

from __future__ import annotations

import pytest

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.service.cache import PreprocessingCache, ResultCache
from repro.service.serving import ServingConfig, ServingStack, replay


def _requests(n=6, offset=40):
    return [
        ClientRequest(f"u{i}", PathQuery(i, offset + i), ProtectionSetting(3, 3))
        for i in range(n)
    ]


def _queries(network, n=6, seed=5, mode="independent", offset=40):
    obfuscator = PathQueryObfuscator(network, seed=seed)
    records = obfuscator.obfuscate_batch(_requests(n, offset), mode=mode)
    return [record.query for record in records]


class TestServingStack:
    def test_cold_then_warm_batches(self, small_grid):
        queries = _queries(small_grid)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            cold = stack.answer_batch(queries)
            warm = stack.answer_batch(queries)
        assert all(not r.from_cache for r in cold)
        assert all(r.from_cache for r in warm)
        for a, b in zip(cold, warm):
            assert a.candidates.paths == b.candidates.paths
        snap = stack.snapshot()
        assert snap.result_hits == len(queries)
        assert snap.result_misses == len(queries)

    def test_server_accounting_includes_cache_hits(self, small_grid):
        queries = _queries(small_grid, n=4)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            stack.answer_batch(queries)
            settled_after_cold = stack.server.counters.stats.settled_nodes
            stack.answer_batch(queries)
        # The adversary's view and load counters see every query...
        assert len(stack.server.observed_queries) == 2 * len(queries)
        assert stack.server.counters.queries_served == 2 * len(queries)
        # ...but cached responses add no search work.
        assert stack.server.counters.stats.settled_nodes == settled_after_cold

    def test_concurrent_matches_serial(self, small_grid):
        queries = _queries(small_grid, n=8)

        def run(workers):
            with ServingStack.from_config(
                small_grid,
                ServingConfig(engine="dijkstra", max_workers=workers),
            ) as stack:
                responses = stack.answer_batch(queries)
            return [
                {k: (p.nodes, p.distance) for k, p in r.candidates.paths.items()}
                for r in responses
            ]

        serial = run(1)
        assert run(4) == serial

    def test_preprocessed_engine_shares_artifact(self, small_grid):
        pre = PreprocessingCache()
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="ch", max_workers=2),
            preprocessing_cache=pre,
        ) as stack:
            stack.answer_batch(_queries(small_grid, n=4))
        # One contraction total, regardless of worker count.
        assert pre.misses == 1

    def test_empty_batch(self, small_grid):
        with ServingStack.from_config(small_grid) as stack:
            assert stack.answer_batch([]) == []

    def test_single_query_answer(self, small_grid):
        query = _queries(small_grid, n=1)[0]
        with ServingStack.from_config(small_grid) as stack:
            response = stack.answer(query)
            assert response.query is query
            assert stack.answer(query).from_cache

    def test_warm_builds_artifact_once(self, small_grid):
        with ServingStack.from_config(small_grid, ServingConfig(engine="ch")) as stack:
            first = stack.warm()
            assert stack.warm() is first
            assert stack.preprocessing.misses == 1

    def test_duplicate_queries_in_batch_share_one_evaluation(self, small_grid):
        query = _queries(small_grid, n=1)[0]
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            responses = stack.answer_batch([query, query, query])
            settled = stack.server.counters.stats.settled_nodes
        assert [r.from_cache for r in responses] == [False, True, True]
        assert responses[0].candidates is responses[2].candidates
        # Counters agree with the from_cache flags: 1 miss, 2 shared hits.
        assert (stack.results.hits, stack.results.misses) == (2, 1)
        # One search's worth of work, not three.
        single = ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        )
        single.answer_batch([query])
        assert settled == single.server.counters.stats.settled_nodes
        single.close()

    def test_shared_result_cache_isolates_networks(self, small_grid, tiger_net):
        """One ResultCache shared by stacks over different networks must
        never serve a table across networks (keys carry the fingerprint)."""
        from repro.service.cache import ResultCache

        shared = ResultCache(capacity=64)
        # Both networks contain node ids 0..47, so (S, T) keys collide.
        queries = _queries(small_grid, n=3, offset=30)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
            result_cache=shared,
        ) as stack_a:
            responses_a = stack_a.answer_batch(queries)
        with ServingStack.from_config(
            tiger_net,
            ServingConfig(engine="dijkstra"),
            result_cache=shared,
        ) as stack_b:
            responses_b = stack_b.answer_batch(queries)
        assert all(not r.from_cache for r in responses_b)
        for a, b in zip(responses_a, responses_b):
            assert a.candidates is not b.candidates

    def test_network_mutation_invalidates_results(self, small_grid):
        net = small_grid.copy()
        queries = _queries(net, n=2)
        with ServingStack.from_config(net, ServingConfig(engine="dijkstra")) as stack:
            stack.answer_batch(queries)
            net.add_edge(0, 33, 0.001)  # new shortcut changes shortest paths
            responses = stack.answer_batch(queries)
        assert all(not r.from_cache for r in responses)

    def test_fingerprint_memoized_until_mutation(self, small_grid):
        net = small_grid.copy()
        with ServingStack.from_config(net, ServingConfig(engine="dijkstra")) as stack:
            first = stack._fingerprint()
            assert stack._fingerprint() is first  # memo hit, not a rehash
            net.add_edge(0, 33, 0.5)
            assert stack._fingerprint() != first
            net.remove_edge(0, 33)
            # Content round-trips even though the version kept rising.
            assert stack._fingerprint() == first


class TestOpaqueSystemIntegration:
    def test_serving_is_exclusive_with_engine(self, small_grid):
        stack = ServingStack.from_config(small_grid)
        with pytest.raises(ValueError):
            OpaqueSystem(small_grid, serving=stack, engine="ch")
        with pytest.raises(ValueError):
            OpaqueSystem(small_grid, serving=stack, paged=True)
        stack.close()

    def test_serving_requires_same_network(self, small_grid, tiger_net):
        stack = ServingStack.from_config(small_grid)
        with pytest.raises(ValueError):
            OpaqueSystem(tiger_net, serving=stack)
        stack.close()

    def test_results_identical_with_and_without_stack(self, small_grid):
        requests = _requests()
        plain = OpaqueSystem(small_grid, mode="independent", seed=1)
        expected = plain.submit(requests)

        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            system = OpaqueSystem(
                small_grid, mode="independent", serving=stack, seed=1
            )
            cached = system.submit(requests)
        assert {u: p.nodes for u, p in cached.items()} == {
            u: p.nodes for u, p in expected.items()
        }

    def test_session_report_surfaces_cache_counters(self, small_grid):
        requests = _requests()
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            first = OpaqueSystem(
                small_grid, mode="independent", serving=stack, seed=1
            )
            first.submit(requests)
            report1 = first.last_report
            second = OpaqueSystem(
                small_grid, mode="independent", serving=stack, seed=1
            )
            second.submit(requests)
            report2 = second.last_report
        assert report1.cached_queries == 0
        assert report1.serving_caches.result_misses == len(requests)
        assert report2.cached_queries == len(requests)
        assert report2.serving_caches.result_hits == len(requests)
        # The warm session did zero search work.
        assert report2.server_stats.settled_nodes == 0

    def test_shared_mode_through_stack(self, small_grid):
        requests = _requests()
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            system = OpaqueSystem(
                small_grid, mode="shared", serving=stack, seed=2
            )
            results = system.submit(requests)
        assert set(results) == {r.user for r in requests}


class TestReplay:
    def test_replay_latencies_and_hit_rate(self, small_grid):
        queries = _queries(small_grid, n=5)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            report = replay(stack, queries, repeats=3, batch_size=2)
        assert report.queries == 15
        assert len(report.latencies) == 15
        assert report.p50_latency <= report.p95_latency <= report.p99_latency
        assert report.cache.result_hits == 10
        assert report.cache.result_misses == 5

    def test_replay_validates_arguments(self, small_grid):
        with ServingStack.from_config(small_grid) as stack:
            with pytest.raises(ValueError):
                replay(stack, [], repeats=0)
            with pytest.raises(ValueError):
                replay(stack, [], batch_size=0)

    def test_replay_with_injected_clock_is_deterministic(self, small_grid):
        # The CoalesceConfig.clock pattern: a stepping fake clock makes
        # every latency exactly one tick, so the report is assertable
        # down to the numbers instead of "is positive".
        ticks = iter(range(1000))
        clock = lambda: float(next(ticks))  # noqa: E731
        queries = _queries(small_grid, n=4)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            report = replay(
                stack, queries, repeats=2, batch_size=2, clock=clock
            )
        # Each batch reads the clock twice (t0, t1) -> latency 1.0; four
        # batches total, every member charged its batch's completion.
        assert report.latencies == [1.0] * 8
        # start read + 2 reads per batch + final read = 10 ticks.
        assert report.total_seconds == 9.0

    def test_report_percentile_agrees_with_stats_module(self):
        # ReplayReport.percentile must stay a thin delegate of
        # service.stats.percentile — one quantile definition repo-wide.
        from repro.service.serving import ReplayReport
        from repro.service.stats import percentile

        latencies = [0.5, 0.1, 0.9, 0.3, 0.7, 0.2]
        report = ReplayReport(latencies=list(latencies))
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            assert report.percentile(q) == percentile(sorted(latencies), q)
        assert report.p50_latency == percentile(sorted(latencies), 0.50)
        assert report.p95_latency == percentile(sorted(latencies), 0.95)

    def test_batching_service_reports_cache_counters(self, small_grid):
        from repro.service.simulator import (
            BatchingObfuscationService,
            poisson_arrivals,
        )

        requests = _requests()
        arrivals = poisson_arrivals(requests, rate=4.0, seed=0)
        with ServingStack.from_config(
            small_grid,
            ServingConfig(engine="dijkstra"),
        ) as stack:
            cold_system = OpaqueSystem(
                small_grid, mode="shared", serving=stack, seed=3
            )
            _res, cold = BatchingObfuscationService(
                cold_system, window=1.0
            ).run(arrivals)
            warm_system = OpaqueSystem(
                small_grid, mode="shared", serving=stack, seed=3
            )
            _res, warm = BatchingObfuscationService(
                warm_system, window=1.0
            ).run(arrivals)
        assert cold.cached_queries == 0
        assert cold.serving_caches is not None
        assert warm.cached_queries == warm.obfuscated_queries
        assert warm.server_settled_nodes == 0
        assert warm.serving_caches.result_hits >= warm.cached_queries


class TestServingConfig:
    """The frozen config object and the legacy-kwargs deprecation path."""

    def test_defaults(self):
        config = ServingConfig()
        assert config.engine == "dijkstra"
        assert config.max_workers == 4
        assert config.coalesce is None
        assert config.result_capacity == 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": 0},
            {"preprocessing_capacity": 0},
            {"result_capacity": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_frozen(self):
        config = ServingConfig()
        with pytest.raises(AttributeError):
            config.engine = "overlay"

    def test_to_dict_shape(self, tmp_path):
        from repro.service.serving import CoalesceConfig

        doc = ServingConfig(
            engine="overlay-csr",
            coalesce=CoalesceConfig(max_batch=4, max_wait_s=0.1),
            spill_dir=str(tmp_path),
        ).to_dict()
        assert doc["schema"] == 1
        assert doc["kind"] == "serving_config"
        assert doc["engine"] == "overlay-csr"
        assert doc["coalesce"] == {"max_batch": 4, "max_wait_s": 0.1}

    def test_from_config_builds_equivalent_stack(self, small_grid):
        config = ServingConfig(engine="dijkstra", max_workers=2)
        with ServingStack.from_config(small_grid, config) as stack:
            assert stack.config == config
            queries = _queries(small_grid, n=2)
            assert stack.answer_batch(queries)

    def test_legacy_kwargs_warn_once_and_still_work(self, small_grid):
        with pytest.warns(DeprecationWarning, match="ServingStack"):
            stack = ServingStack(small_grid, engine="dijkstra", max_workers=2)
        with stack:
            assert stack.config == ServingConfig(
                engine="dijkstra", max_workers=2
            )
            queries = _queries(small_grid, n=2)
            assert stack.answer_batch(queries)

    def test_from_config_does_not_warn(self, small_grid, recwarn):
        with ServingStack.from_config(
            small_grid, ServingConfig(engine="dijkstra")
        ):
            pass
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
