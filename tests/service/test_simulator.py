"""Unit tests for repro.service.simulator."""

from __future__ import annotations

import pytest

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.exceptions import ExperimentError
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.service.simulator import (
    BatchingObfuscationService,
    TimedRequest,
    poisson_arrivals,
)


@pytest.fixture(scope="module")
def net():
    return grid_network(15, 15, perturbation=0.1, seed=601)


def request(user, s, t, f=3):
    return ClientRequest(user, PathQuery(s, t), ProtectionSetting(f, f))


class TestTimedRequest:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ExperimentError):
            TimedRequest(-1.0, request("a", 0, 5))


class TestPoissonArrivals:
    def test_monotone_and_deterministic(self, net):
        requests = [request(f"u{i}", i, 100 + i) for i in range(10)]
        a = poisson_arrivals(requests, rate=3.0, seed=4)
        b = poisson_arrivals(requests, rate=3.0, seed=4)
        times = [t.arrival_time for t in a]
        assert times == sorted(times)
        assert [t.arrival_time for t in b] == times
        assert [t.request.user for t in a] == [r.user for r in requests]

    def test_rate_scales_density(self, net):
        requests = [request(f"u{i}", i, 100 + i) for i in range(50)]
        slow = poisson_arrivals(requests, rate=0.5, seed=4)[-1].arrival_time
        fast = poisson_arrivals(requests, rate=50.0, seed=4)[-1].arrival_time
        assert fast < slow

    def test_invalid_rate(self):
        with pytest.raises(ExperimentError):
            poisson_arrivals([], rate=0.0)


class TestBatchingService:
    def test_every_user_gets_exact_path(self, net):
        system = OpaqueSystem(net, mode="shared", seed=2)
        service = BatchingObfuscationService(system, window=1.0)
        requests = [request(f"u{i}", i, 150 + i) for i in range(6)]
        arrivals = poisson_arrivals(requests, rate=4.0, seed=2)
        results, report = service.run(arrivals)
        for req in requests:
            truth = dijkstra_path(net, req.query.source, req.query.destination)
            assert results[req.user].distance == pytest.approx(truth.distance)
        assert set(report.latencies_by_user) == {r.user for r in requests}

    def test_latency_bounded_by_window(self, net):
        system = OpaqueSystem(net, mode="shared", seed=2)
        service = BatchingObfuscationService(system, window=2.0)
        requests = [request(f"u{i}", i, 150 + i) for i in range(8)]
        arrivals = poisson_arrivals(requests, rate=3.0, seed=3)
        _results, report = service.run(arrivals)
        for latency in report.latencies_by_user.values():
            assert 0.0 < latency <= 2.0 + 1e-9

    def test_single_arrival_per_window_degenerates_to_independent_batches(self, net):
        system = OpaqueSystem(net, mode="shared", seed=2)
        service = BatchingObfuscationService(system, window=0.001)
        requests = [request(f"u{i}", i, 150 + i) for i in range(4)]
        # Arrivals far apart relative to the window: one request per batch.
        arrivals = [
            TimedRequest(float(i), requests[i]) for i in range(4)
        ]
        _results, report = service.run(arrivals)
        assert report.windows_processed == 4

    def test_wide_window_batches_everything(self, net):
        system = OpaqueSystem(net, mode="shared", seed=2)
        service = BatchingObfuscationService(system, window=100.0)
        requests = [request(f"u{i}", i, 150 + i) for i in range(6)]
        arrivals = poisson_arrivals(requests, rate=5.0, seed=5)
        _results, report = service.run(arrivals)
        assert report.windows_processed == 1
        assert report.obfuscated_queries == 1  # one shared query

    def test_wider_window_improves_privacy(self, net):
        requests = [request(f"u{i}", i, 150 + i) for i in range(10)]
        breaches = []
        for window in (0.1, 50.0):
            system = OpaqueSystem(net, mode="shared", seed=2)
            service = BatchingObfuscationService(system, window=window)
            arrivals = poisson_arrivals(requests, rate=2.0, seed=6)
            _results, report = service.run(arrivals)
            breaches.append(report.mean_breach)
        assert breaches[1] < breaches[0]

    def test_service_time_adds_to_latency(self, net):
        requests = [request("only", 0, 150)]
        arrivals = [TimedRequest(0.5, requests[0])]
        base_system = OpaqueSystem(net, mode="shared", seed=2)
        free = BatchingObfuscationService(base_system, window=1.0)
        _r, report_free = free.run(arrivals)
        slow_system = OpaqueSystem(net, mode="shared", seed=2)
        slow = BatchingObfuscationService(
            slow_system, window=1.0, service_time_per_settled_node=0.01
        )
        _r, report_slow = slow.run(arrivals)
        assert report_slow.mean_latency > report_free.mean_latency

    def test_duplicate_users_rejected(self, net):
        system = OpaqueSystem(net, mode="shared", seed=2)
        service = BatchingObfuscationService(system, window=1.0)
        arrivals = [
            TimedRequest(0.1, request("same", 0, 150)),
            TimedRequest(0.2, request("same", 1, 151)),
        ]
        with pytest.raises(ExperimentError):
            service.run(arrivals)

    def test_invalid_configuration(self, net):
        system = OpaqueSystem(net, seed=2)
        with pytest.raises(ExperimentError):
            BatchingObfuscationService(system, window=0.0)
        with pytest.raises(ExperimentError):
            BatchingObfuscationService(system, window=1.0,
                                       service_time_per_settled_node=-1.0)

    def test_empty_stream(self, net):
        system = OpaqueSystem(net, mode="shared", seed=2)
        service = BatchingObfuscationService(system, window=1.0)
        results, report = service.run([])
        assert results == {}
        assert report.windows_processed == 0
        assert report.mean_latency == 0.0
        assert report.p95_latency == 0.0
        assert report.mean_breach == 1.0


class TestE10Experiment:
    def test_shapes(self):
        from repro.experiments import e10_batching_window

        config = e10_batching_window.Config(
            grid_width=15, grid_height=15, num_requests=12,
            windows=[0.5, 8.0],
        )
        result = e10_batching_window.run(config)
        first, last = result.rows[0], result.rows[-1]
        assert last["mean_latency_s"] > first["mean_latency_s"]
        assert last["mean_breach"] <= first["mean_breach"]
        assert last["obfuscated_queries"] <= first["obfuscated_queries"]
        for row in result.rows:
            # Cross-session coalescing never costs more than per-session
            # dispatch.  A window marks either every query coalesced
            # (>= 2 distinct queries shared a pass) or none (a lone
            # query, or all-identical duplicates of one).
            assert row["settled_coalesced"] <= row["settled_solo"]
            assert row["coalesced_queries"] in (0, row["obfuscated_queries"])
            if row["obfuscated_queries"] < 2:
                assert row["coalesced_queries"] == 0
