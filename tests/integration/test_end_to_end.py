"""Integration tests: full OPAQUE pipeline across modules.

These tests exercise the complete Figure 5/6 flow — workload generation,
clustering, obfuscation, server-side MSMD evaluation over paged storage,
filtering, and attack evaluation — on every generator topology.
"""

from __future__ import annotations

import pytest

from repro.core.attacks import CollusionAttack, empirical_breach_rate
from repro.core.privacy import breach_probability
from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.network.generators import (
    grid_network,
    random_geometric_network,
    ring_radial_network,
    tiger_like_network,
)
from repro.search.ch import CHManyToManyProcessor
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import (
    NaivePairwiseProcessor,
    SharedTreeProcessor,
    SideSelectingProcessor,
)
from repro.workloads.queries import requests_from_queries, uniform_queries

TOPOLOGIES = {
    "grid": lambda: grid_network(15, 15, perturbation=0.1, seed=201),
    "geometric": lambda: random_geometric_network(250, radius=0.12, seed=202),
    "ring-radial": lambda: ring_radial_network(rings=6, spokes=10, seed=203),
    "tiger": lambda: tiger_like_network(blocks=3, block_size=4, seed=204),
}


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=list(TOPOLOGIES))
@pytest.mark.parametrize("mode", ["independent", "shared"])
def test_full_pipeline_on_every_topology(topology, mode):
    network = TOPOLOGIES[topology]()
    queries = uniform_queries(network, 5, seed=7)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))
    system = OpaqueSystem(network, mode=mode, paged=True, seed=7)
    results = system.submit(requests)
    assert len(results) == len(requests)
    for request in requests:
        truth = dijkstra_path(network, request.query.source, request.query.destination)
        assert results[request.user].distance == pytest.approx(truth.distance)
    report = system.last_report
    assert report.server_stats.settled_nodes > 0
    assert report.server_stats.page_faults > 0
    for record in report.records:
        assert breach_probability(record.query) <= 1 / 9 + 1e-9


@pytest.mark.parametrize(
    "processor",
    [
        NaivePairwiseProcessor(),
        SharedTreeProcessor(),
        SideSelectingProcessor(),
        CHManyToManyProcessor(),
    ],
    ids=["naive", "shared", "side-selecting", "ch"],
)
def test_processor_choice_never_changes_results(processor):
    network = grid_network(12, 12, perturbation=0.1, seed=211)
    queries = uniform_queries(network, 4, seed=11)
    requests = requests_from_queries(queries, ProtectionSetting(2, 3))
    system = OpaqueSystem(network, mode="independent", processor=processor, seed=11)
    results = system.submit(requests)
    for request in requests:
        truth = dijkstra_path(network, request.query.source, request.query.destination)
        assert results[request.user].distance == pytest.approx(truth.distance)


def test_ch_engine_end_to_end_batch():
    """`OpaqueSystem(engine="ch")` runs a whole batch through the
    obfuscator -> server -> filter loop and returns true shortest paths,
    while the server answers every candidate pair off the hierarchy."""
    network = grid_network(15, 15, perturbation=0.1, seed=241)
    queries = uniform_queries(network, 6, seed=19)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))
    system = OpaqueSystem(network, mode="shared", engine="ch", seed=19)
    assert system.server.processor.name == "ch"
    results = system.submit(requests)
    assert len(results) == len(requests)
    for request in requests:
        truth = dijkstra_path(network, request.query.source, request.query.destination)
        assert results[request.user].distance == pytest.approx(truth.distance)
    report = system.last_report
    assert report.candidate_paths >= len(requests)
    assert report.server_stats.settled_nodes > 0
    # A second batch reuses the cached contraction (no re-preprocessing).
    second = requests_from_queries(
        uniform_queries(network, 3, seed=23), ProtectionSetting(2, 2), user_prefix="b"
    )
    results2 = system.submit(second)
    for request in second:
        truth = dijkstra_path(network, request.query.source, request.query.destination)
        assert results2[request.user].distance == pytest.approx(truth.distance)


def test_attack_pipeline_on_live_session():
    """Obfuscate -> serve -> attack: the Definition 2 bound holds end to
    end, and the collusion asymmetry between modes is visible."""
    network = grid_network(15, 15, perturbation=0.1, seed=221)
    queries = uniform_queries(network, 6, seed=13)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))

    indep = OpaqueSystem(network, mode="independent", seed=13)
    indep.submit(requests)
    rate = empirical_breach_rate(indep.last_report.records, trials_per_record=300)
    assert rate == pytest.approx(1 / 9, abs=0.04)

    shared = OpaqueSystem(network, mode="shared", seed=13)
    shared.submit(requests)
    shared_record = shared.last_report.records[0]
    victim = shared_record.requests[0]
    pool_attack = CollusionAttack(knows_fake_pool=True)
    indep_outcome = pool_attack.attack(
        indep.last_report.records[0], indep.last_report.records[0].requests[0]
    )
    shared_outcome = pool_attack.attack(shared_record, victim)
    assert indep_outcome.exposed
    assert not shared_outcome.exposed


def test_repeated_sessions_accumulate_server_counters():
    network = grid_network(10, 10, perturbation=0.1, seed=231)
    system = OpaqueSystem(network, mode="shared", seed=17)
    queries = uniform_queries(network, 3, seed=17)
    for round_id in range(3):
        requests = requests_from_queries(
            queries, ProtectionSetting(2, 2), user_prefix=f"r{round_id}"
        )
        system.submit(requests)
    assert system.server.counters.queries_served == 3
    assert len(system.server.observed_queries) == 3


def test_public_api_quickstart_matches_readme():
    """The README quickstart must keep working verbatim."""
    from repro import (
        ClientRequest,
        OpaqueSystem as System,
        PathQuery,
        ProtectionSetting as Setting,
    )
    from repro.network import grid_network as make_grid

    net = make_grid(20, 20, seed=1)
    system = System(net, mode="shared")
    request = ClientRequest("alice", PathQuery(0, 399), Setting(3, 3))
    paths = system.submit([request])
    assert paths["alice"].distance > 0
