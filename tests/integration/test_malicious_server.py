"""Failure injection: a tampering directions server against the verifier.

Subclasses :class:`DirectionsServer` with three classic result-integrity
attacks (inflated distances, spliced detours, rerouted endpoints) and
checks that an :class:`OpaqueSystem` with ``verify_responses=True`` turns
each into a :class:`ProtocolError` instead of a silently wrong route —
while a verifier-less deployment would have accepted the tampered paths.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.server import DirectionsServer, ServerResponse
from repro.core.system import OpaqueSystem
from repro.exceptions import ProtocolError
from repro.network.generators import grid_network
from repro.search.result import PathResult


class TamperingServer(DirectionsServer):
    """Honest evaluation, dishonest response: applies one tampering mode."""

    def __init__(self, network, tamper: str) -> None:
        super().__init__(network)
        self._tamper = tamper

    def answer(self, query) -> ServerResponse:
        response = super().answer(query)
        pair = next(iter(response.candidates.paths))
        victim = response.candidates.paths[pair]
        if self._tamper == "inflate-distance":
            forged = replace(victim, distance=victim.distance * 1.5)
        elif self._tamper == "splice-detour":
            # Insert an unreachable hop mid-path (a road that does not exist).
            nodes = (victim.nodes[0], victim.nodes[-1])
            forged = PathResult(
                victim.source, victim.destination, nodes, victim.distance
            )
            if victim.num_edges <= 1:
                return response  # nothing to splice
        elif self._tamper == "reroute-endpoints":
            other = [p for p in response.candidates.paths if p != pair][0]
            forged = response.candidates.paths[other]
        else:
            raise ValueError(f"unknown tamper mode {self._tamper}")
        response.candidates.paths[pair] = forged
        return response


@pytest.fixture()
def net():
    return grid_network(12, 12, perturbation=0.1, seed=1201)


@pytest.fixture()
def batch(net):
    return [
        ClientRequest("alice", PathQuery(0, 140), ProtectionSetting(3, 3)),
        ClientRequest("bob", PathQuery(5, 120), ProtectionSetting(2, 2)),
    ]


@pytest.mark.parametrize(
    "tamper", ["inflate-distance", "splice-detour", "reroute-endpoints"]
)
def test_verifier_blocks_every_tampering_mode(net, batch, tamper):
    system = OpaqueSystem(net, mode="independent", verify_responses=True, seed=4)
    system.server = TamperingServer(net, tamper)
    with pytest.raises(ProtocolError):
        system.submit(batch)


@pytest.mark.parametrize(
    "tamper", ["inflate-distance", "reroute-endpoints"]
)
def test_without_verifier_tampering_goes_unnoticed(net, batch, tamper):
    """The contrast case: a verifier-less deployment happily forwards at
    least some forged candidates (whenever the forged pair was a decoy)."""
    system = OpaqueSystem(net, mode="independent", seed=4)
    system.server = TamperingServer(net, tamper)
    # May or may not corrupt a user-visible path (the forged pair is often
    # a decoy), but it must never raise: the tampering is invisible.
    results = system.submit(batch)
    assert set(results) == {"alice", "bob"}


def test_honest_server_passes_verified_system(net, batch):
    system = OpaqueSystem(net, mode="shared", verify_responses=True, seed=4)
    results = system.submit(batch)
    assert set(results) == {"alice", "bob"}
