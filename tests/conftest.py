"""Shared fixtures for the whole test suite."""

from __future__ import annotations

import pathlib
import random
import sys

# Allow a bare `pytest` from a plain checkout: put the src layout on the
# import path (mirrored in benchmarks/conftest.py).  The checkout is
# prepended, so the working tree shadows any pip-installed copy — tests
# always exercise the code being edited.
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.network.generators import grid_network, tiger_like_network
from repro.network.graph import RoadNetwork


@pytest.fixture(scope="session")
def small_grid() -> RoadNetwork:
    """10x10 perturbed grid — the workhorse network for unit tests."""
    return grid_network(10, 10, perturbation=0.1, seed=42)


@pytest.fixture(scope="session")
def medium_grid() -> RoadNetwork:
    """25x25 perturbed grid for cost-sensitive assertions."""
    return grid_network(25, 25, perturbation=0.1, seed=42)


@pytest.fixture(scope="session")
def tiger_net() -> RoadNetwork:
    """Hierarchical TIGER-like network (travel-time weights)."""
    return tiger_like_network(blocks=3, block_size=4, seed=7)


@pytest.fixture()
def rng() -> random.Random:
    """Fresh seeded RNG per test."""
    return random.Random(1234)


class SteppingClock:
    """Fake monotonic clock; each call advances it by ``step`` seconds.

    Injected as :attr:`repro.service.serving.CoalesceConfig.clock` to
    drive coalescing-window expiry deterministically: stepping past
    ``max_wait_s`` per call makes a parked submitter's deadline expire
    on its first check, so every ``answer_batch`` call flushes as
    exactly one window.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture(scope="session")
def stepping_clock() -> type[SteppingClock]:
    """The :class:`SteppingClock` class (construct one per use)."""
    return SteppingClock


@pytest.fixture(scope="session")
def tiny_triangle() -> RoadNetwork:
    """Three nodes, explicit weights — for hand-checkable assertions.

    Layout: a--b weight 1, b--c weight 1, a--c weight 3 (detour via b wins).
    """
    net = RoadNetwork()
    net.add_node("a", 0.0, 0.0)
    net.add_node("b", 1.0, 0.0)
    net.add_node("c", 2.0, 0.0)
    net.add_edge("a", "b", 1.0)
    net.add_edge("b", "c", 1.0)
    net.add_edge("a", "c", 3.0)
    return net
