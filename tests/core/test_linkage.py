"""Unit tests for the linkage attack and the sticky-decoy defense."""

from __future__ import annotations

import pytest

from repro.core.attacks import LinkageAttack
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.exceptions import QueryError
from repro.network.generators import grid_network


@pytest.fixture(scope="module")
def net():
    return grid_network(20, 20, perturbation=0.1, seed=1101)


@pytest.fixture()
def commuter(net):
    return ClientRequest("alice", PathQuery(21, 378), ProtectionSetting(4, 4))


class TestLinkageAttackAnalytic:
    def test_single_observation_is_definition_2(self):
        q = ObfuscatedPathQuery((1, 2, 3), (4, 5, 6))
        outcome = LinkageAttack().intersect([q])
        assert outcome.breach_probability == pytest.approx(1 / 9)
        assert not outcome.exposed

    def test_disjoint_fakes_collapse_to_truth(self):
        first = ObfuscatedPathQuery((1, 10, 11), (4, 20, 21))
        second = ObfuscatedPathQuery((1, 12, 13), (4, 22, 23))
        outcome = LinkageAttack().intersect([first, second])
        assert outcome.candidate_sources == {1}
        assert outcome.candidate_destinations == {4}
        assert outcome.exposed
        assert outcome.breach_probability == 1.0

    def test_identical_observations_are_fixpoint(self):
        q = ObfuscatedPathQuery((1, 2), (3, 4))
        outcome = LinkageAttack().intersect([q, q, q])
        assert outcome.breach_probability == pytest.approx(1 / 4)
        assert outcome.observations == 3

    def test_empty_observations_rejected(self):
        with pytest.raises(QueryError):
            LinkageAttack().intersect([])

    def test_unlinkable_observations_rejected(self):
        first = ObfuscatedPathQuery((1,), (2,))
        second = ObfuscatedPathQuery((3,), (4,))
        with pytest.raises(QueryError):
            LinkageAttack().intersect([first, second])


class TestFreshFakesLeak:
    def test_repeats_shrink_anonymity(self, net, commuter):
        obfuscator = PathQueryObfuscator(net, seed=3)
        observations = [
            obfuscator.obfuscate_independent(commuter).query for _ in range(6)
        ]
        outcome = LinkageAttack().intersect(observations)
        assert commuter.query.source in outcome.candidate_sources
        assert commuter.query.destination in outcome.candidate_destinations
        assert outcome.breach_probability > 1 / 16  # strictly worse than Def. 2

    def test_enough_repeats_expose_fully(self, net, commuter):
        obfuscator = PathQueryObfuscator(net, seed=3)
        observations = [
            obfuscator.obfuscate_independent(commuter).query for _ in range(12)
        ]
        outcome = LinkageAttack().intersect(observations)
        assert outcome.exposed


class TestStickyDecoys:
    def test_sticky_queries_are_identical(self, net, commuter):
        obfuscator = PathQueryObfuscator(net, seed=3)
        first = obfuscator.obfuscate_independent(commuter, sticky_key="alice")
        second = obfuscator.obfuscate_independent(commuter, sticky_key="alice")
        assert first.query == second.query
        assert first.fake_sources == second.fake_sources

    def test_sticky_holds_definition_2_bound(self, net, commuter):
        obfuscator = PathQueryObfuscator(net, seed=3)
        observations = [
            obfuscator.obfuscate_independent(commuter, sticky_key="alice").query
            for _ in range(20)
        ]
        outcome = LinkageAttack().intersect(observations)
        assert outcome.breach_probability == pytest.approx(1 / 16)
        assert not outcome.exposed

    def test_different_sticky_keys_differ(self, net, commuter):
        obfuscator = PathQueryObfuscator(net, seed=3)
        a = obfuscator.obfuscate_independent(commuter, sticky_key="alice")
        b = obfuscator.obfuscate_independent(commuter, sticky_key="mallory")
        assert a.query != b.query

    def test_different_queries_same_key_differ(self, net):
        obfuscator = PathQueryObfuscator(net, seed=3)
        a = obfuscator.obfuscate_independent(
            ClientRequest("alice", PathQuery(21, 378), ProtectionSetting(3, 3)),
            sticky_key="alice",
        )
        b = obfuscator.obfuscate_independent(
            ClientRequest("alice", PathQuery(22, 377), ProtectionSetting(3, 3)),
            sticky_key="alice",
        )
        assert a.query != b.query

    def test_sticky_stable_across_obfuscator_instances(self, net, commuter):
        """Sticky derivation depends only on (seed, key, query, setting),
        so a restarted obfuscator re-issues identical decoys."""
        first = PathQueryObfuscator(net, seed=3).obfuscate_independent(
            commuter, sticky_key="alice"
        )
        second = PathQueryObfuscator(net, seed=3).obfuscate_independent(
            commuter, sticky_key="alice"
        )
        assert first.query == second.query

    def test_sticky_still_covers_truth(self, net, commuter):
        obfuscator = PathQueryObfuscator(net, seed=3)
        record = obfuscator.obfuscate_independent(commuter, sticky_key="alice")
        assert record.query.covers(commuter.query)


class TestE12Experiment:
    def test_shapes(self):
        from repro.experiments import e12_linkage

        config = e12_linkage.Config(
            grid_width=15, grid_height=15, num_users=5,
            repeat_counts=[1, 5],
        )
        result = e12_linkage.run(config)
        first, last = result.rows[0], result.rows[-1]
        assert last["fresh_breach"] > first["fresh_breach"]
        assert last["sticky_breach"] == pytest.approx(first["sticky_breach"])
        assert last["sticky_exposed"] == 0.0
