"""Unit tests for repro.core.clustering."""

from __future__ import annotations

import pytest

from repro.core.clustering import QueryCluster, cluster_requests
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.network.generators import grid_network


@pytest.fixture(scope="module")
def net():
    return grid_network(20, 20, perturbation=0.0, seed=81)


def request(user, s, t, f_s=2, f_t=2):
    return ClientRequest(user, PathQuery(s, t), ProtectionSetting(f_s, f_t))


class TestQueryCluster:
    def test_distinct_endpoint_lists(self, net):
        cluster = QueryCluster(
            requests=[request("a", 0, 100), request("b", 0, 101), request("c", 1, 100)]
        )
        assert cluster.source_nodes == [0, 1]
        assert cluster.destination_nodes == [100, 101]
        assert cluster.size == 3

    def test_max_protection_settings(self, net):
        cluster = QueryCluster(
            requests=[request("a", 0, 100, 2, 5), request("b", 1, 101, 4, 3)]
        )
        assert cluster.max_f_s == 4
        assert cluster.max_f_t == 5

    def test_diameters(self, net):
        cluster = QueryCluster(requests=[request("a", 0, 100), request("b", 2, 100)])
        assert cluster.source_diameter(net) == pytest.approx(
            net.euclidean_distance(0, 2)
        )
        assert cluster.destination_diameter(net) == 0.0


class TestClusterRequests:
    def test_everything_in_one_cluster_with_infinite_bounds(self, net):
        requests = [request(f"u{i}", i, 200 + i) for i in range(6)]
        clusters = cluster_requests(requests, net, float("inf"), float("inf"))
        assert len(clusters) == 1
        assert clusters[0].size == 6

    def test_zero_bound_isolates_distinct_endpoints(self, net):
        requests = [request("a", 0, 100), request("b", 5, 105)]
        clusters = cluster_requests(requests, net, 0.0, 0.0)
        assert len(clusters) == 2

    def test_zero_bound_groups_identical_endpoints(self, net):
        requests = [request("a", 0, 100), request("b", 0, 100)]
        clusters = cluster_requests(requests, net, 0.0, 0.0)
        assert len(clusters) == 1

    def test_diameter_bound_is_respected(self, net):
        # Sources at x = 0, 3, 6 on the same row; bound 4 keeps 0&3 together.
        requests = [request("a", 0, 100), request("b", 3, 100), request("c", 6, 100)]
        clusters = cluster_requests(requests, net, 4.0, float("inf"))
        for cluster in clusters:
            assert cluster.source_diameter(net) <= 4.0
        assert len(clusters) == 2

    def test_both_sides_must_fit(self, net):
        # Sources co-located but destinations far apart.
        requests = [request("a", 0, 100), request("b", 1, 399)]
        clusters = cluster_requests(requests, net, 5.0, 5.0)
        assert len(clusters) == 2

    def test_max_cluster_size_cap(self, net):
        requests = [request(f"u{i}", i, 200 + i) for i in range(7)]
        clusters = cluster_requests(
            requests, net, float("inf"), float("inf"), max_cluster_size=3
        )
        assert [c.size for c in clusters] == [3, 3, 1]

    def test_all_requests_covered_exactly_once(self, net):
        requests = [request(f"u{i}", i * 2, 200 + i * 3) for i in range(10)]
        clusters = cluster_requests(requests, net, 6.0, 6.0)
        users = [r.user for c in clusters for r in c.requests]
        assert sorted(users) == sorted(r.user for r in requests)

    def test_arrival_order_preserved_within_cluster(self, net):
        requests = [request("a", 0, 100), request("b", 1, 100), request("c", 0, 101)]
        clusters = cluster_requests(requests, net, float("inf"), float("inf"))
        assert [r.user for r in clusters[0].requests] == ["a", "b", "c"]

    def test_empty_batch(self, net):
        assert cluster_requests([], net, 1.0, 1.0) == []

    def test_invalid_bounds_rejected(self, net):
        with pytest.raises(ValueError):
            cluster_requests([], net, -1.0, 1.0)
        with pytest.raises(ValueError):
            cluster_requests([], net, 1.0, 1.0, max_cluster_size=0)

    def test_deterministic(self, net):
        requests = [request(f"u{i}", i * 3, 250 + i * 2) for i in range(12)]
        a = cluster_requests(requests, net, 5.0, 5.0)
        b = cluster_requests(requests, net, 5.0, 5.0)
        assert [[r.user for r in c.requests] for c in a] == [
            [r.user for r in c.requests] for c in b
        ]
