"""Unit tests for repro.core.query."""

from __future__ import annotations

import pytest

from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.exceptions import QueryError


class TestPathQuery:
    def test_construction_and_pair(self):
        q = PathQuery(1, 2)
        assert q.as_pair() == (1, 2)

    def test_degenerate_query_rejected(self):
        with pytest.raises(QueryError):
            PathQuery(5, 5)

    def test_hashable_and_equal(self):
        assert PathQuery(1, 2) == PathQuery(1, 2)
        assert len({PathQuery(1, 2), PathQuery(1, 2), PathQuery(2, 1)}) == 2


class TestProtectionSetting:
    def test_defaults(self):
        setting = ProtectionSetting()
        assert setting.f_s == 2
        assert setting.f_t == 2

    def test_target_breach(self):
        assert ProtectionSetting(2, 3).target_breach == pytest.approx(1 / 6)

    def test_no_protection_setting(self):
        assert ProtectionSetting(1, 1).target_breach == 1.0

    @pytest.mark.parametrize("f_s,f_t", [(0, 2), (2, 0), (-1, 3)])
    def test_invalid_sizes_rejected(self, f_s, f_t):
        with pytest.raises(QueryError):
            ProtectionSetting(f_s, f_t)


class TestClientRequest:
    def test_construction(self):
        r = ClientRequest("alice", PathQuery(1, 2), ProtectionSetting(3, 4))
        assert r.user == "alice"
        assert r.setting.f_s == 3

    def test_default_setting(self):
        r = ClientRequest("bob", PathQuery(1, 2))
        assert r.setting == ProtectionSetting()

    def test_empty_user_rejected(self):
        with pytest.raises(QueryError):
            ClientRequest("", PathQuery(1, 2))


class TestObfuscatedPathQuery:
    def test_paper_example_sizes(self):
        """S_A = {s_A, s_1}, T_A = {t_A, t_1, t_2} -> 6 pairs, breach 1/6."""
        q = ObfuscatedPathQuery(("sA", "s1"), ("tA", "t1", "t2"))
        assert q.num_pairs == 6
        assert len(q.pairs()) == 6

    def test_covers_true_query(self):
        q = ObfuscatedPathQuery((1, 2), (3, 4))
        assert q.covers(PathQuery(1, 3))
        assert q.covers(PathQuery(2, 4))
        assert not q.covers(PathQuery(3, 1))
        assert not q.covers(PathQuery(1, 5))

    def test_pairs_deterministic_order(self):
        q = ObfuscatedPathQuery((1, 2), (3, 4))
        assert q.pairs() == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_expand_skips_degenerate_pairs(self):
        q = ObfuscatedPathQuery((1, 2), (2, 3))
        queries = q.expand()
        assert PathQuery(1, 2) in queries
        assert all(p.source != p.destination for p in queries)
        assert len(queries) == 3  # (2,2) dropped

    def test_empty_sets_rejected(self):
        with pytest.raises(QueryError):
            ObfuscatedPathQuery((), (1,))
        with pytest.raises(QueryError):
            ObfuscatedPathQuery((1,), ())

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            ObfuscatedPathQuery((1, 1), (2,))
        with pytest.raises(QueryError):
            ObfuscatedPathQuery((1,), (2, 2))

    def test_satisfies_setting(self):
        q = ObfuscatedPathQuery((1, 2, 3), (4, 5))
        assert q.satisfies(ProtectionSetting(3, 2))
        assert q.satisfies(ProtectionSetting(2, 2))
        assert not q.satisfies(ProtectionSetting(4, 2))

    def test_sets_accessors(self):
        q = ObfuscatedPathQuery((1, 2), (3,))
        assert q.source_set == frozenset({1, 2})
        assert q.destination_set == frozenset({3})

    def test_repr_shows_sizes(self):
        q = ObfuscatedPathQuery((1, 2), (3,))
        assert "|S|=2" in repr(q)
        assert "|T|=1" in repr(q)
