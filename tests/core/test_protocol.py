"""Unit tests for repro.core.protocol."""

from __future__ import annotations

import pytest

from repro.core.protocol import (
    NODE_ID_BYTES,
    PATH_HEADER_BYTES,
    REQUEST_HEADER_BYTES,
    TrafficLog,
    estimate_message_bytes,
)
from repro.core.query import ClientRequest, ObfuscatedPathQuery, PathQuery
from repro.search.result import PathResult


class TestEstimateMessageBytes:
    def test_request_size(self):
        r = ClientRequest("alice", PathQuery(1, 2))
        assert estimate_message_bytes(r) == REQUEST_HEADER_BYTES + 2 * NODE_ID_BYTES

    def test_obfuscated_query_size_scales_with_sets(self):
        q = ObfuscatedPathQuery((1, 2, 3), (4, 5))
        assert estimate_message_bytes(q) == 5 * NODE_ID_BYTES

    def test_path_size_scales_with_length(self):
        p = PathResult(1, 3, (1, 2, 3), 2.0)
        assert estimate_message_bytes(p) == PATH_HEADER_BYTES + 3 * NODE_ID_BYTES

    def test_list_is_sum_of_items(self):
        p = PathResult(1, 2, (1, 2), 1.0)
        assert estimate_message_bytes([p, p]) == 2 * estimate_message_bytes(p)

    def test_empty_list_is_zero(self):
        assert estimate_message_bytes([]) == 0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_message_bytes({"not": "priceable"})


class TestTrafficLog:
    def test_legs_accumulate_separately(self):
        log = TrafficLog()
        request = ClientRequest("alice", PathQuery(1, 2))
        query = ObfuscatedPathQuery((1, 9), (2, 8))
        path = PathResult(1, 2, (1, 5, 2), 2.0)
        log.record("request", request)
        log.record("query", query)
        log.record("candidates", [path, path])
        log.record("result", path)
        assert log.client_to_obfuscator == estimate_message_bytes(request)
        assert log.obfuscator_to_server == estimate_message_bytes(query)
        assert log.server_to_obfuscator == 2 * estimate_message_bytes(path)
        assert log.obfuscator_to_client == estimate_message_bytes(path)
        assert log.messages == 4

    def test_totals(self):
        log = TrafficLog()
        path = PathResult(1, 2, (1, 2), 1.0)
        log.record("candidates", path)
        log.record("query", ObfuscatedPathQuery((1,), (2,)))
        assert log.total_bytes == log.server_side_bytes
        assert log.server_side_bytes == (
            log.obfuscator_to_server + log.server_to_obfuscator
        )

    def test_record_returns_size(self):
        log = TrafficLog()
        path = PathResult(1, 2, (1, 2), 1.0)
        assert log.record("result", path) == estimate_message_bytes(path)

    def test_unknown_leg_rejected(self):
        log = TrafficLog()
        with pytest.raises(ValueError):
            log.record("carrier-pigeon", PathResult(1, 2, (1, 2), 1.0))
