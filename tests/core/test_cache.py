"""Unit tests for repro.core.cache."""

from __future__ import annotations

import pytest

from repro.core.cache import CachingOpaqueSystem, PathCache
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.result import PathResult


def path(s, t, *mids, distance=1.0):
    return PathResult(s, t, (s, *mids, t), distance)


class TestPathCache:
    def test_miss_then_hit(self):
        cache = PathCache(capacity=4)
        assert cache.get(1, 2) is None
        cache.put(path(1, 2))
        assert cache.get(1, 2) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_symmetric_hit_returns_reversed(self):
        cache = PathCache(capacity=4, symmetric=True)
        cache.put(path(1, 3, 2, distance=2.0))
        reverse = cache.get(3, 1)
        assert reverse is not None
        assert reverse.nodes == (3, 2, 1)
        assert reverse.distance == 2.0

    def test_asymmetric_mode_ignores_reverse(self):
        cache = PathCache(capacity=4, symmetric=False)
        cache.put(path(1, 3, 2))
        assert cache.get(3, 1) is None

    def test_lru_eviction(self):
        cache = PathCache(capacity=2)
        cache.put(path(1, 2))
        cache.put(path(3, 4))
        cache.get(1, 2)  # refresh (1,2); (3,4) is now LRU
        cache.put(path(5, 6))
        assert cache.get(1, 2) is not None
        assert cache.get(3, 4) is None

    def test_zero_capacity_disables(self):
        cache = PathCache(capacity=0)
        cache.put(path(1, 2))
        assert len(cache) == 0
        assert cache.get(1, 2) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PathCache(capacity=-1)

    def test_reinsert_updates_entry(self):
        cache = PathCache(capacity=2)
        cache.put(path(1, 2, distance=5.0))
        cache.put(path(1, 2, distance=3.0))
        assert len(cache) == 1
        assert cache.get(1, 2).distance == 3.0

    def test_clear(self):
        cache = PathCache(capacity=2)
        cache.put(path(1, 2))
        cache.get(1, 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.hit_rate == 0.0

    def test_hit_rate(self):
        cache = PathCache(capacity=4)
        cache.put(path(1, 2))
        cache.get(1, 2)
        cache.get(9, 9)
        assert cache.hit_rate == pytest.approx(0.5)


class TestCachingOpaqueSystem:
    @pytest.fixture()
    def net(self):
        return grid_network(15, 15, perturbation=0.1, seed=401)

    @pytest.fixture()
    def caching(self, net):
        return CachingOpaqueSystem(OpaqueSystem(net, mode="independent", seed=1))

    def test_results_identical_to_uncached(self, net, caching):
        nodes = list(net.nodes())
        requests = [
            ClientRequest(f"u{i}", PathQuery(nodes[i], nodes[100 + i]),
                          ProtectionSetting(3, 3))
            for i in range(3)
        ]
        results = caching.submit(requests)
        for request in requests:
            truth = dijkstra_path(net, request.query.source, request.query.destination)
            assert results[request.user].distance == pytest.approx(truth.distance)

    def test_repeat_pair_answered_locally(self, net, caching):
        nodes = list(net.nodes())
        first = [ClientRequest("a", PathQuery(nodes[0], nodes[120]),
                               ProtectionSetting(2, 2))]
        caching.submit(first)
        served_before = caching.system.server.counters.queries_served
        again = [ClientRequest("b", PathQuery(nodes[0], nodes[120]))]
        results = caching.submit(again)
        assert caching.locally_answered == 1
        assert caching.system.server.counters.queries_served == served_before
        truth = dijkstra_path(net, nodes[0], nodes[120])
        assert results["b"].distance == pytest.approx(truth.distance)

    def test_decoy_pairs_are_cached_too(self, net, caching):
        """A candidate computed as someone's decoy answers a later true
        query without server contact."""
        nodes = list(net.nodes())
        caching.submit([
            ClientRequest("a", PathQuery(nodes[0], nodes[120]),
                          ProtectionSetting(3, 3))
        ])
        report = caching.system.last_report
        decoy = next(
            p for p in report.candidate_results
            if p.num_edges > 0 and (p.source, p.destination) != (nodes[0], nodes[120])
        )
        served_before = caching.system.server.counters.queries_served
        results = caching.submit([
            ClientRequest("c", PathQuery(decoy.source, decoy.destination))
        ])
        assert caching.system.server.counters.queries_served == served_before
        assert results["c"].distance == pytest.approx(decoy.distance)

    def test_reverse_pair_served_on_undirected_network(self, net, caching):
        nodes = list(net.nodes())
        caching.submit([
            ClientRequest("a", PathQuery(nodes[0], nodes[120]),
                          ProtectionSetting(2, 2))
        ])
        served_before = caching.system.server.counters.queries_served
        results = caching.submit([
            ClientRequest("d", PathQuery(nodes[120], nodes[0]))
        ])
        assert caching.system.server.counters.queries_served == served_before
        assert results["d"].source == nodes[120]
        assert results["d"].destination == nodes[0]

    def test_mixed_batch_splits_cleanly(self, net, caching):
        nodes = list(net.nodes())
        caching.submit([ClientRequest("a", PathQuery(nodes[0], nodes[120]),
                                      ProtectionSetting(2, 2))])
        mixed = [
            ClientRequest("e", PathQuery(nodes[0], nodes[120])),   # cached
            ClientRequest("f", PathQuery(nodes[5], nodes[130]),    # fresh
                          ProtectionSetting(2, 2)),
        ]
        results = caching.submit(mixed)
        assert set(results) == {"e", "f"}
        assert caching.locally_answered == 1
