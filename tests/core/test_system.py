"""Unit tests for repro.core.system (the OpaqueSystem facade)."""

from __future__ import annotations

import pytest

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.exceptions import QueryError
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import NaivePairwiseProcessor


@pytest.fixture(scope="module")
def net():
    return grid_network(15, 15, perturbation=0.1, seed=131)


def request(user, s, t, f_s=3, f_t=3):
    return ClientRequest(user, PathQuery(s, t), ProtectionSetting(f_s, f_t))


@pytest.fixture(scope="module")
def batch(net):
    return [request("alice", 0, 210), request("bob", 1, 211), request("carol", 16, 195)]


class TestSubmit:
    @pytest.mark.parametrize("mode", ["independent", "shared"])
    def test_every_user_gets_exact_path(self, net, batch, mode):
        system = OpaqueSystem(net, mode=mode, seed=3)
        results = system.submit(batch)
        assert set(results) == {"alice", "bob", "carol"}
        for req in batch:
            truth = dijkstra_path(net, req.query.source, req.query.destination)
            assert results[req.user].distance == pytest.approx(truth.distance)
            assert results[req.user].source == req.query.source
            assert results[req.user].destination == req.query.destination

    def test_empty_batch_rejected(self, net):
        with pytest.raises(QueryError):
            OpaqueSystem(net).submit([])

    def test_duplicate_users_rejected(self, net):
        system = OpaqueSystem(net)
        with pytest.raises(QueryError):
            system.submit([request("alice", 0, 210), request("alice", 1, 211)])

    def test_unknown_mode_rejected(self, net):
        with pytest.raises(QueryError):
            OpaqueSystem(net, mode="stealth")

    def test_single_request_works_in_shared_mode(self, net):
        system = OpaqueSystem(net, mode="shared", seed=1)
        results = system.submit([request("solo", 0, 210)])
        assert "solo" in results


class TestSessionReport:
    def test_report_populated(self, net, batch):
        system = OpaqueSystem(net, mode="shared", seed=3)
        system.submit(batch)
        report = system.last_report
        assert report is not None
        assert len(report.records) >= 1
        assert report.server_stats.settled_nodes > 0
        assert report.candidate_paths >= len(batch)
        assert report.traffic.total_bytes > 0

    def test_breach_by_user_matches_records(self, net, batch):
        system = OpaqueSystem(net, mode="independent", seed=3)
        system.submit(batch)
        report = system.last_report
        assert set(report.breach_by_user) == {r.user for r in batch}
        for breach in report.breach_by_user.values():
            assert breach == pytest.approx(1 / 9)

    def test_shared_mode_lower_breach_with_enough_users(self, net):
        requests = [request(f"u{i}", i, 200 + i, 2, 2) for i in range(6)]
        indep = OpaqueSystem(net, mode="independent", seed=3)
        shared = OpaqueSystem(net, mode="shared", seed=3)
        indep.submit(requests)
        shared.submit([ClientRequest(r.user, r.query, r.setting) for r in requests])
        assert shared.last_report.mean_breach < indep.last_report.mean_breach

    def test_discarded_paths_counted(self, net, batch):
        system = OpaqueSystem(net, mode="independent", seed=3)
        system.submit(batch)
        report = system.last_report
        assert report.discarded_paths == report.candidate_paths - len(batch)

    def test_mean_breach_of_empty_report(self, net):
        from repro.core.system import SessionReport

        assert SessionReport().mean_breach == 1.0

    def test_pending_table_empty_after_submit(self, net, batch):
        system = OpaqueSystem(net, mode="shared", seed=3)
        system.submit(batch)
        assert system.obfuscator.pending == {}


class TestConfiguration:
    def test_paged_server_reports_faults(self, net, batch):
        system = OpaqueSystem(net, mode="shared", paged=True, seed=3)
        system.submit(batch)
        assert system.last_report.server_stats.page_faults > 0

    def test_custom_processor_respected(self, net, batch):
        system = OpaqueSystem(
            net, mode="independent", processor=NaivePairwiseProcessor(), seed=3
        )
        system.submit(batch)
        assert isinstance(system.server.processor, NaivePairwiseProcessor)

    def test_cluster_knobs_split_batches(self, net):
        requests = [request("a", 0, 210), request("b", 224, 14)]
        system = OpaqueSystem(
            net,
            mode="shared",
            max_source_diameter=2.0,
            max_destination_diameter=2.0,
            seed=3,
        )
        system.submit(requests)
        assert len(system.last_report.records) == 2

    def test_verify_responses_flag_accepts_honest_server(self, net, batch):
        system = OpaqueSystem(net, mode="shared", verify_responses=True, seed=3)
        results = system.submit(batch)
        assert len(results) == len(batch)

    def test_server_sees_no_user_identifiers(self, net, batch):
        """The server's whole view is node ids; no user strings leak."""
        system = OpaqueSystem(net, mode="shared", seed=3)
        system.submit(batch)
        for observed in system.server.observed_queries:
            for node in observed.sources + observed.destinations:
                assert not isinstance(node, str)
