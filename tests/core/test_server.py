"""Unit tests for repro.core.server."""

from __future__ import annotations

import pytest

from repro.core.query import ObfuscatedPathQuery
from repro.core.server import DirectionsServer
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import NaivePairwiseProcessor, SharedTreeProcessor


@pytest.fixture(scope="module")
def net():
    return grid_network(15, 15, perturbation=0.1, seed=101)


@pytest.fixture(scope="module")
def query(net):
    nodes = list(net.nodes())
    return ObfuscatedPathQuery(
        (nodes[0], nodes[3]), (nodes[-1], nodes[-4], nodes[100])
    )


class TestAnswer:
    def test_returns_all_candidate_paths(self, net, query):
        server = DirectionsServer(net)
        response = server.answer(query)
        assert response.num_paths == query.num_pairs
        assert set(response.candidates.paths) == set(query.pairs())

    def test_candidates_are_true_shortest_paths(self, net, query):
        server = DirectionsServer(net)
        response = server.answer(query)
        for (s, t), path in response.candidates.paths.items():
            assert path.distance == pytest.approx(dijkstra_path(net, s, t).distance)

    def test_default_processor_is_shared_tree(self, net):
        server = DirectionsServer(net)
        assert isinstance(server.processor, SharedTreeProcessor)

    def test_custom_processor_used(self, net, query):
        server = DirectionsServer(net, processor=NaivePairwiseProcessor())
        response = server.answer(query)
        assert response.candidates.searches == query.num_pairs

    def test_observed_queries_logged(self, net, query):
        server = DirectionsServer(net)
        server.answer(query)
        server.answer(query)
        assert server.observed_queries == [query, query]

    def test_counters_accumulate(self, net, query):
        server = DirectionsServer(net)
        server.answer(query)
        first = server.counters.stats.settled_nodes
        server.answer(query)
        assert server.counters.queries_served == 2
        assert server.counters.paths_returned == 2 * query.num_pairs
        assert server.counters.stats.settled_nodes == 2 * first

    def test_reset_counters(self, net, query):
        server = DirectionsServer(net)
        server.answer(query)
        server.reset_counters()
        assert server.counters.queries_served == 0
        assert server.observed_queries == []


class TestPagedServer:
    def test_page_faults_reported(self, net, query):
        server = DirectionsServer(net, paged=True, page_capacity=16, buffer_capacity=4)
        response = server.answer(query)
        assert response.candidates.stats.page_faults > 0

    def test_buffer_reset_between_queries_makes_faults_comparable(self, net, query):
        server = DirectionsServer(net, paged=True, page_capacity=16, buffer_capacity=64)
        first = server.answer(query).candidates.stats.page_faults
        second = server.answer(query).candidates.stats.page_faults
        assert first == second  # cache cleared, same cold-start faults

    def test_paged_results_match_unpaged(self, net, query):
        plain = DirectionsServer(net).answer(query)
        paged = DirectionsServer(net, paged=True).answer(query)
        for pair, path in plain.candidates.paths.items():
            assert paged.candidates.paths[pair].distance == pytest.approx(path.distance)

    def test_repr(self, net):
        assert "DirectionsServer" in repr(DirectionsServer(net))
