"""Unit tests for repro.core.obfuscator."""

from __future__ import annotations

import pytest

from repro.core.endpoints import UniformEndpointStrategy
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.privacy import breach_probability
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import ObfuscationError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork


@pytest.fixture(scope="module")
def net():
    return grid_network(15, 15, perturbation=0.1, seed=91)


@pytest.fixture()
def obfuscator(net):
    return PathQueryObfuscator(net, seed=5)


def request(user, s, t, f_s=3, f_t=3):
    return ClientRequest(user, PathQuery(s, t), ProtectionSetting(f_s, f_t))


class TestIndependentObfuscation:
    def test_sizes_match_protection_setting(self, obfuscator):
        record = obfuscator.obfuscate_independent(request("alice", 0, 200, 4, 5))
        assert len(record.query.sources) == 4
        assert len(record.query.destinations) == 5
        assert record.kind == "independent"

    def test_true_endpoints_covered(self, obfuscator):
        req = request("alice", 0, 200)
        record = obfuscator.obfuscate_independent(req)
        assert record.query.covers(req.query)

    def test_fakes_disjoint_from_true_endpoints(self, obfuscator):
        req = request("alice", 0, 200, 4, 4)
        record = obfuscator.obfuscate_independent(req)
        assert 0 not in record.fake_sources
        assert 200 not in record.fake_destinations
        assert not record.fake_sources & record.fake_destinations

    def test_no_protection_means_no_fakes(self, obfuscator):
        record = obfuscator.obfuscate_independent(request("alice", 0, 200, 1, 1))
        assert record.query.sources == (0,)
        assert record.query.destinations == (200,)
        assert breach_probability(record.query) == 1.0

    def test_breach_matches_setting(self, obfuscator):
        record = obfuscator.obfuscate_independent(request("alice", 0, 200, 2, 3))
        assert breach_probability(record.query) == pytest.approx(1 / 6)

    def test_record_registered_as_pending(self, obfuscator):
        record = obfuscator.obfuscate_independent(request("alice", 0, 200))
        assert obfuscator.pending[record.record_id] is record

    def test_record_ids_unique(self, obfuscator):
        a = obfuscator.obfuscate_independent(request("alice", 0, 200))
        b = obfuscator.obfuscate_independent(request("bob", 1, 201))
        assert a.record_id != b.record_id

    def test_true_position_is_shuffled(self, net):
        """Over many obfuscations the true source must not always sit at
        index 0 (order would leak the secret)."""
        obfuscator = PathQueryObfuscator(net, seed=12)
        positions = set()
        for i in range(30):
            record = obfuscator.obfuscate_independent(request(f"u{i}", 0, 200, 4, 4))
            positions.add(record.query.sources.index(0))
        assert len(positions) > 1

    def test_tiny_network_raises_when_out_of_fakes(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2)
        obfuscator = PathQueryObfuscator(net)
        with pytest.raises(ObfuscationError):
            obfuscator.obfuscate_independent(request("a", 1, 2, 5, 5))

    def test_single_node_network_rejected(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        with pytest.raises(ObfuscationError):
            PathQueryObfuscator(net)


class TestSharedObfuscation:
    def test_all_true_endpoints_covered(self, obfuscator):
        requests = [request("a", 0, 200), request("b", 1, 201), request("c", 2, 202)]
        record = obfuscator.obfuscate_shared(requests)
        for req in requests:
            assert record.query.covers(req.query)
        assert record.kind == "shared"

    def test_sizes_meet_max_protection(self, obfuscator):
        requests = [request("a", 0, 200, 2, 2), request("b", 1, 201, 5, 4)]
        record = obfuscator.obfuscate_shared(requests)
        assert len(record.query.sources) >= 5
        assert len(record.query.destinations) >= 4

    def test_no_fakes_when_enough_real_endpoints(self, obfuscator):
        requests = [request(f"u{i}", i, 200 + i, 3, 3) for i in range(5)]
        record = obfuscator.obfuscate_shared(requests)
        assert not record.fake_sources
        assert not record.fake_destinations
        assert len(record.query.sources) == 5

    def test_duplicate_endpoints_deduplicated(self, obfuscator):
        requests = [request("a", 0, 200, 1, 1), request("b", 0, 201, 1, 1)]
        record = obfuscator.obfuscate_shared(requests)
        assert record.query.sources.count(0) == 1

    def test_true_accessors(self, obfuscator):
        requests = [request("a", 0, 200), request("b", 1, 201)]
        record = obfuscator.obfuscate_shared(requests)
        assert record.true_sources == {0, 1}
        assert record.true_destinations == {200, 201}

    def test_empty_batch_rejected(self, obfuscator):
        with pytest.raises(ObfuscationError):
            obfuscator.obfuscate_shared([])


class TestBatchPipeline:
    def test_independent_mode_one_record_per_request(self, obfuscator):
        requests = [request(f"u{i}", i, 200 + i) for i in range(4)]
        records = obfuscator.obfuscate_batch(requests, mode="independent")
        assert len(records) == 4
        assert all(r.kind == "independent" for r in records)

    def test_shared_mode_single_cluster_by_default(self, obfuscator):
        requests = [request(f"u{i}", i, 200 + i) for i in range(4)]
        records = obfuscator.obfuscate_batch(requests, mode="shared")
        assert len(records) == 1
        assert records[0].kind == "shared"

    def test_shared_mode_with_diameter_bound_splits(self, net):
        obfuscator = PathQueryObfuscator(net, seed=5)
        # Two far-apart groups of sources.
        requests = [request("a", 0, 200), request("b", 1, 201),
                    request("c", 224, 30), request("d", 223, 31)]
        records = obfuscator.obfuscate_batch(
            requests, mode="shared", max_source_diameter=3.0,
            max_destination_diameter=float("inf"),
        )
        assert len(records) == 2

    def test_unknown_mode_rejected(self, obfuscator):
        with pytest.raises(ValueError):
            obfuscator.obfuscate_batch([], mode="telepathic")


class TestDiscard:
    def test_discard_removes_pending(self, obfuscator):
        record = obfuscator.obfuscate_independent(request("alice", 0, 200))
        obfuscator.discard(record.record_id)
        assert record.record_id not in obfuscator.pending

    def test_discard_is_idempotent(self, obfuscator):
        obfuscator.discard(999_999)  # no error


class TestDeterminism:
    def test_same_seed_same_obfuscation(self, net):
        a = PathQueryObfuscator(net, strategy=UniformEndpointStrategy(), seed=42)
        b = PathQueryObfuscator(net, strategy=UniformEndpointStrategy(), seed=42)
        req = request("alice", 0, 200, 4, 4)
        ra = a.obfuscate_independent(req)
        rb = b.obfuscate_independent(req)
        assert ra.query == rb.query

    def test_different_seed_different_fakes(self, net):
        a = PathQueryObfuscator(net, strategy=UniformEndpointStrategy(), seed=1)
        b = PathQueryObfuscator(net, strategy=UniformEndpointStrategy(), seed=2)
        req = request("alice", 0, 200, 5, 5)
        assert (
            a.obfuscate_independent(req).query != b.obfuscate_independent(req).query
        )
