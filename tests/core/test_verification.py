"""Unit tests for repro.core.verification (malicious-server defense)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.filter import CandidateResultPathFilter
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.server import DirectionsServer
from repro.core.verification import CandidatePathVerifier
from repro.exceptions import ProtocolError
from repro.network.generators import grid_network
from repro.search.result import PathResult


@pytest.fixture(scope="module")
def net():
    return grid_network(12, 12, perturbation=0.1, seed=901)


@pytest.fixture()
def honest_exchange(net):
    obfuscator = PathQueryObfuscator(net, seed=7)
    server = DirectionsServer(net)
    request = ClientRequest("alice", PathQuery(0, 140), ProtectionSetting(3, 3))
    record = obfuscator.obfuscate_independent(request)
    response = server.answer(record.query)
    return obfuscator, record, response


class TestVerifyResponse:
    def test_honest_response_passes(self, net, honest_exchange):
        _obf, _record, response = honest_exchange
        CandidatePathVerifier(net).verify_response(response)

    def test_wrong_endpoints_detected(self, net, honest_exchange):
        _obf, _record, response = honest_exchange
        pair = next(iter(response.candidates.paths))
        honest = response.candidates.paths[pair]
        other_pair = [p for p in response.candidates.paths if p != pair][0]
        response.candidates.paths[pair] = response.candidates.paths[other_pair]
        with pytest.raises(ProtocolError, match="endpoints|starts"):
            CandidatePathVerifier(net).verify_response(response)
        response.candidates.paths[pair] = honest

    def test_inflated_distance_detected(self, net, honest_exchange):
        _obf, _record, response = honest_exchange
        pair = next(iter(response.candidates.paths))
        honest = response.candidates.paths[pair]
        response.candidates.paths[pair] = replace(
            honest, distance=honest.distance * 2
        )
        with pytest.raises(ProtocolError, match="claims distance"):
            CandidatePathVerifier(net).verify_response(response)

    def test_fabricated_road_detected(self, net, honest_exchange):
        """A path that teleports between non-adjacent nodes is rejected."""
        _obf, _record, response = honest_exchange
        pair = next(
            p for p, path in response.candidates.paths.items() if path.num_edges > 2
        )
        honest = response.candidates.paths[pair]
        # Remove an interior node: the spliced hop is not a real road.
        nodes = honest.nodes[:2] + honest.nodes[3:]
        response.candidates.paths[pair] = PathResult(
            honest.source, honest.destination, nodes, honest.distance
        )
        with pytest.raises(ProtocolError, match="non-existent road"):
            CandidatePathVerifier(net).verify_response(response)

    def test_missing_pair_detected(self, net, honest_exchange):
        _obf, _record, response = honest_exchange
        pair = next(iter(response.candidates.paths))
        del response.candidates.paths[pair]
        with pytest.raises(ProtocolError, match="coverage mismatch"):
            CandidatePathVerifier(net).verify_response(response)

    def test_distance_check_can_be_disabled(self, net, honest_exchange):
        _obf, _record, response = honest_exchange
        pair = next(iter(response.candidates.paths))
        honest = response.candidates.paths[pair]
        response.candidates.paths[pair] = replace(
            honest, distance=honest.distance * 3
        )
        verifier = CandidatePathVerifier(net, check_distances=False)
        verifier.verify_response(response)  # topology-only: passes

    def test_tolerance_allows_traffic_scaled_weights(self, net, honest_exchange):
        """A server applying mild traffic factors passes a loose verifier."""
        _obf, _record, response = honest_exchange
        pair = next(iter(response.candidates.paths))
        honest = response.candidates.paths[pair]
        response.candidates.paths[pair] = replace(
            honest, distance=honest.distance * 1.05
        )
        CandidatePathVerifier(net, relative_tolerance=0.10).verify_response(response)
        with pytest.raises(ProtocolError):
            CandidatePathVerifier(net, relative_tolerance=0.01).verify_response(
                response
            )

    def test_negative_tolerance_rejected(self, net):
        with pytest.raises(ValueError):
            CandidatePathVerifier(net, relative_tolerance=-0.1)


class TestFilterIntegration:
    def test_filter_with_verifier_blocks_tampering(self, net, honest_exchange):
        obfuscator, record, response = honest_exchange
        pair = record.requests[0].query.as_pair()
        honest = response.candidates.paths[pair]
        response.candidates.paths[pair] = replace(
            honest, distance=honest.distance + 5.0
        )
        path_filter = CandidateResultPathFilter(
            obfuscator, verifier=CandidatePathVerifier(net)
        )
        with pytest.raises(ProtocolError):
            path_filter.extract(record, response)
        # The record must NOT have been discarded: the request is unserved.
        assert record.record_id in obfuscator.pending

    def test_filter_with_verifier_passes_honest_response(self, net, honest_exchange):
        obfuscator, record, response = honest_exchange
        path_filter = CandidateResultPathFilter(
            obfuscator, verifier=CandidatePathVerifier(net)
        )
        results = path_filter.extract(record, response)
        assert "alice" in results.paths_by_user
