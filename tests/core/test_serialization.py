"""Unit tests for repro.core.serialization (JSON wire format)."""

from __future__ import annotations

import json

import pytest

from repro.core.query import ClientRequest, ObfuscatedPathQuery, PathQuery, ProtectionSetting
from repro.core.serialization import (
    decode_candidate_batch,
    decode_obfuscated_query,
    decode_path,
    decode_request,
    encode_candidate_batch,
    encode_obfuscated_query,
    encode_path,
    encode_request,
)
from repro.exceptions import ProtocolError
from repro.search.result import PathResult


class TestRequestRoundTrip:
    def test_round_trip(self):
        original = ClientRequest("alice", PathQuery(3, 42), ProtectionSetting(2, 5))
        decoded = decode_request(encode_request(original))
        assert decoded == original

    def test_string_node_ids(self):
        original = ClientRequest("bob", PathQuery("home", "clinic"))
        assert decode_request(encode_request(original)) == original

    def test_wire_is_json_object(self):
        wire = encode_request(ClientRequest("alice", PathQuery(1, 2)))
        payload = json.loads(wire)
        assert payload["kind"] == "request"
        assert payload["user"] == "alice"

    def test_non_scalar_node_rejected_at_encode(self):
        request = ClientRequest("alice", PathQuery((1, 2), (3, 4)))
        with pytest.raises(ProtocolError):
            encode_request(request)

    def test_bool_node_rejected(self):
        request = ClientRequest("alice", PathQuery(True, False))
        with pytest.raises(ProtocolError):
            encode_request(request)

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request('{"kind": "request", "user": "x"}')

    def test_wrong_kind_rejected(self):
        wire = encode_request(ClientRequest("alice", PathQuery(1, 2)))
        with pytest.raises(ProtocolError):
            decode_obfuscated_query(wire)

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("not json at all")
        with pytest.raises(ProtocolError):
            decode_request("[1, 2, 3]")


class TestObfuscatedQueryRoundTrip:
    def test_round_trip_preserves_order(self):
        original = ObfuscatedPathQuery((5, 1, 9), (2, 7))
        decoded = decode_obfuscated_query(encode_obfuscated_query(original))
        assert decoded == original
        assert decoded.sources == (5, 1, 9)

    def test_duplicate_entries_rejected_on_decode(self):
        wire = json.dumps(
            {"kind": "obfuscated_query", "sources": [1, 1], "destinations": [2]}
        )
        with pytest.raises(Exception):
            decode_obfuscated_query(wire)


class TestPathRoundTrip:
    def test_round_trip(self):
        original = PathResult(1, 4, (1, 2, 3, 4), 7.25)
        decoded = decode_path(encode_path(original))
        assert decoded == original

    def test_trivial_path(self):
        original = PathResult(9, 9, (9,), 0.0)
        assert decode_path(encode_path(original)) == original

    def test_empty_nodes_rejected(self):
        with pytest.raises(ProtocolError):
            decode_path('{"kind": "path", "nodes": [], "distance": 0}')

    def test_bad_distance_rejected(self):
        with pytest.raises(ProtocolError):
            decode_path('{"kind": "path", "nodes": [1, 2], "distance": "much"}')


class TestCandidateBatch:
    def test_round_trip(self):
        paths = [
            PathResult(1, 3, (1, 2, 3), 2.0),
            PathResult(4, 5, (4, 5), 1.0),
        ]
        decoded = decode_candidate_batch(encode_candidate_batch(paths))
        assert decoded == paths

    def test_empty_batch(self):
        assert decode_candidate_batch(encode_candidate_batch([])) == []

    def test_missing_paths_key_rejected(self):
        with pytest.raises(ProtocolError):
            decode_candidate_batch('{"kind": "candidates"}')


class TestEndToEndWire:
    def test_protocol_legs_round_trip_through_wire(self, small_grid):
        """Simulate the four legs of Figure 6 over the JSON wire."""
        from repro.core.obfuscator import PathQueryObfuscator
        from repro.core.server import DirectionsServer

        nodes = list(small_grid.nodes())
        request = ClientRequest(
            "alice", PathQuery(nodes[0], nodes[-1]), ProtectionSetting(2, 2)
        )
        # Leg 1: client -> obfuscator.
        request = decode_request(encode_request(request))
        obfuscator = PathQueryObfuscator(small_grid, seed=3)
        record = obfuscator.obfuscate_independent(request)
        # Leg 2: obfuscator -> server.
        query = decode_obfuscated_query(encode_obfuscated_query(record.query))
        server = DirectionsServer(small_grid)
        response = server.answer(query)
        # Leg 3: server -> obfuscator.
        candidates = decode_candidate_batch(
            encode_candidate_batch(list(response.candidates.paths.values()))
        )
        by_pair = {(p.source, p.destination): p for p in candidates}
        # Leg 4: obfuscator -> client.
        result = decode_path(encode_path(by_pair[request.query.as_pair()]))
        assert result.source == request.query.source
        assert result.destination == request.query.destination
