"""Unit tests for repro.core.privacy."""

from __future__ import annotations

import math

import pytest

from repro.core.privacy import (
    breach_probability,
    pair_posterior,
    posterior_breach,
    posterior_entropy_bits,
    privacy_report,
)
from repro.core.query import ObfuscatedPathQuery, PathQuery
from repro.exceptions import QueryError


@pytest.fixture()
def paper_query():
    """The running example: |S| = 2, |T| = 3."""
    return ObfuscatedPathQuery(("sA", "s1"), ("tA", "t1", "t2"))


class TestBreachProbability:
    def test_paper_example_is_one_sixth(self, paper_query):
        assert breach_probability(paper_query) == pytest.approx(1 / 6)

    def test_unprotected_query_is_one(self):
        q = ObfuscatedPathQuery((1,), (2,))
        assert breach_probability(q) == 1.0

    def test_monotone_in_set_sizes(self):
        small = ObfuscatedPathQuery((1, 2), (3, 4))
        large = ObfuscatedPathQuery((1, 2, 5), (3, 4, 6))
        assert breach_probability(large) < breach_probability(small)


class TestPairPosterior:
    def test_uniform_prior_is_uniform(self, paper_query):
        posterior = pair_posterior(paper_query)
        assert len(posterior) == 6
        for p in posterior.values():
            assert p == pytest.approx(1 / 6)

    def test_sums_to_one_with_skewed_priors(self, paper_query):
        source_prior = {"sA": 10.0, "s1": 1.0}
        dest_prior = {"tA": 5.0, "t1": 1.0, "t2": 1.0}
        posterior = pair_posterior(paper_query, source_prior, dest_prior)
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_skew_concentrates_on_popular_pair(self, paper_query):
        source_prior = {"sA": 10.0, "s1": 1.0}
        dest_prior = {"tA": 5.0, "t1": 1.0, "t2": 1.0}
        posterior = pair_posterior(paper_query, source_prior, dest_prior)
        assert max(posterior, key=posterior.get) == ("sA", "tA")

    def test_missing_prior_entries_get_zero_weight(self, paper_query):
        source_prior = {"sA": 1.0}  # s1 missing -> weight 0
        posterior = pair_posterior(paper_query, source_prior, None)
        for (s, _t), p in posterior.items():
            if s == "s1":
                assert p == 0.0

    def test_all_zero_prior_falls_back_to_uniform(self, paper_query):
        posterior = pair_posterior(paper_query, {"sA": 0.0, "s1": 0.0}, None)
        for p in posterior.values():
            assert p == pytest.approx(1 / 6)

    def test_negative_weights_clamped(self, paper_query):
        posterior = pair_posterior(paper_query, {"sA": -5.0, "s1": 1.0}, None)
        for (s, _t), p in posterior.items():
            if s == "sA":
                assert p == 0.0


class TestPosteriorBreach:
    def test_uniform_equals_definition_2(self, paper_query):
        true_query = PathQuery("sA", "tA")
        assert posterior_breach(paper_query, true_query) == pytest.approx(1 / 6)

    def test_uncovered_query_rejected(self, paper_query):
        with pytest.raises(QueryError):
            posterior_breach(paper_query, PathQuery("zz", "tA"))

    def test_implausible_fakes_raise_breach(self, paper_query):
        """When fakes have tiny prior weight, the true pair stands out."""
        source_prior = {"sA": 10.0, "s1": 0.01}
        dest_prior = {"tA": 10.0, "t1": 0.01, "t2": 0.01}
        breach = posterior_breach(
            paper_query, PathQuery("sA", "tA"), source_prior, dest_prior
        )
        assert breach > 0.9


class TestEntropy:
    def test_uniform_entropy_is_log2_pairs(self, paper_query):
        assert posterior_entropy_bits(paper_query) == pytest.approx(math.log2(6))

    def test_skew_lowers_entropy(self, paper_query):
        skewed = posterior_entropy_bits(
            paper_query, {"sA": 100.0, "s1": 1.0}, {"tA": 100.0, "t1": 1.0, "t2": 1.0}
        )
        assert skewed < math.log2(6)

    def test_single_pair_entropy_zero(self):
        q = ObfuscatedPathQuery((1,), (2,))
        assert posterior_entropy_bits(q) == 0.0


class TestPrivacyReport:
    def test_report_fields_consistent(self, paper_query):
        report = privacy_report(paper_query, PathQuery("sA", "tA"))
        assert report.uniform_breach == pytest.approx(1 / 6)
        assert report.posterior_breach == pytest.approx(1 / 6)
        assert report.max_posterior == pytest.approx(1 / 6)
        assert report.anonymity_pairs == 6
        assert report.entropy_bits == pytest.approx(math.log2(6))

    def test_max_posterior_bounds_posterior_breach(self, paper_query):
        report = privacy_report(
            paper_query,
            PathQuery("sA", "tA"),
            {"sA": 3.0, "s1": 1.0},
            {"tA": 2.0, "t1": 1.0, "t2": 1.0},
        )
        assert report.posterior_breach <= report.max_posterior

    def test_uncovered_query_rejected(self, paper_query):
        with pytest.raises(QueryError):
            privacy_report(paper_query, PathQuery("sA", "nope"))
