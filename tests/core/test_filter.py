"""Unit tests for repro.core.filter."""

from __future__ import annotations

import pytest

from repro.core.filter import CandidateResultPathFilter
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, ObfuscatedPathQuery, PathQuery, ProtectionSetting
from repro.core.server import DirectionsServer
from repro.exceptions import ProtocolError
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path


@pytest.fixture(scope="module")
def net():
    return grid_network(12, 12, perturbation=0.1, seed=111)


@pytest.fixture()
def pipeline(net):
    obfuscator = PathQueryObfuscator(net, seed=9)
    server = DirectionsServer(net)
    return obfuscator, server, CandidateResultPathFilter(obfuscator)


def request(user, s, t, f_s=3, f_t=3):
    return ClientRequest(user, PathQuery(s, t), ProtectionSetting(f_s, f_t))


class TestExtraction:
    def test_each_user_gets_their_true_path(self, net, pipeline):
        obfuscator, server, path_filter = pipeline
        requests = [request("alice", 0, 140), request("bob", 1, 141)]
        record = obfuscator.obfuscate_shared(requests)
        response = server.answer(record.query)
        results = path_filter.extract(record, response)
        for req in requests:
            path = results.paths_by_user[req.user]
            assert path.source == req.query.source
            assert path.destination == req.query.destination
            truth = dijkstra_path(net, req.query.source, req.query.destination)
            assert path.distance == pytest.approx(truth.distance)

    def test_satisfied_record_discarded_from_pending(self, pipeline):
        obfuscator, server, path_filter = pipeline
        record = obfuscator.obfuscate_independent(request("alice", 0, 140))
        response = server.answer(record.query)
        path_filter.extract(record, response)
        assert record.record_id not in obfuscator.pending

    def test_discarded_path_count(self, pipeline):
        obfuscator, server, path_filter = pipeline
        record = obfuscator.obfuscate_independent(request("alice", 0, 140, 3, 3))
        response = server.answer(record.query)
        results = path_filter.extract(record, response)
        assert results.discarded_paths == 9 - 1

    def test_shared_discard_accounts_for_distinct_pairs(self, pipeline):
        obfuscator, server, path_filter = pipeline
        requests = [request("a", 0, 140, 2, 2), request("b", 1, 141, 2, 2)]
        record = obfuscator.obfuscate_shared(requests)
        response = server.answer(record.query)
        results = path_filter.extract(record, response)
        assert results.discarded_paths == record.query.num_pairs - 2


class TestMismatchDetection:
    def test_wrong_response_query_rejected(self, net, pipeline):
        obfuscator, server, path_filter = pipeline
        record = obfuscator.obfuscate_independent(request("alice", 0, 140))
        other = ObfuscatedPathQuery((5,), (77,))
        response = server.answer(other)
        with pytest.raises(ProtocolError):
            path_filter.extract(record, response)

    def test_missing_candidate_rejected(self, net, pipeline):
        obfuscator, server, path_filter = pipeline
        record = obfuscator.obfuscate_independent(request("alice", 0, 140))
        response = server.answer(record.query)
        # Corrupt the response: drop the true pair's path.
        del response.candidates.paths[(0, 140)]
        with pytest.raises(ProtocolError):
            path_filter.extract(record, response)
