"""Unit tests for repro.core.planner (protection sizing)."""

from __future__ import annotations

import pytest

from repro.core.planner import ProtectionPlan, candidate_splits, plan_protection
from repro.core.query import PathQuery
from repro.exceptions import ObfuscationError, QueryError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork


@pytest.fixture(scope="module")
def net():
    return grid_network(25, 25, perturbation=0.1, seed=801)


@pytest.fixture(scope="module")
def query(net):
    nodes = list(net.nodes())
    return PathQuery(nodes[26], nodes[500])


class TestCandidateSplits:
    def test_all_splits_meet_target(self):
        for f_s, f_t in candidate_splits(1 / 12):
            assert f_s * f_t >= 12

    def test_minimal_products_only(self):
        splits = dict(candidate_splits(1 / 12))
        assert splits[1] == 12
        assert splits[2] == 6
        assert splits[3] == 4
        assert splits[4] == 3

    def test_minimum_sides_respected(self):
        splits = candidate_splits(1 / 9, min_f_s=2, min_f_t=2)
        assert all(f_s >= 2 and f_t >= 2 for f_s, f_t in splits)

    def test_trivial_target(self):
        assert (1, 1) in candidate_splits(1.0)

    def test_unreachable_target_rejected(self):
        with pytest.raises(QueryError):
            candidate_splits(1 / 1000, max_side=4)

    def test_invalid_arguments(self):
        with pytest.raises(QueryError):
            candidate_splits(0.0)
        with pytest.raises(QueryError):
            candidate_splits(1.5)
        with pytest.raises(QueryError):
            candidate_splits(0.5, min_f_s=0)
        with pytest.raises(QueryError):
            candidate_splits(0.5, min_f_s=5, max_side=4)


class TestPlanProtection:
    def test_all_plans_meet_breach_target(self, net, query):
        plans = plan_protection(net, query, max_breach=1 / 9)
        assert plans
        for plan in plans:
            assert plan.breach <= 1 / 9 + 1e-12
            assert isinstance(plan, ProtectionPlan)

    def test_recommendation_is_destination_heavy(self, net, query):
        """Lemma 1: sources are expensive, destinations nearly free — the
        cheapest split must satisfy f_s <= f_t."""
        plans = plan_protection(net, query, max_breach=1 / 12)
        best = plans[0].setting
        assert best.f_s <= best.f_t

    def test_plans_sorted_by_predicted_cost(self, net, query):
        plans = plan_protection(net, query, max_breach=1 / 12)
        costs = [p.predicted_cost for p in plans]
        assert costs == sorted(costs)

    def test_min_sides_respected(self, net, query):
        plans = plan_protection(net, query, max_breach=1 / 9, min_f_s=2, min_f_t=2)
        for plan in plans:
            assert plan.setting.f_s >= 2
            assert plan.setting.f_t >= 2

    def test_deterministic(self, net, query):
        a = plan_protection(net, query, max_breach=1 / 9, seed=5)
        b = plan_protection(net, query, max_breach=1 / 9, seed=5)
        assert a == b

    def test_tiny_map_raises_when_no_split_realizable(self):
        tiny = RoadNetwork()
        tiny.add_node(1, 0, 0)
        tiny.add_node(2, 1, 0)
        tiny.add_edge(1, 2)
        with pytest.raises(ObfuscationError):
            plan_protection(tiny, PathQuery(1, 2), max_breach=1 / 100)

    def test_prediction_orders_like_measurement(self, net, query):
        """The planner's cost ordering must agree with measured server
        cost for extreme splits (source-heavy vs destination-heavy)."""
        from repro.core.obfuscator import PathQueryObfuscator
        from repro.core.query import ClientRequest, ProtectionSetting
        from repro.search.multi import SharedTreeProcessor

        measured = {}
        for f_s, f_t in ((1, 12), (12, 1)):
            obfuscator = PathQueryObfuscator(net, seed=3)
            record = obfuscator.obfuscate_independent(
                ClientRequest("u", query, ProtectionSetting(f_s, f_t))
            )
            out = SharedTreeProcessor().process(
                net, list(record.query.sources), list(record.query.destinations)
            )
            measured[(f_s, f_t)] = out.stats.settled_nodes
        assert measured[(1, 12)] < measured[(12, 1)]
