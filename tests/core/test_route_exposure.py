"""Unit tests for the route-exposure privacy metric."""

from __future__ import annotations

import pytest

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.privacy import route_exposure
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.server import DirectionsServer
from repro.exceptions import QueryError
from repro.network.generators import grid_network
from repro.search.result import PathResult


def path(*nodes, distance=1.0):
    return PathResult(nodes[0], nodes[-1], tuple(nodes), distance)


class TestRouteExposureAnalytic:
    def test_identical_candidates_fully_expose(self):
        true = path(1, 2, 3)
        assert route_exposure(true, [true, path(1, 2, 3)]) == 1.0

    def test_disjoint_candidates_hide_route(self):
        true = path(1, 2, 3)
        decoys = [path(7, 8, 9), path(4, 5)]
        exposure = route_exposure(true, [true] + decoys)
        assert exposure == pytest.approx(1 / 3)

    def test_partial_overlap(self):
        true = path(1, 2, 3)
        overlapping = path(2, 3, 4)  # shares edge (2,3)
        exposure = route_exposure(true, [true, overlapping])
        # edge (1,2): 1/2, edge (2,3): 2/2 -> mean 0.75
        assert exposure == pytest.approx(0.75)

    def test_reverse_direction_counts_as_same_road(self):
        true = path(1, 2, 3)
        reverse = path(3, 2, 1)
        assert route_exposure(true, [true, reverse]) == 1.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(QueryError):
            route_exposure(path(1, 2), [])

    def test_zero_edge_true_path_rejected(self):
        with pytest.raises(QueryError):
            route_exposure(path(1), [path(1, 2)])


class TestRouteExposureOnLiveQueries:
    def test_exposure_bounded_and_positive(self):
        net = grid_network(15, 15, perturbation=0.1, seed=501)
        obfuscator = PathQueryObfuscator(net, seed=5)
        server = DirectionsServer(net)
        request = ClientRequest(
            "alice", PathQuery(0, 210), ProtectionSetting(3, 3)
        )
        record = obfuscator.obfuscate_independent(request)
        response = server.answer(record.query)
        candidates = [p for p in response.candidates.paths.values() if p.num_edges]
        true_path = response.candidates.paths[(0, 210)]
        exposure = route_exposure(true_path, candidates)
        assert 1 / len(candidates) - 1e-9 <= exposure <= 1.0

    def test_unprotected_query_fully_exposes_route(self):
        """With f = (1, 1) the only candidate is the true path itself."""
        net = grid_network(15, 15, perturbation=0.1, seed=503)
        obfuscator = PathQueryObfuscator(net, seed=6)
        server = DirectionsServer(net)
        request = ClientRequest("alice", PathQuery(0, 210), ProtectionSetting(1, 1))
        record = obfuscator.obfuscate_independent(request)
        response = server.answer(record.query)
        true_path = response.candidates.paths[(0, 210)]
        assert route_exposure(true_path, [true_path]) == 1.0

    def test_more_decoys_reduce_exposure(self):
        """Averaged over seeds, stronger obfuscation lowers route
        exposure (more candidate routes dilute each road segment)."""
        net = grid_network(20, 20, perturbation=0.1, seed=502)
        server = DirectionsServer(net)
        means = []
        for f in (2, 5):
            totals = []
            for seed in range(6):
                obfuscator = PathQueryObfuscator(net, seed=seed)
                request = ClientRequest(
                    "alice", PathQuery(21, 378), ProtectionSetting(f, f)
                )
                record = obfuscator.obfuscate_independent(request)
                response = server.answer(record.query)
                candidates = [
                    p for p in response.candidates.paths.values() if p.num_edges
                ]
                true_path = response.candidates.paths[(21, 378)]
                totals.append(route_exposure(true_path, candidates))
            means.append(sum(totals) / len(totals))
        assert means[1] < means[0]
