"""Unit tests for repro.core.attacks."""

from __future__ import annotations

import pytest

from repro.core.attacks import (
    CollusionAttack,
    ServerAdversary,
    empirical_breach_rate,
)
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.exceptions import QueryError
from repro.network.generators import grid_network


@pytest.fixture(scope="module")
def net():
    return grid_network(15, 15, perturbation=0.1, seed=121)


def request(user, s, t, f_s=4, f_t=4):
    return ClientRequest(user, PathQuery(s, t), ProtectionSetting(f_s, f_t))


class TestServerAdversary:
    def test_guess_is_candidate_pair(self):
        adversary = ServerAdversary(seed=1)
        q = ObfuscatedPathQuery((1, 2), (3, 4))
        for _ in range(20):
            assert adversary.guess(q) in set(q.pairs())

    def test_uniform_success_rate_matches_definition_2(self, net):
        obfuscator = PathQueryObfuscator(net, seed=2)
        records = [
            obfuscator.obfuscate_independent(request(f"u{i}", i, 200 + i, 2, 3))
            for i in range(10)
        ]
        rate = empirical_breach_rate(records, trials_per_record=400)
        assert rate == pytest.approx(1 / 6, abs=0.03)

    def test_prior_aware_adversary_beats_uniform(self, net):
        """If fakes are known-implausible, the prior-aware adversary wins
        far more often than 1/(|S||T|)."""
        obfuscator = PathQueryObfuscator(net, seed=3)
        records = [
            obfuscator.obfuscate_independent(request(f"u{i}", i, 200 + i, 3, 3))
            for i in range(8)
        ]
        prior_s: dict = {}
        prior_t: dict = {}
        for record in records:
            true = record.requests[0].query
            for s in record.query.sources:
                prior_s[s] = 100.0 if s == true.source else 0.01
            for t in record.query.destinations:
                prior_t[t] = 100.0 if t == true.destination else 0.01
        adversary = ServerAdversary(prior_s, prior_t, seed=4)
        rate = empirical_breach_rate(records, adversary, trials_per_record=100)
        assert rate > 0.9

    def test_best_guess_is_argmax(self):
        adversary = ServerAdversary({1: 5.0, 2: 1.0}, {3: 4.0, 4: 1.0})
        q = ObfuscatedPathQuery((1, 2), (3, 4))
        assert adversary.best_guess(q) == (1, 3)

    def test_posterior_sums_to_one(self):
        adversary = ServerAdversary({1: 2.0, 2: 3.0})
        q = ObfuscatedPathQuery((1, 2), (3, 4))
        assert sum(adversary.posterior(q).values()) == pytest.approx(1.0)


class TestEmpiricalBreachRate:
    def test_empty_records_rejected(self):
        with pytest.raises(QueryError):
            empirical_breach_rate([])

    def test_invalid_trials_rejected(self, net):
        obfuscator = PathQueryObfuscator(net, seed=5)
        record = obfuscator.obfuscate_independent(request("a", 0, 140))
        with pytest.raises(ValueError):
            empirical_breach_rate([record], trials_per_record=0)

    def test_unprotected_record_always_breached(self, net):
        obfuscator = PathQueryObfuscator(net, seed=5)
        record = obfuscator.obfuscate_independent(request("a", 0, 140, 1, 1))
        assert empirical_breach_rate([record], trials_per_record=10) == 1.0


class TestCollusionAttack:
    def test_fake_pool_compromise_exposes_independent_query(self, net):
        obfuscator = PathQueryObfuscator(net, seed=6)
        victim = request("alice", 0, 140)
        record = obfuscator.obfuscate_independent(victim)
        outcome = CollusionAttack(knows_fake_pool=True).attack(record, victim)
        assert outcome.exposed
        assert outcome.breach_probability == 1.0

    def test_fake_pool_compromise_leaves_shared_anonymity(self, net):
        obfuscator = PathQueryObfuscator(net, seed=6)
        requests = [request(f"u{i}", i, 200 + i) for i in range(4)]
        record = obfuscator.obfuscate_shared(requests)
        outcome = CollusionAttack(knows_fake_pool=True).attack(record, requests[0])
        assert not outcome.exposed
        assert outcome.breach_probability == pytest.approx(1 / 16)

    def test_colluders_shrink_shared_anonymity(self, net):
        obfuscator = PathQueryObfuscator(net, seed=7)
        requests = [request(f"u{i}", i, 200 + i) for i in range(4)]
        record = obfuscator.obfuscate_shared(requests)
        attack = CollusionAttack(
            colluding_users=["u1", "u2"], knows_fake_pool=True
        )
        outcome = attack.attack(record, requests[0])
        assert outcome.breach_probability == pytest.approx(1 / 4)  # (4-2)^2

    def test_all_others_colluding_exposes_victim(self, net):
        obfuscator = PathQueryObfuscator(net, seed=7)
        requests = [request(f"u{i}", i, 200 + i) for i in range(3)]
        record = obfuscator.obfuscate_shared(requests)
        attack = CollusionAttack(
            colluding_users=["u1", "u2"], knows_fake_pool=True
        )
        outcome = attack.attack(record, requests[0])
        assert outcome.exposed

    def test_without_fake_pool_collusion_still_bounded_by_fakes(self, net):
        obfuscator = PathQueryObfuscator(net, seed=8)
        requests = [request(f"u{i}", i, 200 + i, 6, 6) for i in range(3)]
        record = obfuscator.obfuscate_shared(requests)
        attack = CollusionAttack(colluding_users=["u1", "u2"], knows_fake_pool=False)
        outcome = attack.attack(record, requests[0])
        # Fakes (3 per side to reach f=6) are not strippable; anonymity
        # remains 1 victim + 3 fakes on each side.
        assert outcome.breach_probability == pytest.approx(1 / 16)
        assert not outcome.exposed

    def test_shared_endpoint_with_colluder_survives(self, net):
        """A colluder whose destination equals the victim's must not
        eliminate that endpoint."""
        obfuscator = PathQueryObfuscator(net, seed=9)
        victim = request("alice", 0, 140)
        colluder = request("carl", 5, 140)  # same destination
        record = obfuscator.obfuscate_shared([victim, colluder])
        attack = CollusionAttack(colluding_users=["carl"], knows_fake_pool=True)
        outcome = attack.attack(record, victim)
        assert 140 in outcome.candidate_destinations

    def test_victim_not_in_record_rejected(self, net):
        obfuscator = PathQueryObfuscator(net, seed=10)
        record = obfuscator.obfuscate_independent(request("alice", 0, 140))
        with pytest.raises(QueryError):
            CollusionAttack().attack(record, request("mallory", 1, 141))

    def test_victim_cannot_be_colluder(self, net):
        obfuscator = PathQueryObfuscator(net, seed=10)
        requests = [request("alice", 0, 140), request("bob", 1, 141)]
        record = obfuscator.obfuscate_shared(requests)
        with pytest.raises(QueryError):
            CollusionAttack(colluding_users=["alice"]).attack(record, requests[0])

    def test_no_collusion_no_pool_equals_definition_2(self, net):
        obfuscator = PathQueryObfuscator(net, seed=11)
        victim = request("alice", 0, 140, 3, 3)
        record = obfuscator.obfuscate_independent(victim)
        outcome = CollusionAttack().attack(record, victim)
        assert outcome.breach_probability == pytest.approx(1 / 9)
