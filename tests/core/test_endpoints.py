"""Unit tests for repro.core.endpoints (fake endpoint strategies)."""

from __future__ import annotations

import random

import pytest

from repro.core.endpoints import (
    CompactEndpointStrategy,
    PopularityWeightedStrategy,
    RingEndpointStrategy,
    SelectionContext,
    UniformEndpointStrategy,
    get_strategy,
)
from repro.exceptions import ObfuscationError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.network.spatial import GridSpatialIndex


@pytest.fixture(scope="module")
def env():
    net = grid_network(20, 20, perturbation=0.1, seed=71)
    return net, GridSpatialIndex(net)


def make_context(net, index, anchors, counterparts, exclude=frozenset(), seed=0):
    return SelectionContext(
        network=net,
        index=index,
        rng=random.Random(seed),
        anchors=anchors,
        counterparts=counterparts,
        exclude=frozenset(exclude),
    )


ALL_STRATEGIES = ["uniform", "ring", "compact"]


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_returns_requested_count_of_distinct_nodes(self, env, name):
        net, index = env
        nodes = list(net.nodes())
        strategy = get_strategy(name)
        ctx = make_context(net, index, [nodes[0]], [nodes[-1]])
        fakes = strategy.select(ctx, 5)
        assert len(fakes) == 5
        assert len(set(fakes)) == 5
        assert all(f in net for f in fakes)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_respects_exclusions(self, env, name):
        net, index = env
        nodes = list(net.nodes())
        exclude = set(nodes[:50])
        strategy = get_strategy(name)
        ctx = make_context(net, index, [nodes[0]], [nodes[-1]], exclude=exclude)
        fakes = strategy.select(ctx, 5)
        assert not set(fakes) & exclude

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_deterministic_given_rng(self, env, name):
        net, index = env
        nodes = list(net.nodes())
        strategy = get_strategy(name)
        a = strategy.select(make_context(net, index, [nodes[0]], [nodes[-1]], seed=3), 4)
        b = strategy.select(make_context(net, index, [nodes[0]], [nodes[-1]], seed=3), 4)
        assert a == b

    def test_zero_count_unsupported_path_not_taken(self, env):
        """Strategies are only invoked with count >= 1 by the obfuscator;
        count 0 still behaves sanely (empty draw)."""
        net, index = env
        nodes = list(net.nodes())
        ctx = make_context(net, index, [nodes[0]], [nodes[-1]])
        assert UniformEndpointStrategy().select(ctx, 0) == []

    def test_insufficient_candidates_raise(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2)
        index = GridSpatialIndex(net)
        ctx = make_context(net, index, [1], [2], exclude={1, 2})
        with pytest.raises(ObfuscationError):
            UniformEndpointStrategy().select(ctx, 1)


class TestCompactStrategy:
    def test_fakes_stay_near_query_box(self, env):
        net, index = env
        nodes = list(net.nodes())
        s, t = nodes[0], nodes[45]  # a short query in one corner
        ctx = make_context(net, index, [s], [t])
        fakes = CompactEndpointStrategy(margin=0.25).select(ctx, 6)
        ps, pt = net.position(s), net.position(t)
        span = max(abs(ps.x - pt.x), abs(ps.y - pt.y)) + 1.0
        for fake in fakes:
            pf = net.position(fake)
            assert abs(pf.x - ps.x) <= 2 * span
            assert abs(pf.y - ps.y) <= 2 * span

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            CompactEndpointStrategy(margin=-0.1)

    def test_falls_back_when_box_too_small(self, env):
        """A degenerate box with huge count falls back to the whole map."""
        net, index = env
        nodes = list(net.nodes())
        ctx = make_context(net, index, [nodes[0]], [nodes[1]])
        fakes = CompactEndpointStrategy(margin=0.0).select(ctx, 50)
        assert len(fakes) == 50


class TestRingStrategy:
    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            RingEndpointStrategy(inner_factor=2.0, outer_factor=1.0)
        with pytest.raises(ValueError):
            RingEndpointStrategy(inner_factor=-0.5)

    def test_fakes_not_at_anchor(self, env):
        net, index = env
        nodes = list(net.nodes())
        s, t = nodes[0], nodes[-1]
        ctx = make_context(
            net, index, [s], [t], exclude={s, t}
        )
        fakes = RingEndpointStrategy(inner_factor=0.3, outer_factor=0.8).select(ctx, 5)
        assert s not in fakes


class TestPopularityStrategy:
    def test_draws_follow_weights(self, env):
        net, index = env
        nodes = list(net.nodes())
        hot = set(nodes[:10])
        popularity = {n: (1000.0 if n in hot else 0.001) for n in nodes}
        strategy = PopularityWeightedStrategy(popularity)
        ctx = make_context(net, index, [nodes[50]], [nodes[60]], seed=5)
        fakes = strategy.select(ctx, 8)
        assert len(set(fakes) & hot) >= 6  # overwhelmingly from the hot set

    def test_zero_weight_nodes_never_drawn(self, env):
        net, index = env
        nodes = list(net.nodes())
        popularity = {n: 0.0 for n in nodes}
        popularity[nodes[3]] = 1.0
        popularity[nodes[4]] = 1.0
        strategy = PopularityWeightedStrategy(popularity)
        ctx = make_context(net, index, [nodes[0]], [nodes[1]])
        assert set(strategy.select(ctx, 2)) == {nodes[3], nodes[4]}

    def test_insufficient_weighted_candidates_raise(self, env):
        net, index = env
        nodes = list(net.nodes())
        strategy = PopularityWeightedStrategy({nodes[0]: 1.0})
        ctx = make_context(net, index, [nodes[5]], [nodes[6]])
        with pytest.raises(ObfuscationError):
            strategy.select(ctx, 2)

    def test_empty_popularity_rejected(self):
        with pytest.raises(ValueError):
            PopularityWeightedStrategy({})

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            PopularityWeightedStrategy({1: -1.0})


class TestRegistry:
    def test_get_strategy_by_name(self):
        assert get_strategy("uniform").name == "uniform"
        assert get_strategy("compact", margin=0.5).name == "compact"
        assert get_strategy("popularity", popularity={1: 1.0}).name == "popularity"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="compact"):
            get_strategy("teleport")
