"""Unit tests for repro.search.bidirectional.

Oracle parity (bidirectional vs. Dijkstra on random
directed/disconnected networks) lives in the engine-conformance harness
(``tests/search/test_engine_conformance.py``); this file keeps the
algorithm-specific behaviors.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats


@pytest.fixture(scope="module")
def oracle_pair():
    net = grid_network(15, 15, perturbation=0.15, seed=41)
    return net, net.to_networkx()


class TestCorrectness:
    def test_path_endpoints_and_walkability(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        path = bidirectional_dijkstra_path(net, nodes[3], nodes[-4])
        assert path.nodes[0] == nodes[3]
        assert path.nodes[-1] == nodes[-4]
        total = 0.0
        for u, v in path.edges():
            assert net.has_edge(u, v)
            total += net.edge_weight(u, v)
        assert total == pytest.approx(path.distance)

    def test_source_equals_destination(self, oracle_pair):
        net, _g = oracle_pair
        node = next(net.nodes())
        path = bidirectional_dijkstra_path(net, node, node)
        assert path.nodes == (node,)

    def test_adjacent_nodes(self, tiny_triangle):
        path = bidirectional_dijkstra_path(tiny_triangle, "a", "b")
        assert path.distance == pytest.approx(1.0)

    def test_unreachable_raises(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(NoPathError):
            bidirectional_dijkstra_path(net, 1, 2)

    def test_directed_network_supported(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_node(3, 2, 0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(2, 3, 1.0)
        net.add_edge(3, 1, 1.0)
        path = bidirectional_dijkstra_path(net, 1, 3)
        assert path.nodes == (1, 2, 3)
        # The reverse trip must honor the one-way cycle.
        assert bidirectional_dijkstra_path(net, 3, 1).distance == pytest.approx(1.0)

    def test_unknown_endpoints(self, oracle_pair):
        net, _g = oracle_pair
        with pytest.raises(UnknownNodeError):
            bidirectional_dijkstra_path(net, -1, next(net.nodes()))


class TestEfficiency:
    def test_settles_fewer_nodes_than_unidirectional(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        rng = random.Random(7)
        bi_total, uni_total = 0, 0
        for _ in range(15):
            s, t = rng.sample(nodes, 2)
            sb, su = SearchStats(), SearchStats()
            bidirectional_dijkstra_path(net, s, t, stats=sb)
            dijkstra_path(net, s, t, stats=su)
            bi_total += sb.settled_nodes
            uni_total += su.settled_nodes
        assert bi_total < uni_total
