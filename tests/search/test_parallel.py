"""Unit tests for repro.search.parallel (process-parallel customization).

The contract under test is *byte-identity*: an overlay customized on a
worker pool must :func:`dumps_overlay` to exactly the bytes of the
serial build, for every kernel and for both the flat and the nested
overlay, on builds and on incremental recustomizations alike.  The pool
must also survive sequential re-weights without re-spilling the CSR
blob, and graphs must never cross the process boundary as pickles.

All pools here use the ``fork`` start method: the test process already
has the code imported, so forking is cheap, and CI runs hundreds of
these — forkserver/spawn warm-up would dominate the suite's wall time.
The start-method choice cannot affect the byte-identity contract
because workers run the same `_customize_cell` code either way.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.exceptions import GraphError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.network.partition import partition_network
from repro.search.overlay import (
    build_nested_overlay,
    build_overlay,
    dumps_overlay,
)
from repro.search.parallel import ParallelCustomizer, default_start_method

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)


@pytest.fixture(scope="module")
def pool():
    """One warmed 2-worker fork pool shared by the whole module."""
    customizer = ParallelCustomizer(2, start_method="fork")
    customizer.warm()
    yield customizer
    customizer.close()


@pytest.fixture()
def net():
    return grid_network(9, 9, perturbation=0.2, seed=21)


class TestByteIdentity:
    @pytest.mark.parametrize("kernel", ["dict", "csr"])
    def test_flat_build_matches_serial(self, net, pool, kernel):
        serial = build_overlay(net, cell_capacity=10, kernel=kernel)
        par = build_overlay(
            net, cell_capacity=10, kernel=kernel, customizer=pool
        )
        assert dumps_overlay(par) == dumps_overlay(serial)

    def test_flat_build_owned_pool(self, net):
        """``parallel=N`` without a caller pool owns and closes one."""
        serial = build_overlay(net, cell_capacity=10, kernel="csr")
        par = build_overlay(net, cell_capacity=10, kernel="csr", parallel=2)
        assert dumps_overlay(par) == dumps_overlay(serial)

    def test_nested_build_matches_serial(self, net, pool):
        serial = build_nested_overlay(
            net, cell_capacity=6, super_capacity=4, kernel="csr"
        )
        par = build_nested_overlay(
            net, cell_capacity=6, super_capacity=4, kernel="csr",
            customizer=pool,
        )
        assert dumps_overlay(par) == dumps_overlay(serial)

    def test_recustomized_matches_serial(self, net):
        # Dedicated pool: a customizer's delta map is tied to one
        # logical network, exactly as a ServingStack owns its pool.
        customizer = ParallelCustomizer(2, start_method="fork")
        try:
            base = build_overlay(net, cell_capacity=10, kernel="csr")
            changed = []
            for u, v, w in list(net.edges())[::7]:
                net.add_edge(u, v, w * 1.7)
                changed.append((u, v))
            serial = base.recustomized(changed_edges=changed)
            par = base.recustomized(
                changed_edges=changed, customizer=customizer
            )
            fresh = build_overlay(net, cell_capacity=10, kernel="csr")
            assert dumps_overlay(par) == dumps_overlay(serial)
            assert dumps_overlay(par) == dumps_overlay(fresh)
        finally:
            customizer.close()

    def test_nested_recustomized_matches_serial(self, net):
        customizer = ParallelCustomizer(2, start_method="fork")
        try:
            base = build_nested_overlay(
                net, cell_capacity=6, super_capacity=4, kernel="csr"
            )
            changed = []
            for u, v, w in list(net.edges())[::5]:
                net.add_edge(u, v, w * 0.6)
                changed.append((u, v))
            serial = base.recustomized(changed_edges=changed)
            par = base.recustomized(
                changed_edges=changed, customizer=customizer
            )
            assert dumps_overlay(par) == dumps_overlay(serial)
        finally:
            customizer.close()

    def test_directed_network(self, pool):
        net = RoadNetwork(directed=True)
        for i in range(16):
            net.add_node(i, i % 4, i // 4)
        for i in range(16):
            net.add_edge(i, (i + 1) % 16, 1.0 + i * 0.25)
            net.add_edge(i, (i + 5) % 16, 2.0 + i * 0.125)
        serial = build_overlay(net, cell_capacity=4, kernel="csr")
        par = build_overlay(net, cell_capacity=4, kernel="csr", customizer=pool)
        assert dumps_overlay(par) == dumps_overlay(serial)


class TestPoolSurvival:
    def test_sequential_reweights_single_spill(self, net):
        """The pool rides its delta map across re-weights: one spill."""
        customizer = ParallelCustomizer(2, start_method="fork")
        try:
            overlay = build_overlay(
                net, cell_capacity=10, kernel="csr", customizer=customizer
            )
            assert customizer.spills == 1
            for round_no in range(3):
                changed = []
                for u, v, w in list(net.edges())[round_no::11]:
                    net.add_edge(u, v, w * (1.1 + round_no * 0.1))
                    changed.append((u, v))
                overlay = overlay.recustomized(
                    changed_edges=changed, customizer=customizer
                )
                fresh = build_overlay(net, cell_capacity=10, kernel="csr")
                assert dumps_overlay(overlay) == dumps_overlay(fresh)
            assert customizer.spills == 1
        finally:
            customizer.close()

    def test_vanished_edge_marks_spill_stale(self, net):
        """``changed_edges`` naming an edge the target network does not
        have must fail absorption cleanly (stale spill, fresh re-spill
        on the next pooled run) — never a KeyError from inside
        ``customize``.  Shape checks cannot catch add+remove churn."""
        customizer = ParallelCustomizer(2, start_method="fork")
        try:
            overlay = build_overlay(
                net, cell_capacity=10, kernel="csr", customizer=customizer
            )
            assert customizer.spills == 1
            # A contract-breaking caller names a non-edge: absorbed as
            # "cannot keep the spill", not an exception.
            customizer.note_changes(net, [(10**9, 10**9 + 1)])
            changed = []
            for u, v, w in list(net.edges())[::6]:
                net.add_edge(u, v, w * 1.3)
                changed.append((u, v))
            overlay = overlay.recustomized(
                changed_edges=changed, customizer=customizer
            )
            assert customizer.spills == 2
            fresh = build_overlay(net, cell_capacity=10, kernel="csr")
            assert dumps_overlay(overlay) == dumps_overlay(fresh)
        finally:
            customizer.close()

    def test_serial_bypass_keeps_pool_coherent(self, net):
        """A one-cell refresh skips the pool; the next pooled run must
        still see that weight change (note_changes path)."""
        customizer = ParallelCustomizer(2, start_method="fork")
        try:
            overlay = build_overlay(
                net, cell_capacity=10, kernel="csr", customizer=customizer
            )
            # Touch a single edge: recustomized() takes the serial
            # bypass (one touched cell) but must notify the pool.
            u, v, w = next(iter(net.edges()))
            net.add_edge(u, v, w * 3.0)
            overlay = overlay.recustomized(
                changed_edges=[(u, v)], customizer=customizer
            )
            # Now a broad change that runs on the pool; its workers
            # must observe BOTH weight changes.
            changed = []
            for eu, ev, ew in list(net.edges())[::6]:
                net.add_edge(eu, ev, ew * 1.4)
                changed.append((eu, ev))
            overlay = overlay.recustomized(
                changed_edges=changed, customizer=customizer
            )
            fresh = build_overlay(net, cell_capacity=10, kernel="csr")
            assert dumps_overlay(overlay) == dumps_overlay(fresh)
        finally:
            customizer.close()


class TestWorkerAttachCache:
    def test_one_mapping_per_spec_kind(self, net, tmp_path):
        """Cell and super attachments cache independently: a nested
        overlay alternates the two every pooled refresh, and a super
        attach must not evict the (much larger) graph+layout mapping.
        The attach functions are plain module functions, so the worker
        cache behaviour is observable in-process."""
        from array import array

        from repro.search import parallel as par
        from repro.service.blob import write_blob

        customizer = ParallelCustomizer(1, start_method="fork")
        try:
            partition = partition_network(net, cell_capacity=10)
            customizer._spill_layout(partition)
            customizer._spill_graph(net)
            cells_spec = customizer._graph_spec
            super_path = str(tmp_path / "super.blob")
            write_blob(super_path, {"kind": "overlay-level1"}, [
                ("over_offsets", "q", array("q", [0])),
                ("over_targets", "q", array("q")),
                ("over_weights", "d", array("d")),
                ("over_kinds", "q", array("q")),
                ("mem_offsets", "q", array("q", [0])),
                ("mem_nodes", "q", array("q")),
                ("sb_offsets", "q", array("q", [0])),
                ("sb_nodes", "q", array("q")),
            ])
            saved = dict(par._ATTACHED)
            par._ATTACHED.clear()
            try:
                cells_state = par._attach_cells(cells_spec)
                par._attach_super(("super", super_path))
                # The super attach replaced nothing: the cells mapping
                # survives (identity, not a re-parse) ...
                assert par._attach_cells(cells_spec) is cells_state
                # ... and both kinds stay resident side by side.
                assert set(par._ATTACHED) == {"cells", "super"}
            finally:
                par._ATTACHED.clear()
                par._ATTACHED.update(saved)
        finally:
            customizer.close()


class TestNoPickling:
    def test_graph_never_pickled(self, net, monkeypatch):
        """Workers attach the network via the mmapped blob, never via
        pickle — poison __reduce__ and the build must still succeed."""

        def _poisoned(self):
            raise AssertionError("RoadNetwork crossed a process boundary")

        monkeypatch.setattr(RoadNetwork, "__reduce__", _poisoned)
        monkeypatch.setattr(RoadNetwork, "__reduce_ex__", _poisoned)
        customizer = ParallelCustomizer(2, start_method="fork")
        try:
            serial = None
            with monkeypatch.context() as unpoisoned:
                unpoisoned.undo()
                serial = build_overlay(net, cell_capacity=10, kernel="csr")
            par = build_overlay(
                net, cell_capacity=10, kernel="csr", customizer=customizer
            )
            assert dumps_overlay(par) == dumps_overlay(serial)
        finally:
            customizer.close()


class TestValidation:
    def test_non_integer_node_ids_rejected(self, pool):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 1, 0)
        net.add_node("c", 0, 1)
        net.add_node("d", 1, 1)
        net.add_edge("a", "b", 1.0)
        net.add_edge("b", "c", 1.0)
        net.add_edge("c", "d", 1.0)
        with pytest.raises(GraphError, match="integer node ids"):
            build_overlay(net, cell_capacity=2, kernel="csr", customizer=pool)

    def test_closed_pool_rejected(self, net):
        customizer = ParallelCustomizer(2, start_method="fork")
        customizer.close()
        with pytest.raises(RuntimeError, match="closed"):
            build_overlay(
                net, cell_capacity=10, kernel="csr", customizer=customizer
            )

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ParallelCustomizer(0)

    def test_default_start_method_is_sane(self):
        assert default_start_method() in multiprocessing.get_all_start_methods()

    def test_metrics_surface_counts_only(self, net):
        """repro_customize_* instruments carry counts/rates, never ids."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        customizer = ParallelCustomizer(
            2, start_method="fork", metrics=registry
        )
        try:
            build_overlay(
                net, cell_capacity=10, kernel="csr", customizer=customizer
            )
        finally:
            customizer.close()
        snap = registry.collect()
        names = [m for m in snap if m.startswith("repro_customize_")]
        assert "repro_customize_workers" in names
        assert "repro_customize_cells_total" in names
        for name in names:
            assert isinstance(snap[name]["value"], (int, float))
