"""Unit tests for repro.search.overlay.

Oracle parity over random networks is covered for both overlay engines
by tests/search/test_engine_conformance.py; these tests pin down the
subsystem-specific behavior — customization sharing, the metric flag,
persistence, and the targeted cases a conformance sweep may miss.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import GraphError, NoPathError, UnknownNodeError
from repro.network.generators import grid_network, tiger_like_network
from repro.network.graph import RoadNetwork
from repro.search import ENGINES, get_engine, get_processor
from repro.search.dijkstra import dijkstra_path
from repro.search.overlay import (
    CSROverlayProcessor,
    NestedOverlayGraph,
    NestedOverlayProcessor,
    OverlayGraph,
    OverlayProcessor,
    build_nested_overlay,
    build_overlay,
    dumps_overlay,
    loads_overlay,
    nested_overlay_snapshot,
    overlay_snapshot,
    read_overlay,
    write_overlay,
)
from repro.search.result import SearchStats


@pytest.fixture(scope="module", params=["dict", "csr"])
def kernel(request):
    return request.param


@pytest.fixture(scope="module")
def net():
    return grid_network(12, 12, perturbation=0.1, seed=9)


@pytest.fixture(scope="module")
def overlay(net, kernel):
    return build_overlay(net, cell_capacity=24, kernel=kernel)


class TestBuild:
    def test_registry(self):
        for name, cls in (
            ("overlay", OverlayProcessor),
            ("overlay-csr", CSROverlayProcessor),
        ):
            assert name in ENGINES
            assert isinstance(get_processor(name), cls)

    def test_unknown_kernel(self, net):
        with pytest.raises(GraphError, match="kernel"):
            build_overlay(net, kernel="gpu")

    def test_metric_flag(self, net, kernel):
        # Grid weights are Euclidean lengths -> metric holds.
        assert build_overlay(net, kernel=kernel).metric
        # Travel-time weights undercut geometry -> metric must be off.
        tiger = tiger_like_network(blocks=2, block_size=3, seed=4)
        assert not build_overlay(tiger, kernel=kernel).metric

    def test_repr_and_counters(self, overlay):
        assert "OverlayGraph(" in repr(overlay)
        assert overlay.num_cells == overlay.partition.num_cells
        assert overlay.num_boundary_nodes == len(overlay.boundary_ids)
        assert (
            overlay.num_clique_arcs + overlay.num_cut_arcs
            == len(overlay.over_targets)
        )
        assert overlay.customized_cells == overlay.num_cells
        assert overlay.customize_stats.settled_nodes > 0

    def test_snapshot_memoized(self, kernel):
        net = grid_network(6, 6, seed=2)
        a = overlay_snapshot(net, kernel=kernel)
        assert overlay_snapshot(net, kernel=kernel) is a
        net.add_edge(0, 7, 1.0)
        assert overlay_snapshot(net, kernel=kernel) is not a

    def test_snapshot_does_not_pin_network(self, kernel):
        # The memo must hold snapshots weakly: an OverlayGraph strongly
        # references its network, so a strong global cache would leak
        # every network routed with an overlay engine.
        import gc
        import weakref

        net = grid_network(5, 5, seed=3)
        overlay_snapshot(net, kernel=kernel)
        ref = weakref.ref(net)
        del net
        gc.collect()
        assert ref() is None


class TestRoute:
    def test_trivial_and_errors(self, net, overlay):
        path = overlay.route(5, 5)
        assert path.nodes == (5,)
        with pytest.raises(UnknownNodeError):
            overlay.route(-1, 5)
        with pytest.raises(UnknownNodeError):
            overlay.route(5, "nope")

    def test_no_path_on_disconnected(self, kernel):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        ov = build_overlay(net, cell_capacity=2, kernel=kernel)
        with pytest.raises(NoPathError):
            ov.route(0, 3)

    def test_same_cell_exit_and_reenter(self, kernel):
        # Two nodes in one cell whose shortest path leaves the cell: the
        # in-cell road is a detour (weight 10), the outside route is 3.
        net = RoadNetwork()
        net.add_node(0, 0.0, 0.0)
        net.add_node(1, 1.0, 0.0)
        net.add_node(2, 0.0, 1.0)
        net.add_node(3, 1.0, 1.0)
        net.add_edge(0, 1, 10.0)
        net.add_edge(0, 2, 1.0)
        net.add_edge(2, 3, 1.0)
        net.add_edge(3, 1, 1.0)
        ov = build_overlay(
            net,
            partition=None,
            cell_capacity=2,
            kernel=kernel,
        )
        if ov.partition.cell_of[0] == ov.partition.cell_of[1]:
            path = ov.route(0, 1)
            assert path.distance == pytest.approx(3.0)
            assert path.nodes == (0, 2, 3, 1)

    def test_stats_accumulate(self, net, overlay):
        stats = SearchStats()
        overlay.route(0, net.num_nodes - 1, stats=stats)
        assert stats.settled_nodes > 0
        assert stats.heap_pushes > 0

    def test_engine_route_builds_context(self, net, kernel):
        name = "overlay" if kernel == "dict" else "overlay-csr"
        engine = get_engine(name)
        ref = dijkstra_path(net, 3, 140).distance
        assert engine.route(net, 3, 140).distance == pytest.approx(ref)


class TestRecustomize:
    def test_untouched_cells_are_shared(self, net, kernel):
        ov = build_overlay(net, cell_capacity=24, kernel=kernel)
        mutated = net.copy()
        target = None
        for u, v, w in mutated.edges():
            if ov.touched_cells([(u, v)]):
                target = (u, v, w)
                break
        assert target is not None
        u, v, w = target
        ov = build_overlay(mutated, cell_capacity=24, kernel=kernel)
        mutated.add_edge(u, v, w * 2.0)
        touched = ov.touched_cells([(u, v)])
        refreshed = ov.recustomized(touched)
        assert refreshed.customized_cells == len(touched)
        for cell in range(ov.num_cells):
            if cell in touched:
                assert refreshed.cliques[cell] is not ov.cliques[cell]
            else:
                assert refreshed.cliques[cell] is ov.cliques[cell]

    def test_noop_cells_are_skipped(self, net, kernel):
        """Re-writing an edge with its *unchanged* weight leaves the
        intra-cell fingerprint intact: the cell is not recomputed and
        its clique tables are shared with the source overlay."""
        ov = build_overlay(net, cell_capacity=24, kernel=kernel)
        u, v, w = next(
            (u, v, w)
            for u, v, w in net.edges()
            if ov.touched_cells([(u, v)])
        )
        net.add_edge(u, v, w)  # same value: a no-op re-weight
        touched = ov.touched_cells([(u, v)])
        assert touched
        refreshed = ov.recustomized(touched, changed_edges=[(u, v)])
        assert refreshed.customized_cells == 0
        for cell in range(ov.num_cells):
            assert refreshed.cliques[cell] is ov.cliques[cell]
        # A real change to the same edge must still recompute.
        net.add_edge(u, v, w * 2.0)
        refreshed = ov.recustomized(touched, changed_edges=[(u, v)])
        assert refreshed.customized_cells == len(touched)

    def test_deserialized_overlay_recomputes_conservatively(self, net, kernel):
        """Fingerprints do not survive serialization; a loaded overlay
        must recompute every touched cell rather than wrongly skip."""
        from repro.search.overlay import dumps_overlay, loads_overlay

        ov = build_overlay(net, cell_capacity=24, kernel=kernel)
        loaded = loads_overlay(dumps_overlay(ov), net)
        u, v, w = next(
            (u, v, w)
            for u, v, w in net.edges()
            if ov.touched_cells([(u, v)])
        )
        net.add_edge(u, v, w)  # no-op, but the loaded overlay can't know
        touched = loaded.touched_cells([(u, v)])
        refreshed = loaded.recustomized(touched, changed_edges=[(u, v)])
        assert refreshed.customized_cells == len(touched)

    def test_cut_edge_touches_no_cell_but_refreshes_weight(self, kernel):
        net = grid_network(8, 8, perturbation=0.1, seed=3)
        ov = build_overlay(net, cell_capacity=16, kernel=kernel)
        cut = next(
            (u, v)
            for u, v, _w in net.edges()
            if ov.partition.cell_of[u] != ov.partition.cell_of[v]
        )
        u, v = cut
        net.add_edge(u, v, net.edge_weight(u, v) * 5.0)
        assert ov.touched_cells([(u, v)]) == set()
        refreshed = ov.recustomized(set())
        ref = dijkstra_path(net, 0, net.num_nodes - 1).distance
        assert refreshed.route(0, net.num_nodes - 1).distance == (
            pytest.approx(ref)
        )

    def test_rejects_unknown_cell(self, overlay):
        with pytest.raises(GraphError):
            overlay.recustomized([overlay.num_cells])


class TestPersistence:
    def test_round_trip(self, net, overlay):
        text = dumps_overlay(overlay)
        loaded = loads_overlay(text, net)
        assert dumps_overlay(loaded) == text
        assert loaded.kernel == overlay.kernel
        assert loaded.metric == overlay.metric
        ref = dijkstra_path(net, 0, 143).distance
        assert loaded.route(0, 143).distance == pytest.approx(ref)

    def test_file_round_trip(self, net, overlay, tmp_path):
        path = tmp_path / "grid.ovl"
        write_overlay(overlay, path)
        loaded = read_overlay(path, net)
        assert dumps_overlay(loaded) == dumps_overlay(overlay)

    def test_rejects_malformed(self, net):
        with pytest.raises(GraphError, match="header"):
            loads_overlay("cell 0 1\n", net)
        with pytest.raises(GraphError, match="kernel"):
            loads_overlay("kernel gpu\ncapacity 4\n", net)
        with pytest.raises(GraphError, match="malformed"):
            loads_overlay("kernel csr\ncapacity x\n", net)
        with pytest.raises(GraphError, match="record kind"):
            loads_overlay("kernel csr\ncapacity 4\nfrobnicate\n", net)

    def test_rejects_clique_outside_boundary(self, kernel):
        net = grid_network(4, 4, seed=1)
        ov = build_overlay(net, cell_capacity=8, kernel=kernel)
        interior = next(
            n for n in net.nodes()
            if n not in ov.boundary_index
        )
        text = dumps_overlay(ov) + f"clique 0 1.0 {interior} {interior + 1}\n"
        with pytest.raises(GraphError):
            loads_overlay(text, net)

    def test_rejects_non_integer_ids(self, kernel):
        net = RoadNetwork()
        net.add_node("a", 0.0, 0.0)
        net.add_node("b", 1.0, 0.0)
        net.add_edge("a", "b", 1.0)
        ov = build_overlay(net, cell_capacity=1, kernel=kernel)
        with pytest.raises(GraphError, match="integer"):
            dumps_overlay(ov)


class TestProcessor:
    def test_unreachable_pair_raises(self, kernel):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        name = "overlay" if kernel == "dict" else "overlay-csr"
        processor = get_processor(name)
        with pytest.raises(NoPathError):
            processor.process(net, [0], [1, 3])

    def test_wire_order_and_parity(self, net, kernel):
        name = "overlay" if kernel == "dict" else "overlay-csr"
        processor = get_processor(name)
        rng = random.Random(4)
        nodes = list(net.nodes())
        sources = rng.sample(nodes, 3)
        destinations = rng.sample(nodes, 3)
        result = processor.process(net, sources, destinations)
        assert list(result.paths) == [
            (s, t) for s in sources for t in destinations
        ]
        for (s, t), path in result.paths.items():
            ref = dijkstra_path(net, s, t).distance
            assert path.distance == pytest.approx(ref, abs=1e-9)
        assert result.searches == len(sources) + len(destinations)


class TestNested:
    """The two-level nested overlay (NestedOverlayGraph)."""

    @pytest.fixture(scope="class")
    def nnet(self):
        return grid_network(20, 20, perturbation=0.1, seed=3)

    @pytest.fixture(scope="class")
    def nested(self, nnet):
        return build_nested_overlay(nnet, kernel="csr")

    def test_registry(self):
        assert "overlay-nested" in ENGINES
        assert isinstance(
            get_processor("overlay-nested"), NestedOverlayProcessor
        )

    def test_repr_and_counters(self, nested):
        assert "supercells=" in repr(nested)
        assert nested.num_supercells == nested.sup.num_cells
        assert 2 <= nested.num_supercells <= nested.num_cells
        assert (
            0 < nested.num_super_boundary_nodes < nested.num_boundary_nodes
        )
        assert nested.num_top_arcs == len(nested.top_targets)
        assert nested.customized_supercells == nested.num_supercells

    def test_super_partition_is_cell_aligned(self, nested):
        # Supercells are unions of whole base cells, so a level-1 clique
        # arc (kind >= 0) can never cross a supercell -- the invariant
        # the mixed sweep's exactness argument rests on.
        sup_of = nested._sup_of
        for b in range(len(nested.boundary_ids)):
            for e in range(nested.over_offsets[b], nested.over_offsets[b + 1]):
                if nested.over_kinds[e] >= 0:
                    assert sup_of[nested.over_targets[e]] == sup_of[b]

    def test_oracle_parity(self, nnet, nested):
        rng = random.Random(8)
        nodes = sorted(nnet.nodes())
        for _ in range(25):
            s, t = rng.choice(nodes), rng.choice(nodes)
            if s == t:
                continue
            ref = dijkstra_path(nnet, s, t).distance
            got = nested.route(s, t)
            assert got.distance == pytest.approx(ref, abs=1e-9)
            assert got.nodes[0] == s and got.nodes[-1] == t

    def test_level1_byte_identical_to_flat(self, nnet, nested):
        flat = build_overlay(nnet, kernel="csr")
        assert dumps_overlay(nested) == dumps_overlay(flat)

    def test_recustomized_shares_unaffected_supercells(self, nnet):
        net = nnet.copy()
        nested = build_nested_overlay(net, kernel="csr")
        u, v, w = next(
            (u, v, w) for u, v, w in net.edges()
            if nested.touched_cells([(u, v)])
        )
        net.add_edge(u, v, w * 2.0)
        touched = nested.touched_cells([(u, v)])
        refreshed = nested.recustomized(touched, changed_edges=[(u, v)])
        assert isinstance(refreshed, NestedOverlayGraph)
        assert refreshed.sup is nested.sup
        affected = {nested.sup.cell_of[cell] for cell in touched}
        assert refreshed.customized_supercells == len(affected)
        for sc in range(nested.num_supercells):
            if sc in affected:
                assert refreshed.sup_cliques[sc] is not nested.sup_cliques[sc]
            else:
                assert refreshed.sup_cliques[sc] is nested.sup_cliques[sc]

    def test_recustomized_byte_identical_to_fresh_build(self, nnet):
        net = nnet.copy()
        nested = build_nested_overlay(net, kernel="csr")
        u, v, w = next(
            (u, v, w) for u, v, w in net.edges()
            if nested.touched_cells([(u, v)])
        )
        net.add_edge(u, v, w * 3.0)
        refreshed = nested.recustomized(
            nested.touched_cells([(u, v)]), changed_edges=[(u, v)]
        )
        fresh = build_nested_overlay(net, kernel="csr")
        assert dumps_overlay(refreshed) == dumps_overlay(fresh)
        assert refreshed.top_offsets == fresh.top_offsets
        assert refreshed.top_targets == fresh.top_targets
        assert refreshed.top_weights == fresh.top_weights
        assert refreshed.top_kinds == fresh.top_kinds

    def test_cut_edge_recustomize_refreshes_top_weights(self, nnet):
        # A cut edge touches no base cell, but its weight feeds both the
        # level-1 overlay arcs and (for a crossing within one supercell)
        # that supercell's restricted cliques.
        net = nnet.copy()
        nested = build_nested_overlay(net, kernel="csr")
        cell_of = nested.partition.cell_of
        u, v = next(
            (u, v) for u, v, _w in net.edges()
            if cell_of[u] != cell_of[v]
        )
        net.add_edge(u, v, net.edge_weight(u, v) * 4.0)
        assert nested.touched_cells([(u, v)]) == set()
        refreshed = nested.recustomized(set(), changed_edges=[(u, v)])
        fresh = build_nested_overlay(net, kernel="csr")
        assert dumps_overlay(refreshed) == dumps_overlay(fresh)
        assert refreshed.top_weights == fresh.top_weights
        rng = random.Random(2)
        nodes = sorted(net.nodes())
        for _ in range(10):
            s, t = rng.choice(nodes), rng.choice(nodes)
            if s == t:
                continue
            ref = dijkstra_path(net, s, t).distance
            assert refreshed.route(s, t).distance == (
                pytest.approx(ref, abs=1e-9)
            )

    def test_scalar_fallback_matches_fast_path(self, nnet, nested, monkeypatch):
        # Without numpy the engine must answer identically through the
        # pure-scalar sweep (and build no mirrors at all).
        from repro.search import kernels as kernels_mod
        from repro.search import overlay as overlay_mod

        monkeypatch.setattr(overlay_mod, "_np", None)
        monkeypatch.setattr(kernels_mod, "_np", None)
        scalar = build_nested_overlay(nnet, kernel="csr")
        assert scalar._top_np is None
        rng = random.Random(6)
        nodes = sorted(nnet.nodes())
        for _ in range(12):
            s, t = rng.choice(nodes), rng.choice(nodes)
            if s == t:
                continue
            assert scalar.route(s, t).distance == pytest.approx(
                nested.route(s, t).distance, abs=1e-9
            )

    def test_snapshot_memoized(self):
        net = grid_network(6, 6, seed=2)
        a = nested_overlay_snapshot(net)
        assert nested_overlay_snapshot(net) is a
        assert overlay_snapshot(net, kernel="csr") is not a
        net.add_edge(0, 7, 1.0)
        assert nested_overlay_snapshot(net) is not a

    def test_msmd_parity(self, nnet):
        processor = get_processor("overlay-nested")
        rng = random.Random(4)
        nodes = sorted(nnet.nodes())
        sources = rng.sample(nodes, 3)
        destinations = rng.sample(nodes, 3)
        result = processor.process(nnet, sources, destinations)
        assert list(result.paths) == [
            (s, t) for s in sources for t in destinations
        ]
        for (s, t), path in result.paths.items():
            ref = dijkstra_path(nnet, s, t).distance
            assert path.distance == pytest.approx(ref, abs=1e-9)
