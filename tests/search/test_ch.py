"""Unit tests for the Contraction Hierarchies subsystem."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import GraphError, NoPathError, UnknownNodeError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.search import ENGINES, get_engine, get_processor, list_engines
from repro.search.ch import (
    CHManyToManyProcessor,
    ch_many_to_many,
    ch_path,
    contract_network,
    dumps_contracted,
    loads_contracted,
    read_contracted,
    unpack_path,
    write_contracted,
)
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats


@pytest.fixture(scope="module")
def grid():
    return grid_network(12, 12, perturbation=0.1, seed=11)


@pytest.fixture(scope="module")
def contracted(grid):
    return contract_network(grid)


class TestContraction:
    def test_every_node_ranked_exactly_once(self, grid, contracted):
        ranks = [contracted.rank_of(n) for n in grid.nodes()]
        assert sorted(ranks) == list(range(grid.num_nodes))

    def test_upward_edges_point_upward(self, contracted):
        for node in contracted.nodes():
            for higher in contracted.upward(node):
                assert contracted.rank_of(higher) > contracted.rank_of(node)
            for higher in contracted.downward_in(node):
                assert contracted.rank_of(higher) > contracted.rank_of(node)

    def test_stats_describe_the_run(self, grid, contracted):
        stats = contracted.stats
        assert stats.original_nodes == grid.num_nodes
        assert stats.original_edges == 2 * grid.num_edges  # undirected
        assert stats.witness_searches > 0
        assert stats.overlay_edges >= stats.original_edges

    def test_rejects_bad_witness_limit(self, grid):
        with pytest.raises(ValueError):
            contract_network(grid, witness_settled_limit=0)

    def test_shortcut_middles_are_recorded(self, contracted):
        assert contracted.num_shortcuts > 0
        for (u, v, _w) in contracted.edges():
            mid = contracted.middle(u, v)
            if mid is not None:
                # The middle was contracted before both endpoints.
                assert contracted.rank_of(mid) < contracted.rank_of(u)
                assert contracted.rank_of(mid) < contracted.rank_of(v)


class TestPointQueries:
    # Oracle parity vs. Dijkstra (including on directed and
    # disconnected networks) is covered for every engine by
    # tests/search/test_engine_conformance.py.

    def test_paths_are_walkable_original_edges(self, grid, contracted):
        rng = random.Random(4)
        nodes = list(grid.nodes())
        for _ in range(40):
            s, t = rng.sample(nodes, 2)
            path = ch_path(contracted, s, t)
            total = sum(grid.edge_weight(u, v) for u, v in path.edges())
            assert total == pytest.approx(path.distance, abs=1e-9)

    def test_trivial_query(self, contracted):
        node = next(contracted.nodes())
        path = ch_path(contracted, node, node)
        assert path.nodes == (node,)
        assert path.distance == 0.0

    def test_unknown_nodes_raise(self, contracted):
        node = next(contracted.nodes())
        with pytest.raises(UnknownNodeError):
            ch_path(contracted, "nope", node)
        with pytest.raises(UnknownNodeError):
            ch_path(contracted, node, "nope")

    def test_unreachable_raises_no_path(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        graph = contract_network(net)
        with pytest.raises(NoPathError):
            ch_path(graph, 0, 3)

    def test_settles_fewer_nodes_than_dijkstra(self, medium_grid):
        graph = contract_network(medium_grid)
        nodes = list(medium_grid.nodes())
        ch_stats, dij_stats = SearchStats(), SearchStats()
        dijkstra_path(medium_grid, nodes[0], nodes[-1], stats=dij_stats)
        ch_path(graph, nodes[0], nodes[-1], stats=ch_stats)
        assert ch_stats.settled_nodes < dij_stats.settled_nodes / 2


class TestUnpacking:
    def test_line_graph_shortcut_unpacks_to_original_nodes(self):
        # A path graph contracts its interior first, leaving one nested
        # shortcut chain between the endpoints.
        net = RoadNetwork()
        n = 8
        for i in range(n):
            net.add_node(i, float(i), 0.0)
        for i in range(n - 1):
            net.add_edge(i, i + 1, 1.0 + 0.1 * i)
        graph = contract_network(net)
        assert graph.num_shortcuts > 0
        path = ch_path(graph, 0, n - 1)
        assert path.nodes == tuple(range(n))
        assert path.distance == pytest.approx(
            sum(1.0 + 0.1 * i for i in range(n - 1))
        )

    def test_unpack_path_expands_overlay_edges(self):
        net = RoadNetwork()
        for i in range(5):
            net.add_node(i, float(i), 0.0)
        for i in range(4):
            net.add_edge(i, i + 1, 1.0)
        graph = contract_network(net)
        # Find an overlay edge that is a shortcut and expand it.
        shortcut = next(
            (u, v) for u, v, _w in graph.edges() if graph.middle(u, v) is not None
        )
        expanded = unpack_path(graph, list(shortcut))
        assert expanded[0] == shortcut[0]
        assert expanded[-1] == shortcut[1]
        assert len(expanded) > 2
        for u, v in zip(expanded, expanded[1:]):
            assert net.has_edge(u, v)

    def test_unpack_empty_path(self, contracted):
        assert unpack_path(contracted, []) == []


class TestManyToMany:
    # MSMD oracle parity is covered for every engine by
    # tests/search/test_engine_conformance.py.

    def test_searches_counts_sweeps(self, grid, contracted):
        nodes = list(grid.nodes())
        proc = CHManyToManyProcessor(graph=contracted)
        got = proc.process(grid, nodes[:3], nodes[10:14])
        assert got.searches == 3 + 4

    def test_overlapping_sources_and_destinations(self, grid, contracted):
        nodes = list(grid.nodes())
        shared = nodes[5]
        paths = ch_many_to_many(contracted, [shared, nodes[9]], [shared])
        assert paths[(shared, shared)].distance == 0.0
        assert paths[(shared, shared)].nodes == (shared,)

    def test_unreachable_pair_raises(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        proc = CHManyToManyProcessor()
        with pytest.raises(NoPathError):
            proc.process(net, [0], [1, 3])

    def test_processor_caches_contraction_per_network(self, grid):
        proc = CHManyToManyProcessor()
        first = proc.graph_for(grid)
        again = proc.graph_for(grid)
        assert first is again

    def test_registered_in_processor_registry(self):
        proc = get_processor("ch")
        assert isinstance(proc, CHManyToManyProcessor)
        assert proc.name == "ch"

    def test_unknown_processor_message_lists_ch(self):
        with pytest.raises(KeyError, match="ch"):
            get_processor("bogus")


class TestPersist:
    def test_round_trip_file(self, grid, contracted, tmp_path):
        target = tmp_path / "grid.ch"
        write_contracted(contracted, target)
        loaded = read_contracted(target)
        assert loaded.num_nodes == contracted.num_nodes
        assert loaded.num_shortcuts == contracted.num_shortcuts
        assert loaded.directed == contracted.directed
        rng = random.Random(8)
        nodes = list(grid.nodes())
        for _ in range(40):
            s, t = rng.sample(nodes, 2)
            assert ch_path(loaded, s, t).distance == pytest.approx(
                ch_path(contracted, s, t).distance, abs=1e-12
            )

    def test_round_trip_string(self, contracted):
        loaded = loads_contracted(dumps_contracted(contracted))
        assert {n: loaded.rank_of(n) for n in loaded.nodes()} == {
            n: contracted.rank_of(n) for n in contracted.nodes()
        }

    def test_loaded_graph_answers_queries_without_network(self, grid, contracted):
        # The persisted artifact alone answers queries — preprocessing is
        # genuinely paid once per network.
        loaded = loads_contracted(dumps_contracted(contracted))
        nodes = list(grid.nodes())
        ref = dijkstra_path(grid, nodes[0], nodes[-1]).distance
        assert ch_path(loaded, nodes[0], nodes[-1]).distance == pytest.approx(
            ref, abs=1e-9
        )

    def test_malformed_input_raises(self):
        with pytest.raises(GraphError):
            loads_contracted("rank 0 0\n")  # before 'directed' header
        with pytest.raises(GraphError):
            loads_contracted(
                "directed 0\ncounts 2 0\nrank 0 0\nrank 1 0\n"
            )  # duplicate rank value
        with pytest.raises(GraphError):
            loads_contracted("directed 0\nfrobnicate 1 2\n")

    def test_truncated_file_raises(self, contracted):
        text = dumps_contracted(contracted)
        truncated = "\n".join(text.splitlines()[: len(text.splitlines()) // 2])
        with pytest.raises(GraphError, match="truncated"):
            loads_contracted(truncated)


class TestEngineRegistry:
    def test_all_engines_registered(self):
        assert set(list_engines()) >= {
            "dijkstra",
            "astar",
            "bidirectional",
            "alt",
            "ch",
        }

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError, match="valid"):
            get_engine("teleport")

    def test_every_engine_routes_the_same_distance(self, small_grid):
        nodes = list(small_grid.nodes())
        s, t = nodes[3], nodes[-4]
        ref = dijkstra_path(small_grid, s, t).distance
        for name, engine in ENGINES.items():
            context = engine.prepare(small_grid)
            path = engine.route(small_grid, s, t, context=context)
            assert path.distance == pytest.approx(ref, abs=1e-9), name

    def test_ch_engine_routes_without_context(self, small_grid):
        engine = get_engine("ch")
        nodes = list(small_grid.nodes())
        ref = dijkstra_path(small_grid, nodes[0], nodes[-1]).distance
        path = engine.route(small_grid, nodes[0], nodes[-1])
        assert path.distance == pytest.approx(ref, abs=1e-9)
