"""Unit tests for repro.search.dijkstra, cross-checked against networkx."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.network.storage import PagedNetwork
from repro.search.dijkstra import dijkstra_path, dijkstra_sssp, dijkstra_to_many
from repro.search.result import SearchStats


@pytest.fixture(scope="module")
def oracle_pair():
    net = grid_network(15, 15, perturbation=0.15, seed=21)
    return net, net.to_networkx()


class TestDijkstraPath:
    def test_hand_checked_triangle(self, tiny_triangle):
        path = dijkstra_path(tiny_triangle, "a", "c")
        assert path.nodes == ("a", "b", "c")
        assert path.distance == pytest.approx(2.0)

    def test_matches_networkx_on_random_pairs(self, oracle_pair):
        net, g = oracle_pair
        rng = random.Random(1)
        nodes = list(net.nodes())
        for _ in range(40):
            s, t = rng.sample(nodes, 2)
            ours = dijkstra_path(net, s, t)
            theirs = nx.shortest_path_length(g, s, t, weight="weight")
            assert ours.distance == pytest.approx(theirs)

    def test_path_is_walkable(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        path = dijkstra_path(net, nodes[0], nodes[-1])
        total = 0.0
        for u, v in path.edges():
            assert net.has_edge(u, v)
            total += net.edge_weight(u, v)
        assert total == pytest.approx(path.distance)

    def test_source_equals_destination(self, oracle_pair):
        net, _g = oracle_pair
        node = next(net.nodes())
        path = dijkstra_path(net, node, node)
        assert path.nodes == (node,)
        assert path.distance == 0.0

    def test_unreachable_raises(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(NoPathError):
            dijkstra_path(net, 1, 2)

    def test_unknown_endpoints_raise(self, tiny_triangle):
        with pytest.raises(UnknownNodeError):
            dijkstra_path(tiny_triangle, "zz", "a")
        with pytest.raises(UnknownNodeError):
            dijkstra_path(tiny_triangle, "a", "zz")

    def test_stats_populated(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        stats = SearchStats()
        path = dijkstra_path(net, nodes[0], nodes[-1], stats=stats)
        assert stats.settled_nodes >= len(path.nodes)
        assert stats.relaxed_edges > 0
        assert stats.heap_pushes > 0
        assert stats.max_settled_distance >= path.distance - 1e-9

    def test_directed_network(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 1.0)
        assert dijkstra_path(net, 1, 2).distance == 1.0
        with pytest.raises(NoPathError):
            dijkstra_path(net, 2, 1)


class TestDijkstraToMany:
    def test_all_destinations_answered(self, oracle_pair):
        net, g = oracle_pair
        nodes = list(net.nodes())
        targets = nodes[50:60]
        results = dijkstra_to_many(net, nodes[0], targets)
        assert set(results) == set(targets)
        for t in targets:
            theirs = nx.shortest_path_length(g, nodes[0], t, weight="weight")
            assert results[t].distance == pytest.approx(theirs)

    def test_source_in_targets_gets_trivial_path(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        results = dijkstra_to_many(net, nodes[0], [nodes[0], nodes[5]])
        assert results[nodes[0]].nodes == (nodes[0],)

    def test_duplicate_targets_tolerated(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        results = dijkstra_to_many(net, nodes[0], [nodes[3], nodes[3]])
        assert set(results) == {nodes[3]}

    def test_strict_unreachable_raises(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_node(3, 2, 0)
        net.add_edge(1, 2)
        with pytest.raises(NoPathError):
            dijkstra_to_many(net, 1, [2, 3])

    def test_non_strict_omits_unreachable(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_node(3, 2, 0)
        net.add_edge(1, 2)
        results = dijkstra_to_many(net, 1, [2, 3], strict=False)
        assert set(results) == {2}

    def test_single_tree_cheaper_than_repeated_searches(self, oracle_pair):
        """The SSMD optimization the paper's server relies on."""
        net, _g = oracle_pair
        nodes = list(net.nodes())
        targets = nodes[100:110]
        shared = SearchStats()
        dijkstra_to_many(net, nodes[0], targets, stats=shared)
        repeated = SearchStats()
        for t in targets:
            dijkstra_path(net, nodes[0], t, stats=repeated)
        assert shared.settled_nodes < repeated.settled_nodes

    def test_cost_bounded_by_furthest_destination(self, oracle_pair):
        """Adding a near destination to a far one is almost free."""
        net, _g = oracle_pair
        nodes = list(net.nodes())
        far = nodes[-1]
        near = nodes[16]  # close to nodes[0] in the grid
        only_far = SearchStats()
        dijkstra_to_many(net, nodes[0], [far], stats=only_far)
        both = SearchStats()
        dijkstra_to_many(net, nodes[0], [far, near], stats=both)
        assert both.settled_nodes == only_far.settled_nodes

    def test_empty_targets_returns_empty(self, oracle_pair):
        net, _g = oracle_pair
        assert dijkstra_to_many(net, next(net.nodes()), []) == {}


class TestDijkstraSSSP:
    def test_covers_whole_component(self, oracle_pair):
        net, _g = oracle_pair
        distances, _pred = dijkstra_sssp(net, next(net.nodes()))
        assert len(distances) == net.num_nodes

    def test_matches_networkx(self, oracle_pair):
        net, g = oracle_pair
        source = next(net.nodes())
        distances, _pred = dijkstra_sssp(net, source)
        theirs = nx.single_source_dijkstra_path_length(g, source, weight="weight")
        for node, dist in theirs.items():
            assert distances[node] == pytest.approx(dist)

    def test_max_distance_bounds_exploration(self, oracle_pair):
        net, _g = oracle_pair
        source = next(net.nodes())
        distances, _pred = dijkstra_sssp(net, source, max_distance=3.0)
        assert 0 < len(distances) < net.num_nodes
        assert all(d <= 3.0 + 1e-9 for d in distances.values())

    def test_unknown_source_raises(self, oracle_pair):
        net, _g = oracle_pair
        with pytest.raises(UnknownNodeError):
            dijkstra_sssp(net, -5)


class TestPagedSearchAccounting:
    def test_page_faults_recorded_in_stats(self, medium_grid):
        paged = PagedNetwork(medium_grid, page_capacity=16, buffer_capacity=4)
        nodes = list(medium_grid.nodes())
        stats = SearchStats()
        dijkstra_path(paged, nodes[0], nodes[-1], stats=stats)
        assert stats.page_faults > 0
        assert stats.pages_touched > 0

    def test_longer_search_touches_more_pages(self, medium_grid):
        nodes = list(medium_grid.nodes())
        short_stats = SearchStats()
        long_stats = SearchStats()
        paged = PagedNetwork(medium_grid, page_capacity=16, buffer_capacity=4)
        dijkstra_path(paged, nodes[0], nodes[26], stats=short_stats)
        paged.reset_io()
        dijkstra_path(paged, nodes[0], nodes[-1], stats=long_stats)
        assert long_stats.page_faults > short_stats.page_faults
