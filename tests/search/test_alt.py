"""Unit tests for repro.search.alt (ALT landmark search)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import UnknownNodeError
from repro.network.generators import grid_network, tiger_like_network
from repro.network.graph import RoadNetwork
from repro.search.alt import LandmarkIndex, alt_path, select_landmarks_farthest
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats


@pytest.fixture(scope="module")
def net():
    return grid_network(20, 20, perturbation=0.1, seed=301)


@pytest.fixture(scope="module")
def index(net):
    return LandmarkIndex(net, num_landmarks=4)


class TestLandmarkSelection:
    def test_requested_count(self, net):
        assert len(select_landmarks_farthest(net, 5)) == 5

    def test_landmarks_distinct_and_valid(self, net):
        landmarks = select_landmarks_farthest(net, 6)
        assert len(set(landmarks)) == 6
        assert all(lm in net for lm in landmarks)

    def test_landmarks_spread_apart(self, net):
        """Farthest-point selection must not cluster landmarks."""
        landmarks = select_landmarks_farthest(net, 4)
        for i, a in enumerate(landmarks):
            for b in landmarks[i + 1 :]:
                assert net.euclidean_distance(a, b) > 5.0

    def test_deterministic(self, net):
        assert select_landmarks_farthest(net, 4) == select_landmarks_farthest(net, 4)

    def test_count_capped_by_network(self):
        tiny = RoadNetwork()
        tiny.add_node(1, 0, 0)
        tiny.add_node(2, 1, 0)
        tiny.add_edge(1, 2)
        landmarks = select_landmarks_farthest(tiny, 10)
        assert 1 <= len(landmarks) <= 2

    def test_invalid_arguments(self, net):
        with pytest.raises(ValueError):
            select_landmarks_farthest(net, 0)
        with pytest.raises(UnknownNodeError):
            select_landmarks_farthest(net, 2, seed_node=-1)


class TestLandmarkIndex:
    def test_explicit_landmarks(self, net):
        nodes = list(net.nodes())
        index = LandmarkIndex(net, landmarks=[nodes[0], nodes[-1]])
        assert index.landmarks == [nodes[0], nodes[-1]]

    def test_directed_supported(self):
        directed = RoadNetwork(directed=True)
        directed.add_node(1, 0, 0)
        directed.add_node(2, 1, 0)
        directed.add_node(3, 2, 0)
        directed.add_edge(1, 2, 1.0)
        directed.add_edge(2, 3, 1.0)
        directed.add_edge(3, 1, 5.0)
        index = LandmarkIndex(directed, num_landmarks=1)
        assert alt_path(directed, 1, 3, index).distance == pytest.approx(2.0)
        assert alt_path(directed, 3, 1, index).distance == pytest.approx(5.0)

    def test_empty_landmark_list_rejected(self, net):
        with pytest.raises(ValueError):
            LandmarkIndex(net, landmarks=[])

    def test_unknown_landmark_rejected(self, net):
        with pytest.raises(UnknownNodeError):
            LandmarkIndex(net, landmarks=[-5])

    def test_heuristic_is_admissible(self, net, index):
        """h(n) must lower-bound the true network distance everywhere."""
        rng = random.Random(5)
        nodes = list(net.nodes())
        for _ in range(15):
            s, t = rng.sample(nodes, 2)
            h = index.heuristic_for(t)
            true = dijkstra_path(net, s, t).distance
            assert h(s) <= true + 1e-9

    def test_heuristic_zero_at_destination(self, net, index):
        node = next(net.nodes())
        assert index.heuristic_for(node)(node) == 0.0

    def test_lower_bound_symmetry(self, net, index):
        nodes = list(net.nodes())
        assert index.lower_bound(nodes[0], nodes[-1]) == pytest.approx(
            index.lower_bound(nodes[-1], nodes[0])
        )

    def test_unknown_destination_rejected(self, index):
        with pytest.raises(UnknownNodeError):
            index.heuristic_for(-1)


class TestAltPath:
    # Oracle parity vs. Dijkstra is covered for every engine by
    # tests/search/test_engine_conformance.py.

    def test_settles_fewer_nodes_than_dijkstra(self, net, index):
        rng = random.Random(7)
        nodes = list(net.nodes())
        alt_total = dijkstra_total = 0
        for _ in range(15):
            s, t = rng.sample(nodes, 2)
            sa, sd = SearchStats(), SearchStats()
            alt_path(net, s, t, index, stats=sa)
            dijkstra_path(net, s, t, stats=sd)
            alt_total += sa.settled_nodes
            dijkstra_total += sd.settled_nodes
        assert alt_total < dijkstra_total / 2

    def test_works_on_travel_time_networks(self):
        """ALT bounds come from true network distances, so they stay
        admissible where the Euclidean heuristic would not."""
        suburb = tiger_like_network(blocks=3, block_size=4, arterial_speedup=3.0, seed=8)
        index = LandmarkIndex(suburb, num_landmarks=4)
        rng = random.Random(8)
        nodes = list(suburb.nodes())
        for _ in range(10):
            s, t = rng.sample(nodes, 2)
            ours = alt_path(suburb, s, t, index)
            truth = dijkstra_path(suburb, s, t)
            assert ours.distance == pytest.approx(truth.distance)


class TestALTPairwiseProcessor:
    def test_matches_naive_pairwise(self, net):
        from repro.search.alt import ALTPairwiseProcessor
        from repro.search.multi import NaivePairwiseProcessor

        rng = random.Random(12)
        nodes = list(net.nodes())
        sources = rng.sample(nodes, 3)
        destinations = rng.sample(nodes, 3)
        ref = NaivePairwiseProcessor().process(net, sources, destinations)
        got = ALTPairwiseProcessor().process(net, sources, destinations)
        assert set(got.paths) == set(ref.paths)
        for pair, ref_path in ref.paths.items():
            assert got.paths[pair].distance == pytest.approx(ref_path.distance)
        assert got.searches == len(sources) * len(destinations)

    def test_index_cached_per_network(self, net):
        from repro.search.alt import ALTPairwiseProcessor

        proc = ALTPairwiseProcessor()
        assert proc.index_for(net) is proc.index_for(net)

    def test_registered_in_processor_registry(self):
        from repro.search.alt import ALTPairwiseProcessor
        from repro.search.multi import get_processor

        assert isinstance(get_processor("alt"), ALTPairwiseProcessor)
