"""Unit tests for repro.search.heap."""

from __future__ import annotations

import heapq
import random

import pytest

from repro.search.heap import AddressableHeap


class TestBasics:
    def test_push_pop_single(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("a", 3.0)
        assert heap.pop() == ("a", 3.0)
        assert len(heap) == 0

    def test_pop_returns_minimum(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        heap.push("c", 2.0)
        assert heap.pop() == ("b", 1.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 3.0)

    def test_bool_and_len(self):
        heap: AddressableHeap[int] = AddressableHeap()
        assert not heap
        heap.push(1, 1.0)
        assert heap
        assert len(heap) == 1

    def test_contains(self):
        heap: AddressableHeap[int] = AddressableHeap()
        heap.push(1, 1.0)
        assert 1 in heap
        assert 2 not in heap
        heap.pop()
        assert 1 not in heap

    def test_peek_does_not_remove(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("x", 5.0)
        assert heap.peek() == ("x", 5.0)
        assert len(heap) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop()

    def test_duplicate_push_rejected(self):
        heap: AddressableHeap[int] = AddressableHeap()
        heap.push(1, 1.0)
        with pytest.raises(KeyError):
            heap.push(1, 2.0)

    def test_ties_broken_by_insertion_order(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"


class TestDecreaseKey:
    def test_decrease_key_moves_to_front(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("a", 5.0)
        heap.push("b", 3.0)
        heap.decrease_key("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_decrease_key_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableHeap().decrease_key("nope", 1.0)

    def test_increase_rejected(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("a", 1.0)
        with pytest.raises(ValueError):
            heap.decrease_key("a", 2.0)

    def test_equal_priority_allowed(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push("a", 1.0)
        heap.decrease_key("a", 1.0)
        assert heap.priority_of("a") == 1.0

    def test_push_or_decrease_inserts(self):
        heap: AddressableHeap[str] = AddressableHeap()
        assert heap.push_or_decrease("a", 2.0) is True
        assert "a" in heap

    def test_push_or_decrease_lowers(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push_or_decrease("a", 2.0)
        assert heap.push_or_decrease("a", 1.0) is False
        assert heap.priority_of("a") == 1.0

    def test_push_or_decrease_ignores_higher(self):
        heap: AddressableHeap[str] = AddressableHeap()
        heap.push_or_decrease("a", 2.0)
        assert heap.push_or_decrease("a", 5.0) is False
        assert heap.priority_of("a") == 2.0


class TestAgainstHeapq:
    def test_random_sequence_matches_heapq(self):
        rng = random.Random(77)
        heap: AddressableHeap[int] = AddressableHeap()
        reference: list[tuple[float, int]] = []
        for key in range(200):
            priority = rng.uniform(0, 100)
            heap.push(key, priority)
            heapq.heappush(reference, (priority, key))
        ours = []
        while heap:
            ours.append(heap.pop()[1])
        theirs = [heapq.heappop(reference)[0] for _ in range(len(ours))]
        assert ours == sorted(ours)
        assert ours == pytest.approx(theirs)

    def test_interleaved_decrease_keys_stay_sorted(self):
        rng = random.Random(88)
        heap: AddressableHeap[int] = AddressableHeap()
        priorities = {}
        for key in range(100):
            priorities[key] = rng.uniform(50, 100)
            heap.push(key, priorities[key])
        for key in rng.sample(range(100), 40):
            new = rng.uniform(0, priorities[key])
            heap.decrease_key(key, new)
            priorities[key] = new
        out = []
        while heap:
            out.append(heap.pop()[1])
        assert out == sorted(out)
