"""Unit tests for repro.search.multi (MSMD processors)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.exceptions import QueryError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.search.multi import (
    NaivePairwiseProcessor,
    SharedTreeProcessor,
    SideSelectingProcessor,
    get_processor,
)

ALL_PROCESSORS = [
    NaivePairwiseProcessor(),
    NaivePairwiseProcessor(engine="bidirectional"),
    SharedTreeProcessor(),
    SideSelectingProcessor(),
]


@pytest.fixture(scope="module")
def oracle_pair():
    net = grid_network(12, 12, perturbation=0.1, seed=51)
    return net, net.to_networkx()


@pytest.fixture(scope="module")
def query_sets(oracle_pair):
    net, _g = oracle_pair
    rng = random.Random(8)
    nodes = list(net.nodes())
    sources = rng.sample(nodes, 3)
    destinations = rng.sample([n for n in nodes if n not in sources], 4)
    return sources, destinations


class TestAllProcessorsAgree:
    @pytest.mark.parametrize("processor", ALL_PROCESSORS, ids=lambda p: repr(p))
    def test_distances_match_oracle(self, oracle_pair, query_sets, processor):
        net, g = oracle_pair
        sources, destinations = query_sets
        result = processor.process(net, sources, destinations)
        assert result.num_paths == len(sources) * len(destinations)
        for (s, t), path in result.paths.items():
            theirs = nx.shortest_path_length(g, s, t, weight="weight")
            assert path.distance == pytest.approx(theirs)
            assert path.nodes[0] == s
            assert path.nodes[-1] == t

    @pytest.mark.parametrize("processor", ALL_PROCESSORS, ids=lambda p: repr(p))
    def test_paths_are_walkable(self, oracle_pair, query_sets, processor):
        net, _g = oracle_pair
        sources, destinations = query_sets
        result = processor.process(net, sources, destinations)
        for path in result.paths.values():
            for u, v in path.edges():
                assert net.has_edge(u, v)

    @pytest.mark.parametrize("processor", ALL_PROCESSORS, ids=lambda p: repr(p))
    def test_overlapping_s_and_t_gives_trivial_path(self, oracle_pair, processor):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        shared_node = nodes[10]
        result = processor.process(net, [shared_node, nodes[2]], [shared_node])
        trivial = result.paths[(shared_node, shared_node)]
        assert trivial.nodes == (shared_node,)
        assert trivial.distance == 0.0


class TestValidation:
    def test_empty_sources_rejected(self, oracle_pair):
        net, _g = oracle_pair
        with pytest.raises(QueryError):
            SharedTreeProcessor().process(net, [], [next(net.nodes())])

    def test_empty_destinations_rejected(self, oracle_pair):
        net, _g = oracle_pair
        with pytest.raises(QueryError):
            SharedTreeProcessor().process(net, [next(net.nodes())], [])

    def test_duplicate_sources_rejected(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        with pytest.raises(QueryError):
            SharedTreeProcessor().process(net, [nodes[0], nodes[0]], [nodes[1]])

    def test_duplicate_destinations_rejected(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        with pytest.raises(QueryError):
            NaivePairwiseProcessor().process(net, [nodes[0]], [nodes[1], nodes[1]])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            NaivePairwiseProcessor(engine="warp-drive")

    def test_bidirectional_engine_works_on_directed(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 2.5)
        result = NaivePairwiseProcessor(engine="bidirectional").process(
            net, [1], [2]
        )
        assert result.paths[(1, 2)].distance == pytest.approx(2.5)


class TestCostOrdering:
    def test_shared_never_costlier_than_naive(self, oracle_pair, query_sets):
        net, _g = oracle_pair
        sources, destinations = query_sets
        naive = NaivePairwiseProcessor().process(net, sources, destinations)
        shared = SharedTreeProcessor().process(net, sources, destinations)
        assert shared.stats.settled_nodes <= naive.stats.settled_nodes

    def test_shared_grows_one_tree_per_source(self, oracle_pair, query_sets):
        net, _g = oracle_pair
        sources, destinations = query_sets
        result = SharedTreeProcessor().process(net, sources, destinations)
        assert result.searches == len(sources)

    def test_naive_runs_one_search_per_pair(self, oracle_pair, query_sets):
        net, _g = oracle_pair
        sources, destinations = query_sets
        result = NaivePairwiseProcessor().process(net, sources, destinations)
        assert result.searches == len(sources) * len(destinations)

    def test_side_selection_uses_smaller_side(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        sources = nodes[:5]
        destinations = nodes[20:22]
        result = SideSelectingProcessor().process(net, sources, destinations)
        assert result.searches == len(destinations)  # grew from T, not S

    def test_side_selection_keeps_source_side_when_smaller(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        sources = nodes[:2]
        destinations = nodes[20:25]
        result = SideSelectingProcessor().process(net, sources, destinations)
        assert result.searches == len(sources)

    def test_side_selection_beats_shared_when_t_smaller(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        sources = nodes[:6]
        destinations = nodes[100:102]
        shared = SharedTreeProcessor().process(net, sources, destinations)
        side = SideSelectingProcessor().process(net, sources, destinations)
        assert side.stats.settled_nodes <= shared.stats.settled_nodes


class TestMSMDResult:
    def test_path_for_lookup(self, oracle_pair, query_sets):
        net, _g = oracle_pair
        sources, destinations = query_sets
        result = SharedTreeProcessor().process(net, sources, destinations)
        path = result.path_for(sources[0], destinations[0])
        assert path.source == sources[0]
        with pytest.raises(KeyError):
            result.path_for("nope", "nada")


class TestRegistry:
    @pytest.mark.parametrize("name", ["naive", "shared", "side-selecting"])
    def test_get_processor_by_name(self, name):
        assert get_processor(name).name == name

    def test_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="shared"):
            get_processor("quantum")
