"""Unit tests for repro.search.astar.

Oracle parity (A* vs. Dijkstra on random directed/disconnected
networks) lives in the engine-conformance harness
(``tests/search/test_engine_conformance.py``); this file keeps the
heuristic-specific behaviors.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.generators import grid_network, tiger_like_network
from repro.network.graph import RoadNetwork
from repro.search.astar import astar_path, euclidean_heuristic, zero_heuristic
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats


@pytest.fixture(scope="module")
def oracle_pair():
    net = grid_network(15, 15, perturbation=0.15, seed=31)
    return net, net.to_networkx()


class TestCorrectness:
    def test_source_equals_destination(self, oracle_pair):
        net, _g = oracle_pair
        node = next(net.nodes())
        path = astar_path(net, node, node)
        assert path.nodes == (node,)

    def test_zero_heuristic_equals_dijkstra(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        a = astar_path(net, nodes[0], nodes[-1], heuristic=zero_heuristic)
        d = dijkstra_path(net, nodes[0], nodes[-1])
        assert a.distance == pytest.approx(d.distance)

    def test_unreachable_raises(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(NoPathError):
            astar_path(net, 1, 2)

    def test_unknown_endpoints(self, oracle_pair):
        net, _g = oracle_pair
        with pytest.raises(UnknownNodeError):
            astar_path(net, -1, next(net.nodes()))
        with pytest.raises(UnknownNodeError):
            astar_path(net, next(net.nodes()), -1)

    def test_scaled_heuristic_on_travel_time_network(self):
        """Travel-time weights violate the unit-scale heuristic; the scaled
        one stays admissible (scale = 1 / arterial speedup)."""
        net = tiger_like_network(blocks=3, block_size=4, arterial_speedup=2.0, seed=3)
        nodes = list(net.nodes())
        rng = random.Random(4)
        for _ in range(15):
            s, t = rng.sample(nodes, 2)
            h = euclidean_heuristic(net, t, scale=1 / 2.0)
            ours = astar_path(net, s, t, heuristic=h)
            truth = dijkstra_path(net, s, t)
            assert ours.distance == pytest.approx(truth.distance)


class TestEfficiency:
    def test_astar_settles_fewer_nodes_than_dijkstra(self, oracle_pair):
        net, _g = oracle_pair
        nodes = list(net.nodes())
        rng = random.Random(5)
        astar_total = 0
        dijkstra_total = 0
        for _ in range(15):
            s, t = rng.sample(nodes, 2)
            sa, sd = SearchStats(), SearchStats()
            astar_path(net, s, t, stats=sa)
            dijkstra_path(net, s, t, stats=sd)
            astar_total += sa.settled_nodes
            dijkstra_total += sd.settled_nodes
        assert astar_total < dijkstra_total


class TestHeuristicFactories:
    def test_euclidean_heuristic_zero_at_destination(self, oracle_pair):
        net, _g = oracle_pair
        t = next(net.nodes())
        h = euclidean_heuristic(net, t)
        assert h(t) == 0.0

    def test_negative_scale_rejected(self, oracle_pair):
        net, _g = oracle_pair
        with pytest.raises(ValueError):
            euclidean_heuristic(net, next(net.nodes()), scale=-1.0)

    def test_zero_heuristic_is_zero(self):
        assert zero_heuristic("anything") == 0.0
