"""Unit tests for repro.search.result."""

from __future__ import annotations

import pytest

from repro.search.result import PathResult, SearchStats, reconstruct_path


class TestSearchStats:
    def test_defaults_are_zero(self):
        stats = SearchStats()
        assert stats.settled_nodes == 0
        assert stats.relaxed_edges == 0
        assert stats.heap_pushes == 0
        assert stats.page_faults == 0
        assert stats.max_settled_distance == 0.0

    def test_merge_accumulates(self):
        a = SearchStats(settled_nodes=3, relaxed_edges=5, max_settled_distance=2.0)
        b = SearchStats(settled_nodes=4, relaxed_edges=1, max_settled_distance=7.0)
        a.merge(b)
        assert a.settled_nodes == 7
        assert a.relaxed_edges == 6
        assert a.max_settled_distance == 7.0

    def test_merge_keeps_max_distance(self):
        a = SearchStats(max_settled_distance=9.0)
        a.merge(SearchStats(max_settled_distance=2.0))
        assert a.max_settled_distance == 9.0

    def test_copy_is_independent(self):
        a = SearchStats(settled_nodes=1)
        b = a.copy()
        b.settled_nodes = 99
        assert a.settled_nodes == 1


class TestPathResult:
    def test_valid_path(self):
        path = PathResult(1, 3, (1, 2, 3), 2.5)
        assert path.num_edges == 2
        assert len(path) == 3
        assert path.edges() == [(1, 2), (2, 3)]

    def test_trivial_path(self):
        path = PathResult(1, 1, (1,), 0.0)
        assert path.num_edges == 0
        assert path.edges() == []

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError):
            PathResult(1, 2, (), 0.0)

    def test_mismatched_source_rejected(self):
        with pytest.raises(ValueError):
            PathResult(9, 3, (1, 2, 3), 2.0)

    def test_mismatched_destination_rejected(self):
        with pytest.raises(ValueError):
            PathResult(1, 9, (1, 2, 3), 2.0)

    def test_immutability(self):
        path = PathResult(1, 2, (1, 2), 1.0)
        with pytest.raises(AttributeError):
            path.distance = 5.0


class TestReconstructPath:
    def test_linear_chain(self):
        predecessors = {2: 1, 3: 2, 4: 3}
        path = reconstruct_path(predecessors, 1, 4, 3.0)
        assert path.nodes == (1, 2, 3, 4)
        assert path.distance == 3.0

    def test_source_equals_destination(self):
        path = reconstruct_path({}, 5, 5, 0.0)
        assert path.nodes == (5,)

    def test_broken_chain_raises(self):
        with pytest.raises(KeyError):
            reconstruct_path({3: 2}, 1, 3, 1.0)
