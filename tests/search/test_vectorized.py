"""Tests for the batched numpy kernels and their numpy-absent gating.

The bit-identity contract (``dijkstra-vec`` vs the scalar CSR shared
trees) and the oracle parity of the engine itself are exercised by the
auto-parametrized conformance harness in ``test_engine_conformance.py``
whenever numpy is installed; this module covers what the harness cannot:
the numpy-availability boundary.  One CI matrix leg installs numpy and
runs the skip-marked half; every other leg runs the ``np = None`` half,
proving the module imports cleanly, reports itself unavailable, stays
out of the engine registry, and fails loudly — ``ImportError`` with an
actionable message, never a silent wrong answer — when its kernels are
called anyway.
"""

from __future__ import annotations

import pytest

import repro.search.vectorized as vectorized
from repro.exceptions import NoPathError
from repro.network.csr import csr_snapshot
from repro.network.generators import grid_network
from repro.search import ENGINES
from repro.search.dijkstra import dijkstra_path
from repro.search.kernels import CSRSharedTreeProcessor
from repro.search.vectorized import (
    VecSharedTreeProcessor,
    numpy_available,
    vec_batch_paths,
    vec_dijkstra_path,
    vec_snapshot,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


def test_engine_registered_iff_numpy_available():
    """The registry mirrors availability — never a dead engine entry."""
    assert ("dijkstra-vec" in ENGINES) == numpy_available()


@needs_numpy
class TestVectorizedKernels:
    """Behavior with numpy installed (one CI leg)."""

    @pytest.fixture()
    def net(self):
        return grid_network(10, 10, perturbation=0.1, seed=3)

    def test_point_matches_dijkstra_exactly(self, net):
        pairs = [(0, 99), (5, 77), (90, 9), (42, 42)]
        for s, t in pairs:
            assert (
                vec_dijkstra_path(net, s, t).distance
                == dijkstra_path(net, s, t).distance
            )

    def test_batch_matches_scalar_shared_trees_bit_identically(self, net):
        sources = [0, 33, 67]
        destinations = [99, 12, 58]
        ref = CSRSharedTreeProcessor().process(net, sources, destinations)
        got = VecSharedTreeProcessor().process(net, sources, destinations)
        assert list(got.paths) == list(ref.paths)
        for pair, path in ref.paths.items():
            assert got.paths[pair].distance == path.distance
            assert got.paths[pair].nodes == path.nodes

    def test_strict_unreachable_raises(self):
        from repro.network.graph import RoadNetwork

        net = RoadNetwork()
        for node, x in ((0, 0.0), (1, 1.0), (2, 5.0)):
            net.add_node(node, x, 0.0)
        net.add_edge(0, 1, 1.0)  # node 2 is an island
        with pytest.raises(NoPathError):
            vec_batch_paths(net, [0], [[1, 2]])
        rows = vec_batch_paths(net, [0], [[1, 2]], strict=False)
        assert list(rows[0]) == [1]  # the unreachable column is omitted

    def test_snapshot_memoized_until_mutation(self, net):
        first = vec_snapshot(net)
        assert vec_snapshot(net) is first
        u, v, w = next(net.edges())
        net.add_edge(u, v, w * 2.0)
        assert vec_snapshot(net) is not first


class TestNumpyAbsent:
    """Behavior when numpy is missing, simulated by ``np = None``."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorized, "np", None)

    def test_reports_unavailable(self, no_numpy):
        assert not vectorized.numpy_available()

    @pytest.mark.parametrize(
        "call",
        [
            lambda net: vec_snapshot(net),
            lambda net: vectorized.VecGraph(csr_snapshot(net)),
            lambda net: vec_dijkstra_path(net, 0, 8),
            lambda net: vec_batch_paths(net, [0], [[8]]),
            lambda net: VecSharedTreeProcessor().process(net, [0], [8]),
        ],
        ids=["snapshot", "vecgraph", "point", "batch", "processor"],
    )
    def test_kernels_raise_actionable_importerror(self, no_numpy, call):
        net = grid_network(3, 3, seed=1)
        with pytest.raises(ImportError, match="numpy is required"):
            call(net)

    def test_scalar_engines_unaffected(self, no_numpy):
        net = grid_network(3, 3, seed=1)
        result = CSRSharedTreeProcessor().process(net, [0], [8])
        assert result.paths[(0, 8)].distance == dijkstra_path(net, 0, 8).distance
