"""Unit tests for the CSR search kernels and the ``*-csr`` engines."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.csr import csr_snapshot
from repro.network.graph import RoadNetwork
from repro.search import ENGINES, get_engine
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.ch import ch_path, contract_network
from repro.search.dijkstra import dijkstra_path, dijkstra_to_many
from repro.search.kernels import (
    CSRHierarchy,
    CSRSharedTreeProcessor,
    ch_csr_hierarchy,
    csr_bidirectional_path,
    csr_ch_many_to_many,
    csr_ch_path,
    csr_dijkstra_path,
    csr_dijkstra_to_many,
    scratch_for,
)
from repro.search.multi import SharedTreeProcessor, get_processor
from repro.search.result import SearchStats


def _sample_pairs(net, count, seed=123):
    nodes = list(net.nodes())
    rng = random.Random(seed)
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


class TestPointKernels:
    # Oracle parity vs. Dijkstra (grid, directed, disconnected) is
    # covered for every engine by tests/search/test_engine_conformance.py;
    # this one pins the *bit-identical* accumulation of the CSR kernel.

    def test_bit_identical_distances_on_grid(self, small_grid):
        for s, t in _sample_pairs(small_grid, 10):
            ref = dijkstra_path(small_grid, s, t)
            # Same left-to-right accumulation: bit-identical distances.
            assert csr_dijkstra_path(small_grid, s, t).distance == ref.distance

    def test_paths_are_walkable(self, small_grid):
        for s, t in _sample_pairs(small_grid, 10, seed=7):
            path = csr_dijkstra_path(small_grid, s, t)
            assert path.nodes[0] == s and path.nodes[-1] == t
            total = sum(
                small_grid.edge_weight(u, v) for u, v in path.edges()
            )
            assert total == pytest.approx(path.distance)

    def test_exact_path_on_triangle(self, tiny_triangle):
        path = csr_dijkstra_path(tiny_triangle, "a", "c")
        assert path.nodes == ("a", "b", "c")
        assert path.distance == 2.0

    def test_trivial_and_errors(self, small_grid):
        assert csr_dijkstra_path(small_grid, 5, 5).nodes == (5,)
        assert csr_bidirectional_path(small_grid, 5, 5).nodes == (5,)
        with pytest.raises(UnknownNodeError):
            csr_dijkstra_path(small_grid, 5, "missing")
        with pytest.raises(UnknownNodeError):
            csr_bidirectional_path(small_grid, "missing", 5)

    def test_no_path_raises(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        with pytest.raises(NoPathError):
            csr_dijkstra_path(net, 0, 3)
        with pytest.raises(NoPathError):
            csr_bidirectional_path(net, 0, 3)

    def test_stats_settled_parity_with_dict_engine(self, small_grid):
        for s, t in _sample_pairs(small_grid, 10, seed=42):
            ref_stats, got_stats = SearchStats(), SearchStats()
            dijkstra_path(small_grid, s, t, stats=ref_stats)
            csr_dijkstra_path(small_grid, s, t, stats=got_stats)
            assert got_stats.settled_nodes == ref_stats.settled_nodes
            assert got_stats.max_settled_distance == pytest.approx(
                ref_stats.max_settled_distance
            )


class TestToMany:
    def test_matches_dict_to_many(self, small_grid):
        nodes = list(small_grid.nodes())
        rng = random.Random(3)
        for _ in range(8):
            s = rng.choice(nodes)
            targets = rng.sample(nodes, 5)
            ref = dijkstra_to_many(small_grid, s, targets)
            got = csr_dijkstra_to_many(small_grid, s, targets)
            assert set(got) == set(ref)
            for t in targets:
                assert got[t].distance == ref[t].distance

    def test_source_in_targets_is_trivial(self, small_grid):
        got = csr_dijkstra_to_many(small_grid, 8, [8, 20])
        assert got[8].nodes == (8,)
        assert got[8].distance == 0.0

    def test_strict_flag(self):
        net = RoadNetwork()
        for i in range(3):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        with pytest.raises(NoPathError):
            csr_dijkstra_to_many(net, 0, [1, 2])
        got = csr_dijkstra_to_many(net, 0, [1, 2], strict=False)
        assert set(got) == {1}


class TestCHKernels:
    def test_point_matches_dict_ch(self, small_grid):
        contracted = contract_network(small_grid)
        hierarchy = CSRHierarchy(contracted)
        for s, t in _sample_pairs(small_grid, 20, seed=5):
            ref = ch_path(contracted, s, t)
            got = csr_ch_path(hierarchy, s, t)
            assert got.distance == ref.distance
            total = sum(
                small_grid.edge_weight(u, v) for u, v in got.edges()
            )
            assert total == pytest.approx(got.distance)

    def test_many_to_many_matches_shared_trees(self, small_grid):
        hierarchy = ch_csr_hierarchy(small_grid)
        nodes = list(small_grid.nodes())
        rng = random.Random(8)
        sources = rng.sample(nodes, 3)
        destinations = rng.sample(nodes, 4)
        ref = SharedTreeProcessor().process(small_grid, sources, destinations)
        got = csr_ch_many_to_many(hierarchy, sources, destinations)
        for pair, path in ref.paths.items():
            assert got[pair].distance == pytest.approx(path.distance)

    def test_unreachable_pair_omitted_and_processor_raises(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        hierarchy = ch_csr_hierarchy(net)
        table = csr_ch_many_to_many(hierarchy, [0], [1, 3])
        assert set(table) == {(0, 1)}
        with pytest.raises(NoPathError):
            get_processor("ch-csr").process(net, [0], [1, 3])

    def test_unknown_endpoint(self, small_grid):
        hierarchy = ch_csr_hierarchy(small_grid)
        with pytest.raises(UnknownNodeError):
            csr_ch_path(hierarchy, 0, "missing")
        with pytest.raises(UnknownNodeError):
            csr_ch_many_to_many(hierarchy, [0], ["missing"])


class TestProcessorsAndEngines:
    def test_registry_contains_csr_engines(self):
        for name in ("dijkstra-csr", "bidirectional-csr", "ch-csr"):
            engine = get_engine(name)
            assert engine.name == name
            assert ENGINES[name] is engine

    # Engine-route oracle parity is covered for every registered engine
    # by tests/search/test_engine_conformance.py.

    def test_shared_tree_processor_parity(self, small_grid):
        nodes = list(small_grid.nodes())
        rng = random.Random(10)
        sources = rng.sample(nodes, 3)
        destinations = rng.sample(nodes, 3)
        ref = SharedTreeProcessor().process(small_grid, sources, destinations)
        got = get_processor("dijkstra-csr").process(
            small_grid, sources, destinations
        )
        assert set(got.paths) == set(ref.paths)
        for pair, path in ref.paths.items():
            assert got.paths[pair].distance == path.distance
        assert got.stats.settled_nodes == ref.stats.settled_nodes
        assert got.searches == ref.searches

    def test_bidirectional_processor_matches_dict(self, small_grid):
        nodes = list(small_grid.nodes())
        rng = random.Random(11)
        sources = rng.sample(nodes, 2)
        destinations = rng.sample(nodes, 3)
        got = get_processor("bidirectional-csr").process(
            small_grid, sources, destinations
        )
        for (s, t), path in got.paths.items():
            ref = bidirectional_dijkstra_path(small_grid, s, t)
            assert path.distance == ref.distance

    @pytest.mark.parametrize("engine", ["dijkstra-csr", "ch-csr"])
    def test_end_to_end_through_opaque_system(self, small_grid, engine):
        system = OpaqueSystem(small_grid, engine=engine)
        baseline = OpaqueSystem(small_grid, engine="dijkstra")
        request = ClientRequest(
            "u1", PathQuery(3, 77), ProtectionSetting(3, 3)
        )
        got = system.submit([request])["u1"]
        ref = baseline.submit([request])["u1"]
        assert got.distance == pytest.approx(ref.distance)

    def test_processor_artifact_injection(self, small_grid):
        processor = CSRSharedTreeProcessor()
        snapshot = csr_snapshot(small_grid)
        processor.use_artifact(snapshot)
        out = processor.process(small_grid, [0], [50])
        assert out.paths[(0, 50)].distance == pytest.approx(
            dijkstra_path(small_grid, 0, 50).distance
        )


class TestScratchPool:
    def test_reused_within_thread(self):
        assert scratch_for(64) is scratch_for(64)
        assert scratch_for(64) is not scratch_for(128)

    def test_distinct_across_threads(self):
        mine = scratch_for(32)
        other = []
        thread = threading.Thread(target=lambda: other.append(scratch_for(32)))
        thread.start()
        thread.join()
        assert other[0] is not mine

    def test_generation_isolates_queries(self, small_grid):
        # Two back-to-back queries over the same scratch must not leak
        # state: run interleaved directions and re-check distances.
        pairs = _sample_pairs(small_grid, 6, seed=13)
        expected = [dijkstra_path(small_grid, s, t).distance for s, t in pairs]
        got = [csr_dijkstra_path(small_grid, s, t).distance for s, t in pairs]
        again = [csr_dijkstra_path(small_grid, t, s).distance for s, t in pairs]
        assert got == expected
        # Undirected network: reverse distances match (ulp-equal — the
        # reverse walk sums the same weights in the opposite order).
        assert again == pytest.approx(expected, rel=1e-12)

    def test_concurrent_queries_are_correct(self, medium_grid):
        pairs = _sample_pairs(medium_grid, 12, seed=14)
        expected = {
            pair: dijkstra_path(medium_grid, *pair).distance for pair in pairs
        }
        results: dict = {}
        errors: list = []

        def worker(chunk):
            try:
                for pair in chunk:
                    results[pair] = csr_dijkstra_path(
                        medium_grid, *pair
                    ).distance
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(pairs[i::3],))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == expected
