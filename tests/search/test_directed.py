"""One-way street (directed network) support across the search stack.

All engines and processors are cross-checked on the alternating one-way
grid against a ``networkx.DiGraph`` oracle, and the full OPAQUE pipeline
is exercised end to end on directed maps.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.network.generators import one_way_grid_network
from repro.search.alt import LandmarkIndex
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import (
    NaivePairwiseProcessor,
    SharedTreeProcessor,
    SideSelectingProcessor,
)


@pytest.fixture(scope="module")
def one_way():
    net = one_way_grid_network(12, 12, perturbation=0.05, seed=701)
    return net, net.to_networkx()


@pytest.fixture(scope="module")
def pairs(one_way):
    net, _g = one_way
    rng = random.Random(9)
    nodes = list(net.nodes())
    return [tuple(rng.sample(nodes, 2)) for _ in range(25)]


class TestGenerator:
    def test_strongly_connected(self, one_way):
        net, _g = one_way
        assert net.directed
        assert net.is_strongly_connected()

    @pytest.mark.parametrize("width,height", [(2, 2), (3, 5), (8, 8)])
    def test_various_sizes_strongly_connected(self, width, height):
        assert one_way_grid_network(width, height).is_strongly_connected()

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            one_way_grid_network(1, 5)

    def test_one_way_streets_exist(self, one_way):
        net, _g = one_way
        asymmetric = sum(
            1
            for u, v, _w in net.edges()
            if not net.has_edge(v, u)
        )
        assert asymmetric > 0

    def test_asymmetric_travel_times(self, one_way):
        """Somewhere in a one-way grid, the round trip is not symmetric."""
        net, _g = one_way
        nodes = list(net.nodes())
        found = False
        for s, t in ((nodes[1], nodes[30]), (nodes[5], nodes[77]), (nodes[13], nodes[50])):
            forward = dijkstra_path(net, s, t).distance
            backward = dijkstra_path(net, t, s).distance
            if abs(forward - backward) > 1e-9:
                found = True
                break
        assert found


class TestEnginesOnDirected:
    # Per-engine oracle parity on directed networks is covered by
    # tests/search/test_engine_conformance.py; this anchor validates the
    # Dijkstra oracle itself against networkx on one-way streets.

    def test_dijkstra_matches_oracle(self, one_way, pairs):
        net, g = one_way
        for s, t in pairs:
            ours = dijkstra_path(net, s, t).distance
            theirs = nx.shortest_path_length(g, s, t, weight="weight")
            assert ours == pytest.approx(theirs)

    def test_bidirectional_paths_follow_one_ways(self, one_way, pairs):
        net, _g = one_way
        for s, t in pairs[:10]:
            path = bidirectional_dijkstra_path(net, s, t)
            for u, v in path.edges():
                assert net.has_edge(u, v), "path uses a street the wrong way"

    def test_alt_heuristic_admissible_on_directed(self, one_way, pairs):
        net, _g = one_way
        index = LandmarkIndex(net, num_landmarks=4)
        for s, t in pairs[:10]:
            h = index.heuristic_for(t)
            assert h(s) <= dijkstra_path(net, s, t).distance + 1e-9


class TestProcessorsOnDirected:
    @pytest.mark.parametrize(
        "processor",
        [
            NaivePairwiseProcessor(),
            NaivePairwiseProcessor(engine="bidirectional"),
            SharedTreeProcessor(),
            SideSelectingProcessor(),
        ],
        ids=["naive", "naive-bidir", "shared", "side-selecting"],
    )
    def test_processor_matches_oracle(self, one_way, processor):
        net, g = one_way
        nodes = list(net.nodes())
        sources = nodes[3:8]
        destinations = nodes[100:102]  # |T| < |S| exercises side selection
        result = processor.process(net, sources, destinations)
        for (s, t), path in result.paths.items():
            theirs = nx.shortest_path_length(g, s, t, weight="weight")
            assert path.distance == pytest.approx(theirs)
            for u, v in path.edges():
                assert net.has_edge(u, v)

    def test_side_selection_grows_from_destinations(self, one_way):
        net, _g = one_way
        nodes = list(net.nodes())
        result = SideSelectingProcessor().process(net, nodes[:6], nodes[50:52])
        assert result.searches == 2


class TestOpaqueOnDirected:
    def test_full_pipeline_on_one_way_city(self, one_way):
        net, _g = one_way
        nodes = list(net.nodes())
        requests = [
            ClientRequest("alice", PathQuery(nodes[5], nodes[120]),
                          ProtectionSetting(3, 3)),
            ClientRequest("bob", PathQuery(nodes[17], nodes[99]),
                          ProtectionSetting(2, 4)),
        ]
        for mode in ("independent", "shared"):
            system = OpaqueSystem(net, mode=mode, seed=3)
            results = system.submit(requests)
            for request in requests:
                truth = dijkstra_path(
                    net, request.query.source, request.query.destination
                )
                got = results[request.user]
                assert got.distance == pytest.approx(truth.distance)
                for u, v in got.edges():
                    assert net.has_edge(u, v)
