"""Engine-conformance harness: every registered engine vs. the oracle.

One hypothesis-driven differential suite auto-parametrized over every
entry in :data:`repro.search.ENGINES`, so a newly registered engine gets
parity coverage for free — no per-engine oracle test to copy-paste.
Three contracts are locked down on random directed, disconnected, and
multi-component networks:

* **point queries** — ``engine.route`` returns the oracle's distance
  over a walkable path, or raises :class:`NoPathError` exactly when the
  oracle does;
* **MSMD batches** — ``engine.make_processor().process`` answers every
  ``S x T`` pair with the oracle's distance in wire order, or raises
  :class:`NoPathError` when the oracle finds an unreachable pair;
* **union passes** — ``process_union`` over any batch of set queries
  slices back tables byte-identical (pairs, order, nodes, distances) to
  solo ``process`` calls, matching errors per query and never counting
  shared work twice — the exactness invariant the serving layer's
  :class:`~repro.service.serving.QueryCoalescer` is built on.

The oracle is plain Dijkstra, itself cross-checked against networkx in
``tests/search/test_dijkstra.py``.  Engines whose correctness rests on
an admissible Euclidean heuristic (``_METRIC_ONLY``, today just
``astar`` — see the inadmissibility caveat in
:data:`repro.search.ENGINES`) are fed Euclidean-consistent weights
(``weight >= straight-line distance``); every other engine is also
exercised on arbitrary positive weights, the harsher input space.  A
future heuristic engine must add itself to ``_METRIC_ONLY``; everything
else conforms (or fails) with zero new test code.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError, ReproError
from repro.network.graph import RoadNetwork
from repro.search import ENGINES, get_engine
from repro.search.dijkstra import dijkstra_path

ENGINE_NAMES = sorted(ENGINES)

#: engines only exact on Euclidean-consistent weights (admissible h)
_METRIC_ONLY = {"astar"}


def _add_edge(net: RoadNetwork, rng: random.Random, u, v, metric: bool) -> None:
    if u == v or net.has_edge(u, v):
        return
    if metric:
        weight = net.euclidean_distance(u, v) * rng.uniform(1.0, 2.0) + 1e-9
    else:
        weight = rng.uniform(0.1, 5.0)
    net.add_edge(u, v, weight)


@st.composite
def conformance_networks(draw, metric, min_nodes=2, max_nodes=18):
    """Random weighted network — possibly directed, possibly disconnected."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    density = draw(st.floats(min_value=0.3, max_value=3.0))
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    for node in range(n):
        net.add_node(node, rng.uniform(0, 10), rng.uniform(0, 10))
    for _ in range(int(density * n)):
        _add_edge(net, rng, rng.randrange(n), rng.randrange(n), metric)
    return net


@st.composite
def multi_component_networks(draw, metric):
    """2-3 separately connected islands with no edges between them."""
    num_components = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    node = 0
    for island in range(num_components):
        size = draw(st.integers(min_value=2, max_value=6))
        offset = island * 100.0  # islands never overlap geometrically
        members = []
        for _ in range(size):
            net.add_node(node, offset + rng.uniform(0, 10), rng.uniform(0, 10))
            members.append(node)
            node += 1
        for current in members[1:]:  # spanning tree: island is connected
            anchor = rng.choice(members[: members.index(current)])
            _add_edge(net, rng, current, anchor, metric)
            if directed:
                _add_edge(net, rng, anchor, current, metric)
        for _ in range(size):
            _add_edge(
                net, rng, rng.choice(members), rng.choice(members), metric
            )
    return net


def _networks_for(name: str):
    """The network strategy an engine is held to.

    Metric weights for heuristic engines; metric *or* arbitrary
    positive weights for everything else.
    """
    metric_choices = [True] if name in _METRIC_ONLY else [True, False]
    return st.booleans().flatmap(
        lambda multi: st.sampled_from(metric_choices).flatmap(
            lambda metric: (
                multi_component_networks(metric)
                if multi
                else conformance_networks(metric)
            )
        )
    )


def _oracle_distance(net, s, t):
    try:
        return dijkstra_path(net, s, t).distance
    except NoPathError:
        return None


def _assert_walkable(net, path) -> None:
    total = 0.0
    for u, v in path.edges():
        assert net.has_edge(u, v), "path uses a missing (or one-way) edge"
        total += net.edge_weight(u, v)
    assert abs(total - path.distance) < 1e-9


@pytest.mark.parametrize("name", ENGINE_NAMES)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_point_queries_conform(name, data):
    """route() matches the oracle's distance/reachability on every pair."""
    net = data.draw(_networks_for(name))
    engine = get_engine(name)
    context = engine.prepare(net)
    nodes = list(net.nodes())
    for _ in range(4):
        s = data.draw(st.sampled_from(nodes))
        t = data.draw(st.sampled_from(nodes))
        expected = _oracle_distance(net, s, t)
        if expected is None:
            with pytest.raises(NoPathError):
                engine.route(net, s, t, context=context)
            continue
        path = engine.route(net, s, t, context=context)
        assert abs(path.distance - expected) < 1e-9
        assert path.nodes[0] == s and path.nodes[-1] == t
        _assert_walkable(net, path)


@pytest.mark.parametrize("name", ENGINE_NAMES)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_msmd_batches_conform(name, data):
    """process() answers S x T in wire order with oracle distances."""
    net = data.draw(_networks_for(name))
    engine = get_engine(name)
    processor = engine.make_processor()
    nodes = list(net.nodes())
    sources = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True)
    )
    destinations = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True)
    )
    expected = {
        (s, t): _oracle_distance(net, s, t)
        for s in sources
        for t in destinations
    }
    if any(distance is None for distance in expected.values()):
        with pytest.raises(NoPathError):
            processor.process(net, sources, destinations)
        return
    result = processor.process(net, sources, destinations)
    assert list(result.paths) == [
        (s, t) for s in sources for t in destinations
    ], "pair table must be in the query's own wire order"
    for pair, path in result.paths.items():
        assert abs(path.distance - expected[pair]) < 1e-9
        _assert_walkable(net, path)


@pytest.mark.parametrize("name", ENGINE_NAMES)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_union_passes_conform(name, data):
    """process_union() slices back exactly what solo process() returns."""
    net = data.draw(_networks_for(name))
    engine = get_engine(name)
    nodes = list(net.nodes())
    set_queries = data.draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.sampled_from(nodes), min_size=1, max_size=3, unique=True
                ),
                st.lists(
                    st.sampled_from(nodes), min_size=1, max_size=3, unique=True
                ),
            ),
            min_size=1,
            max_size=4,
        )
    )
    union = engine.make_processor().process_union(net, set_queries)
    assert len(union.tables) == len(set_queries)
    solo_processor = engine.make_processor()
    settled_total = 0
    for (sources, destinations), table, error in zip(
        set_queries, union.tables, union.errors
    ):
        try:
            solo = solo_processor.process(net, list(sources), list(destinations))
        except ReproError as solo_error:
            assert table is None
            assert type(error) is type(solo_error)
            continue
        assert error is None
        assert list(table.paths) == list(solo.paths)
        for pair, solo_path in solo.paths.items():
            assert table.paths[pair].nodes == solo_path.nodes
            assert table.paths[pair].distance == solo_path.distance
        settled_total += table.stats.settled_nodes
    # Shared work is attributed exactly once across the sliced tables
    # (when every query fails there is no table left to carry it).
    if any(error is None for error in union.errors):
        assert settled_total == union.union_stats.settled_nodes
    else:
        assert settled_total == 0


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_trace_settled_counts_match_server_counters(name):
    """Trace-based regression check: every engine's span tree agrees
    with the existing load counters.

    Serves a batch of distinct obfuscated queries through a traced
    :class:`~repro.service.serving.ServingStack` and asserts that the
    ``settled_nodes`` attributes of the ``engine.process`` spans sum to
    exactly ``server.counters.stats.settled_nodes`` — the two
    accounting paths (per-result stats merged by ``_account`` vs. span
    attributes stamped on worker threads) can never drift apart without
    this failing for the drifting engine.
    """
    from repro.core.query import ObfuscatedPathQuery
    from repro.obs.trace import Tracer
    from repro.service.serving import ServingConfig, ServingStack

    # Euclidean-consistent weights (the harness's metric convention)
    # keep the heuristic engines exact alongside everything else, and
    # the jitter avoids the all-ties weight landscape.
    rng = random.Random(4)
    net = RoadNetwork()
    side = 6
    for i in range(side * side):
        net.add_node(i, float(i % side), float(i // side))
    for i in range(side * side):
        if i % side != side - 1:
            _add_edge(net, rng, i, i + 1, metric=True)
        if i + side < side * side:
            _add_edge(net, rng, i, i + side, metric=True)
    nodes = sorted(net.nodes())
    queries = [
        ObfuscatedPathQuery(
            tuple(rng.sample(nodes, 2)), tuple(rng.sample(nodes, 2))
        )
        for _ in range(6)
    ]
    assert len({(q.sources, q.destinations) for q in queries}) == len(queries)

    tracer = Tracer()
    with ServingStack.from_config(
        net,
        ServingConfig(engine=name, max_workers=2),
        tracer=tracer,
    ) as stack:
        stack.answer_batch(queries)
    spans = [
        span
        for root in tracer.roots
        for span in root.walk()
        if span.name == "engine.process"
    ]
    assert len(spans) == len(queries)
    traced_settled = sum(span.attrs["settled_nodes"] for span in spans)
    assert traced_settled == stack.server.counters.stats.settled_nodes
