"""Unit tests for repro.search.cost_model (Lemma 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.network.generators import grid_network
from repro.search.cost_model import (
    lemma1_cost_estimate,
    naive_cost_estimate,
    point_query_cost_estimate,
)
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats


@pytest.fixture(scope="module")
def net():
    return grid_network(20, 20, perturbation=0.05, seed=61)


class TestPointEstimate:
    def test_quadratic_in_distance(self):
        assert point_query_cost_estimate(4.0) == 16.0
        assert point_query_cost_estimate(0.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            point_query_cost_estimate(-1.0)


class TestLemma1Estimate:
    def test_single_pair_equals_point_estimate(self, net):
        nodes = list(net.nodes())
        s, t = nodes[0], nodes[-1]
        d = dijkstra_path(net, s, t).distance
        estimate = lemma1_cost_estimate(net, [s], [t])
        assert estimate == pytest.approx(d * d)

    def test_sums_over_sources(self, net):
        nodes = list(net.nodes())
        sources = [nodes[0], nodes[5]]
        destinations = [nodes[-1]]
        total = lemma1_cost_estimate(net, sources, destinations)
        individual = sum(
            lemma1_cost_estimate(net, [s], destinations) for s in sources
        )
        assert total == pytest.approx(individual)

    def test_max_over_destinations(self, net):
        """Adding a nearer destination must not change the estimate."""
        nodes = list(net.nodes())
        s = nodes[0]
        far = nodes[-1]
        near = nodes[1]
        only_far = lemma1_cost_estimate(net, [s], [far])
        both = lemma1_cost_estimate(net, [s], [far, near])
        assert both == pytest.approx(only_far)

    def test_euclidean_proxy_lower_bounds_network(self, net):
        nodes = list(net.nodes())
        sources, destinations = [nodes[0], nodes[7]], [nodes[-1], nodes[-8]]
        proxy = lemma1_cost_estimate(
            net, sources, destinations, use_network_distance=False
        )
        exact = lemma1_cost_estimate(net, sources, destinations)
        assert proxy <= exact + 1e-9

    def test_empty_sets_rejected(self, net):
        with pytest.raises(QueryError):
            lemma1_cost_estimate(net, [], [next(net.nodes())])
        with pytest.raises(QueryError):
            naive_cost_estimate(net, [next(net.nodes())], [])


class TestNaiveEstimate:
    def test_naive_at_least_lemma1(self, net):
        nodes = list(net.nodes())
        sources = [nodes[0], nodes[9]]
        destinations = [nodes[-1], nodes[-10], nodes[200]]
        naive = naive_cost_estimate(net, sources, destinations)
        shared = lemma1_cost_estimate(net, sources, destinations)
        assert naive >= shared - 1e-9

    def test_naive_single_pair_equals_lemma1(self, net):
        nodes = list(net.nodes())
        s, t = nodes[0], nodes[-1]
        assert naive_cost_estimate(net, [s], [t]) == pytest.approx(
            lemma1_cost_estimate(net, [s], [t])
        )


class TestModelTracksMeasurement:
    def test_estimate_correlates_with_settled_nodes(self, net):
        """Larger Lemma 1 estimates must correspond to more settled nodes
        (rank correlation over a spread of query radii)."""
        nodes = list(net.nodes())
        pairs = [(nodes[0], nodes[21]), (nodes[0], nodes[210]), (nodes[0], nodes[-1])]
        estimates = []
        measured = []
        for s, t in pairs:
            estimates.append(lemma1_cost_estimate(net, [s], [t]))
            stats = SearchStats()
            dijkstra_path(net, s, t, stats=stats)
            measured.append(stats.settled_nodes)
        assert sorted(range(3), key=lambda i: estimates[i]) == sorted(
            range(3), key=lambda i: measured[i]
        )
