"""Tests for explicit-context span trees, JSONL export, slow-query log."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    SLOW_QUERY_LOGGER,
    JSONLogFormatter,
    NullTracer,
    Span,
    Tracer,
)


class SteppingClock:
    """Deterministic clock advancing by a fixed step per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanTrees:
    def test_parenting_and_walk(self):
        tracer = Tracer(clock=SteppingClock())
        with tracer.span("root", batch_size=2) as root:
            with tracer.span("child_a", parent=root) as child_a:
                with tracer.span("leaf", parent=child_a):
                    pass
            with tracer.span("child_b", parent=root):
                pass
        assert len(tracer.roots) == 1
        tree = tracer.roots[0]
        assert [s.name for s in tree.walk()] == [
            "root", "child_a", "leaf", "child_b",
        ]
        assert tree.attrs == {"batch_size": 2}
        assert all(c.parent_id == tree.span_id for c in tree.children)

    def test_injected_clock_gives_exact_durations(self):
        tracer = Tracer(clock=SteppingClock(step=1.0))
        with tracer.span("only"):
            pass
        span = tracer.roots[0]
        assert span.start == 0.0
        assert span.duration == 1.0

    def test_open_span_has_zero_duration(self):
        span = Span("open", 1, None)
        assert span.duration == 0.0

    def test_forbidden_attribute_keys_rejected(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with pytest.raises(ValueError):
                root.set("sources", (1, 2, 3))
            with pytest.raises(ValueError):
                root.set("node_id", 7)
        with pytest.raises(ValueError):
            with tracer.span("bad", destinations=(4,)):
                pass
        # Counts and cell ids are the sanctioned vocabulary.
        with tracer.span("ok", num_sources=3, cell=2):
            pass

    def test_max_roots_cap_counts_drops(self):
        tracer = Tracer(max_roots=2)
        for _ in range(4):
            with tracer.span("r"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped == 2
        tracer.reset()
        assert tracer.roots == []
        assert tracer.dropped == 0

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(clock=SteppingClock())
        with tracer.span("root", engine="ch") as root:
            with tracer.span("child", parent=root, settled_nodes=5):
                pass
        with tracer.span("second"):
            pass
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 2
        doc = json.loads(lines[0])
        assert doc["name"] == "root"
        assert doc["attrs"] == {"engine": "ch"}
        assert doc["children"][0]["attrs"] == {"settled_nodes": 5}
        out = tmp_path / "traces.jsonl"
        assert tracer.write_jsonl(out) == 2
        assert out.read_text(encoding="utf-8").splitlines() == lines


class TestSlowQueryLog:
    def test_slow_roots_logged_as_json(self, capsys):
        handler = logging.StreamHandler()
        handler.setFormatter(JSONLogFormatter())
        logger = logging.getLogger(SLOW_QUERY_LOGGER)
        logger.addHandler(handler)
        try:
            tracer = Tracer(clock=SteppingClock(), slow_threshold_s=0.5)
            with tracer.span("slow_root", batch_size=3):
                pass
        finally:
            logger.removeHandler(handler)
        doc = json.loads(capsys.readouterr().err.strip())
        assert doc["logger"] == SLOW_QUERY_LOGGER
        assert "slow_root" in doc["message"]
        assert doc["span"]["attrs"] == {"batch_size": 3}

    def test_fast_roots_not_logged(self, capsys):
        handler = logging.StreamHandler()
        handler.setFormatter(JSONLogFormatter())
        logger = logging.getLogger(SLOW_QUERY_LOGGER)
        logger.addHandler(handler)
        try:
            tracer = Tracer(clock=SteppingClock(), slow_threshold_s=10.0)
            with tracer.span("fast_root"):
                pass
        finally:
            logger.removeHandler(handler)
        assert capsys.readouterr().err == ""

    def test_formatter_without_span(self):
        record = logging.LogRecord(
            "any", logging.INFO, __file__, 1, "hello %s", ("there",), None
        )
        doc = json.loads(JSONLogFormatter().format(record))
        assert doc == {"level": "INFO", "logger": "any", "message": "hello there"}


class TestNullTracer:
    def test_no_recording_but_same_shape(self):
        tracer = NullTracer()
        with tracer.span("anything", batch_size=4) as span:
            span.set("settled_nodes", 9)
            with tracer.span("child", parent=span) as child:
                assert child is span  # one shared no-op span
        assert not hasattr(tracer, "roots")

    def test_still_refuses_forbidden_keys(self):
        with NULL_TRACER.span("x") as span:
            with pytest.raises(ValueError):
                span.set("query", object())

    def test_shared_instance_exists(self):
        assert isinstance(NULL_TRACER, NullTracer)
