"""Leak test: no serialized telemetry surface may carry node ids.

Builds a road network whose node ids are distinctive 7-digit numbers
(never produced by counting settled nodes on a 16-node graph), runs an
obfuscated workload through a fully instrumented serving stack — shared
metrics registry, tracer with a zero slow-query threshold, recording
``MetricsRecorder`` — and then scans every serialized output (metrics
JSON, Prometheus text, trace JSONL, slow-query log lines) for every
node id: the true endpoints, the decoys, everything.  This is the
enforcement end of the redaction invariant documented in
``repro/obs/__init__.py``: telemetry carries set sizes, counts and cell
ids — never what obfuscation hides.
"""

from __future__ import annotations

import logging
import random

import pytest

from repro.core.query import ObfuscatedPathQuery
from repro.network.graph import RoadNetwork
from repro.obs import JSONLogFormatter, MetricsRecorder, Tracer, recording
from repro.obs.trace import SLOW_QUERY_LOGGER
from repro.service.serving import ServingConfig, ServingStack

#: node ids no aggregate count on this graph can coincidentally equal
_IDS = [9100001 + i for i in range(16)]


@pytest.fixture()
def marked_network() -> RoadNetwork:
    """4x4 grid whose node ids are distinctive 7-digit markers."""
    net = RoadNetwork()
    for i, node in enumerate(_IDS):
        net.add_node(node, float(i % 4), float(i // 4))
    for i in range(16):
        if i % 4 != 3:
            net.add_edge(_IDS[i], _IDS[i + 1], 1.0)
        if i < 12:
            net.add_edge(_IDS[i], _IDS[i + 4], 1.0)
    return net


def _instrumented_run(network: RoadNetwork) -> list[str]:
    """Run an obfuscated workload; return every serialized telemetry text."""
    rng = random.Random(11)
    queries = [
        ObfuscatedPathQuery(
            tuple(rng.sample(_IDS, 3)), tuple(rng.sample(_IDS, 3))
        )
        for _ in range(4)
    ]

    class CapturingHandler(logging.Handler):
        def __init__(self):
            super().__init__()
            self.lines: list[str] = []
            self.setFormatter(JSONLogFormatter())

        def emit(self, record):
            self.lines.append(self.format(record))

    handler = CapturingHandler()
    logger = logging.getLogger(SLOW_QUERY_LOGGER)
    logger.addHandler(handler)
    tracer = Tracer(slow_threshold_s=0.0)  # every root is "slow"
    try:
        with ServingStack.from_config(
            network,
            ServingConfig(engine="dijkstra", max_workers=2),
            tracer=tracer,
        ) as stack:
            with recording(MetricsRecorder(stack.metrics)):
                stack.answer_batch(queries)
                stack.answer_batch(queries)  # warm pass: cache-hit spans
    finally:
        logger.removeHandler(handler)
    return [
        stack.metrics.to_json(),
        stack.metrics.to_prometheus(),
        tracer.export_jsonl(),
        "\n".join(handler.lines),
    ]


class TestTelemetryNeverLeaksEndpoints:
    def test_no_serialized_surface_contains_node_ids(self, marked_network):
        surfaces = _instrumented_run(marked_network)
        assert any(surfaces), "instrumented run produced no telemetry"
        for surface in surfaces:
            for node in _IDS:
                assert str(node) not in surface, (
                    f"telemetry output leaked node id {node}: "
                    f"{surface[:400]}..."
                )

    def test_surfaces_still_carry_aggregates(self, marked_network):
        metrics_json, _, traces, slow_log = _instrumented_run(marked_network)
        assert "repro_server_queries_served_total" in metrics_json
        assert "num_sources" in traces
        assert "settled_nodes" in traces
        assert "serve.answer_batch" in slow_log

    def test_pipeline_install_spans_carry_only_counts(self, marked_network):
        """Traffic events name edges by node id; their install spans and
        the ``repro_pipeline_*`` instruments must only ever export
        counts (events, edges, cells, epochs) — never the ids."""
        from repro.service.pipeline import TrafficPipeline
        from repro.workloads.replay import TrafficEvent

        tracer = Tracer()
        with ServingStack.from_config(
            marked_network,
            ServingConfig(engine="overlay-csr", max_workers=2),
            tracer=tracer,
        ) as stack:
            stack.warm()
            pipeline = TrafficPipeline(stack, debounce_ms=0.0)
            for u, v, w in list(marked_network.edges())[:6]:
                pipeline.publish(TrafficEvent(u, v, w * 2.0))
                pipeline.pump()
            surfaces = [
                stack.metrics.to_json(),
                stack.metrics.to_prometheus(),
                tracer.export_jsonl(),
            ]
        installs = [r for r in tracer.roots if r.name == "pipeline.install"]
        assert installs, "publishing traffic produced no install spans"
        assert "repro_pipeline_installs_total" in surfaces[0]
        for surface in surfaces:
            for node in _IDS:
                assert str(node) not in surface, (
                    f"pipeline telemetry leaked node id {node}"
                )


class TestGatewayNeverLeaksEndpoints:
    """HTTP boundary end of the invariant: access logs, the metrics
    endpoint and error bodies must never carry node ids — only the 200
    route payload itself (the client's own answer) may."""

    def _run_gateway_surfaces(self, network):
        import http.client
        import json

        from repro.service.gateway import (
            ACCESS_LOGGER,
            API_PREFIX,
            GatewayServer,
        )

        island = 9100099  # reachable by no edge; same 7-digit marker family
        network.add_node(island, 99.0, 99.0)

        class CapturingHandler(logging.Handler):
            def __init__(self):
                super().__init__()
                self.lines: list[str] = []

            def emit(self, record):
                self.lines.append(record.getMessage())

        handler = CapturingHandler()
        access = logging.getLogger(ACCESS_LOGGER)
        access.addHandler(handler)
        previous_level = access.level
        access.setLevel(logging.INFO)
        error_bodies: list[str] = []
        try:
            with GatewayServer(
                network, ServingConfig(engine="dijkstra")
            ) as server:
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=30
                )

                def call(method, path, doc=None):
                    body = None if doc is None else json.dumps(doc)
                    conn.request(method, path, body=body)
                    response = conn.getresponse()
                    return response.status, response.read().decode()

                status, _ = call(
                    "POST",
                    f"{API_PREFIX}/route",
                    {"sources": _IDS[:2], "destinations": _IDS[-2:]},
                )
                assert status == 200
                for method, path, doc in [
                    # duplicate endpoints: core QueryError names the id
                    ("POST", f"{API_PREFIX}/route",
                     {"sources": [_IDS[0], _IDS[0]],
                      "destinations": [_IDS[1]]}),
                    # unreachable endpoint: NoPathError names both ids
                    ("POST", f"{API_PREFIX}/route",
                     {"sources": [_IDS[0]], "destinations": [island]}),
                    # unknown field whose *value* is an endpoint list
                    ("POST", f"{API_PREFIX}/route",
                     {"sources": [_IDS[0]], "destinations": [_IDS[1]],
                      "waypoints": _IDS[2:4]}),
                    ("GET", f"{API_PREFIX}/nope", None),
                ]:
                    status, body = call(method, path, doc)
                    assert status >= 400
                    error_bodies.append(body)
                status, metrics_body = call("GET", f"{API_PREFIX}/metrics")
                assert status == 200
                conn.close()
        finally:
            access.removeHandler(handler)
            access.setLevel(previous_level)
        assert handler.lines, "gateway produced no access-log lines"
        return handler.lines, error_bodies, metrics_body, island

    def test_access_log_errors_and_metrics_are_clean(self, marked_network):
        lines, errors, metrics_body, island = self._run_gateway_surfaces(
            marked_network
        )
        surfaces = ["\n".join(lines), "\n".join(errors), metrics_body]
        for surface in surfaces:
            for node in [*_IDS, island]:
                assert str(node) not in surface, (
                    f"gateway surface leaked node id {node}: "
                    f"{surface[:400]}..."
                )

    def test_access_log_lines_are_structured_and_useful(self, marked_network):
        import json

        lines, _errors, _metrics, _island = self._run_gateway_surfaces(
            marked_network
        )
        docs = [json.loads(line) for line in lines]
        assert {doc["route"] for doc in docs} >= {"route", "metrics"}
        for doc in docs:
            assert set(doc) == {
                "request_id", "method", "route", "status", "duration_ms",
            }
