"""Tests for the thread-sharded metrics registry."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    sanitize_metric_name,
)


class TestCounter:
    def test_increments_merge(self):
        counter = Counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_integer_increments_stay_integers(self):
        counter = Counter("repro_test_total")
        counter.inc(2)
        assert counter.value == 2
        assert isinstance(counter.value, int)

    def test_negative_increment_rejected(self):
        counter = Counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("repro_test_total")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("has spaces")
        with pytest.raises(ValueError):
            Counter("has-dashes")


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("repro_test_gauge")
        assert gauge.value == 0
        gauge.set(3.5)
        assert gauge.value == 3.5
        gauge.inc(-1.5)
        assert gauge.value == 2.0

    def test_set_max_keeps_maximum(self):
        gauge = Gauge("repro_test_gauge")
        gauge.set_max(4)
        gauge.set_max(2)
        assert gauge.value == 4
        gauge.set_max(9)
        assert gauge.value == 9


class TestHistogram:
    def test_observations_and_cumulative_buckets(self):
        hist = Histogram("repro_test_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(105.0)
        assert hist.bucket_counts() == [
            (1.0, 1),
            (2.0, 2),
            (4.0, 3),
            (float("inf"), 4),
        ]

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("repro_test_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_test_seconds", buckets=(2.0, 1.0))

    def test_quantile_reports_bucket_upper_bounds(self):
        hist = Histogram("repro_test_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        assert hist.quantile(0.0) == 1.0  # rank clamps to the first sample
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 4.0

    def test_quantile_clamps_overflow_to_last_finite_bound(self):
        hist = Histogram("repro_test_seconds", buckets=(1.0, 2.0))
        hist.observe(50.0)  # lands in the +Inf bucket
        assert hist.quantile(0.99) == 2.0

    def test_quantile_empty_and_invalid(self):
        hist = Histogram("repro_test_seconds", buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_a_total")
        b = registry.counter("repro_a_total")
        assert a is b
        assert "repro_a_total" in registry
        assert "repro_b_total" not in registry

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_a_total")
        with pytest.raises(ValueError):
            registry.histogram("repro_a_total")

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_a_total")
        counter.inc(3)
        registry.reset()
        assert registry.counter("repro_a_total") is counter
        assert counter.value == 0

    def test_json_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", desc="a counter").inc(2)
        registry.gauge("repro_g").set(1.5)
        registry.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5)
        doc = json.loads(registry.to_json())
        assert doc["schema"] == 1
        metrics = doc["metrics"]
        assert metrics["repro_a_total"] == {
            "type": "counter", "value": 2, "desc": "a counter",
        }
        assert metrics["repro_g"]["value"] == 1.5
        hist = metrics["repro_h_seconds"]
        assert hist["count"] == 1
        assert hist["buckets"][-1][0] == "+Inf"

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", desc="a counter").inc(2)
        registry.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP repro_a_total a counter" in text
        assert "# TYPE repro_a_total counter" in text
        assert "repro_a_total 2" in text
        assert 'repro_h_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_h_seconds_count 1" in text


class TestSanitizeName:
    def test_replaces_illegal_characters(self):
        assert sanitize_metric_name("overlay.route") == "overlay_route"
        assert sanitize_metric_name("ch-query") == "ch_query"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestThreadExactness:
    """Per-thread shards must merge to exact totals under contention."""

    def test_counter_exact_across_raw_threads(self):
        counter = Counter("repro_test_total")
        per_thread, n_threads = 10_000, 8
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == per_thread * n_threads

    def test_histogram_exact_under_dispatcher_load(self, small_grid):
        """Satellite: histogram shards merge exactly when observed from
        :class:`~repro.service.serving.ConcurrentDispatcher` workers."""
        from repro.search import get_engine
        from repro.service.serving import ConcurrentDispatcher

        hist = Histogram("repro_test_settled", buckets=(10.0, 100.0, 1000.0))

        class ObservingHandle:
            """Engine handle that observes each result's settled count."""

            def __init__(self):
                self._inner = get_engine("dijkstra").make_processor()

            def process(self, network, sources, destinations):
                result = self._inner.process(network, sources, destinations)
                hist.observe(result.stats.settled_nodes)
                return result

        import random

        from repro.core.query import ObfuscatedPathQuery

        nodes = sorted(small_grid.nodes())
        rng = random.Random(3)
        queries = [
            ObfuscatedPathQuery(
                tuple(rng.sample(nodes, 3)), tuple(rng.sample(nodes, 3))
            )
            for _ in range(12)
        ]
        dispatcher = ConcurrentDispatcher(ObservingHandle, max_workers=4)
        try:
            results = dispatcher.dispatch(small_grid, queries)
        finally:
            dispatcher.shutdown()
        expected = [r.stats.settled_nodes for r in results]
        assert hist.count == len(queries)
        assert hist.sum == sum(expected)
        # Cumulative bucket counts agree with a serial recount.
        for bound, merged_count in hist.bucket_counts():
            assert merged_count == sum(1 for v in expected if v <= bound)
