"""Unit tests for repro.workloads.queries."""

from __future__ import annotations

import pytest

from repro.core.query import ProtectionSetting
from repro.exceptions import ExperimentError
from repro.network.generators import grid_network
from repro.workloads.queries import (
    distance_bounded_queries,
    hotspot_queries,
    popularity_map,
    popularity_weighted_queries,
    requests_from_queries,
    uniform_queries,
)


@pytest.fixture(scope="module")
def net():
    return grid_network(20, 20, perturbation=0.1, seed=151)


class TestUniformQueries:
    def test_count_and_validity(self, net):
        queries = uniform_queries(net, 25, seed=1)
        assert len(queries) == 25
        for q in queries:
            assert q.source in net
            assert q.destination in net
            assert q.source != q.destination

    def test_deterministic(self, net):
        assert uniform_queries(net, 10, seed=2) == uniform_queries(net, 10, seed=2)

    def test_zero_count(self, net):
        assert uniform_queries(net, 0) == []

    def test_negative_count_rejected(self, net):
        with pytest.raises(ExperimentError):
            uniform_queries(net, -1)


class TestDistanceBoundedQueries:
    def test_distances_in_band(self, net):
        queries = distance_bounded_queries(net, 15, 5.0, 10.0, seed=3)
        for q in queries:
            d = net.euclidean_distance(q.source, q.destination)
            assert 5.0 <= d <= 10.0

    def test_impossible_band_raises(self, net):
        with pytest.raises(ExperimentError):
            distance_bounded_queries(net, 3, 1000.0, 2000.0, seed=3)

    def test_invalid_band_rejected(self, net):
        with pytest.raises(ExperimentError):
            distance_bounded_queries(net, 3, 10.0, 5.0)


class TestHotspotQueries:
    def test_destinations_cluster(self, net):
        queries = hotspot_queries(net, 30, num_hotspots=2, seed=4)
        destinations = {q.destination for q in queries}
        # 30 queries over 2 hotspot neighborhoods: few distinct destinations
        # relative to sources.
        sources = {q.source for q in queries}
        assert len(destinations) < len(sources)

    def test_invalid_arguments(self, net):
        with pytest.raises(ExperimentError):
            hotspot_queries(net, -1)
        with pytest.raises(ExperimentError):
            hotspot_queries(net, 5, num_hotspots=0)


class TestPopularityMap:
    def test_covers_all_nodes_with_positive_weights(self, net):
        pop = popularity_map(net, seed=5, skew=1.0)
        assert set(pop) == set(net.nodes())
        assert all(w > 0 for w in pop.values())

    def test_zero_skew_is_uniform(self, net):
        pop = popularity_map(net, seed=5, skew=0.0)
        assert len(set(pop.values())) == 1

    def test_skew_creates_heavy_head(self, net):
        pop = popularity_map(net, seed=5, skew=1.5)
        weights = sorted(pop.values(), reverse=True)
        assert weights[0] / weights[-1] > 100

    def test_negative_skew_rejected(self, net):
        with pytest.raises(ExperimentError):
            popularity_map(net, skew=-1.0)


class TestPopularityWeightedQueries:
    def test_endpoints_prefer_popular_nodes(self, net):
        pop = popularity_map(net, seed=6, skew=2.0)
        queries = popularity_weighted_queries(net, 40, pop, seed=6)
        top = set(sorted(pop, key=pop.get, reverse=True)[:40])
        hits = sum(
            (q.source in top) + (q.destination in top) for q in queries
        )
        assert hits > 40  # far above the uniform expectation (~8)

    def test_deterministic(self, net):
        pop = popularity_map(net, seed=6)
        a = popularity_weighted_queries(net, 10, pop, seed=7)
        b = popularity_weighted_queries(net, 10, pop, seed=7)
        assert a == b

    def test_needs_two_weighted_nodes(self, net):
        with pytest.raises(ExperimentError):
            popularity_weighted_queries(net, 3, {0: 1.0}, seed=1)


class TestRequestsFromQueries:
    def test_single_setting_broadcast(self, net):
        queries = uniform_queries(net, 5, seed=8)
        requests = requests_from_queries(queries, ProtectionSetting(4, 2))
        assert len(requests) == 5
        assert all(r.setting == ProtectionSetting(4, 2) for r in requests)
        assert [r.user for r in requests] == [f"user-{i}" for i in range(5)]

    def test_per_query_settings(self, net):
        queries = uniform_queries(net, 2, seed=8)
        settings = [ProtectionSetting(1, 1), ProtectionSetting(5, 5)]
        requests = requests_from_queries(queries, settings)
        assert requests[0].setting.f_s == 1
        assert requests[1].setting.f_s == 5

    def test_mismatched_settings_rejected(self, net):
        queries = uniform_queries(net, 3, seed=8)
        with pytest.raises(ExperimentError):
            requests_from_queries(queries, [ProtectionSetting()])

    def test_custom_prefix(self, net):
        queries = uniform_queries(net, 1, seed=8)
        requests = requests_from_queries(queries, user_prefix="client")
        assert requests[0].user == "client-0"
