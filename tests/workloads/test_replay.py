"""Unit tests for repro.workloads.replay and repro.workloads.scenarios."""

from __future__ import annotations

import pytest

from repro.core.query import PathQuery, ProtectionSetting
from repro.exceptions import ExperimentError
from repro.network.generators import grid_network
from repro.workloads.replay import (
    TrafficEvent,
    WorkloadEntry,
    read_workload,
    read_workload_items,
    synthesize_workload,
    write_workload,
    write_workload_items,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    incident_spike,
    morning_rush,
    scenario_events,
    uniform_churn,
)


@pytest.fixture(scope="module")
def net():
    return grid_network(10, 10, perturbation=0.1, seed=33)


def _mixed_items(net):
    entries = synthesize_workload(net, 4, kind="uniform", seed=1)
    events = uniform_churn(net, duration_ms=500, events=3, seed=2)
    # Interleave: q w q w q w q — file order must survive the trip.
    items = []
    for entry, event in zip(entries, events):
        items.append(entry)
        items.append(event)
    items.append(entries[3])
    return items


class TestRoundTrip:
    def test_v1_query_round_trip(self, net, tmp_path):
        entries = synthesize_workload(net, 6, f_s=2, f_t=4, seed=9)
        path = tmp_path / "workload.txt"
        write_workload(entries, path)
        assert path.read_text().startswith("# repro workload v1\n")
        assert read_workload(path) == entries

    def test_v2_mixed_round_trip_preserves_order(self, net, tmp_path):
        items = _mixed_items(net)
        path = tmp_path / "mixed.txt"
        write_workload_items(items, path)
        assert path.read_text().startswith("# repro workload v2\n")
        back = read_workload_items(path)
        assert back == items
        kinds = [type(i).__name__ for i in back]
        assert kinds == [
            "WorkloadEntry", "TrafficEvent",
        ] * 3 + ["WorkloadEntry"]

    def test_weight_survives_repr_precision(self, tmp_path):
        event = TrafficEvent(0, 1, 0.1 + 0.2, at_ms=17)
        path = tmp_path / "precise.txt"
        write_workload_items([event], path)
        (back,) = read_workload_items(path)
        assert back.weight == event.weight  # exact, via repr() round-trip
        assert back.at_ms == 17

    def test_read_workload_skips_traffic_lines(self, net, tmp_path):
        items = _mixed_items(net)
        path = tmp_path / "mixed.txt"
        write_workload_items(items, path)
        queries = read_workload(path)
        assert queries == [i for i in items if isinstance(i, WorkloadEntry)]

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text(
            "# repro workload v2\n\n"
            "q 1 2 3 4\n"
            "# a comment\n"
            "w 1 2 5.0 250\n"
        )
        items = read_workload_items(path)
        assert items == [
            WorkloadEntry(PathQuery(1, 2), ProtectionSetting(3, 4)),
            TrafficEvent(1, 2, 5.0, 250),
        ]


class TestMalformedInput:
    @pytest.mark.parametrize(
        "line",
        [
            "q 1 2 3",  # too few fields
            "q 1 2 3 4 5",  # too many fields
            "w 1 2 5.0",  # missing at_ms
            "w 1 2 not-a-weight 0",
            "q a b 3 4",  # non-integer node ids
            "x 1 2 3 4",  # unknown record kind
        ],
    )
    def test_bad_line_raises_with_line_number(self, tmp_path, line):
        path = tmp_path / "bad.txt"
        path.write_text(f"# repro workload v2\nq 1 2 3 4\n{line}\n")
        with pytest.raises(ExperimentError, match="line 3"):
            read_workload_items(path)

    def test_write_rejects_foreign_items(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_workload_items([object()], tmp_path / "nope.txt")


class TestScenarios:
    def test_generators_are_seeded_and_sorted(self, net):
        for name in SCENARIOS:
            a = scenario_events(name, net, duration_ms=1000, events=20, seed=5)
            b = scenario_events(name, net, duration_ms=1000, events=20, seed=5)
            assert a == b
            stamps = [e.at_ms for e in a]
            assert stamps == sorted(stamps)
            assert all(0 <= e.at_ms <= 1000 for e in a)

    def test_events_only_reweight_existing_edges(self, net):
        existing = {frozenset((u, v)) for u, v, _ in net.edges()}
        for name in SCENARIOS:
            for event in scenario_events(
                name, net, duration_ms=1000, events=20, seed=5
            ):
                assert frozenset((event.u, event.v)) in existing
                assert event.weight > 0

    def test_rush_wave_ramps_to_peak_and_back(self, net):
        baseline = {
            frozenset((u, v)): w for u, v, w in net.edges()
        }
        wave = morning_rush(
            net, duration_ms=1000, peak_factor=3.0, events=21, seed=7
        )
        factors = [
            e.weight / baseline[frozenset((e.u, e.v))] for e in wave
        ]
        peak = max(factors)
        assert peak == pytest.approx(3.0)
        assert factors.index(peak) not in (0, len(factors) - 1)
        assert factors[0] == pytest.approx(1.0)
        assert factors[-1] == pytest.approx(1.0)

    def test_incident_spikes_then_restores(self, net):
        baseline = {frozenset((u, v)): w for u, v, w in net.edges()}
        stream = incident_spike(
            net, duration_ms=400, spike_factor=8.0, seed=3
        )
        spikes = [e for e in stream if e.at_ms == 0]
        restores = [e for e in stream if e.at_ms == 400]
        assert spikes and len(spikes) == len(restores)
        for event in spikes:
            assert event.weight == pytest.approx(
                8.0 * baseline[frozenset((event.u, event.v))]
            )
        for event in restores:
            assert event.weight == pytest.approx(
                baseline[frozenset((event.u, event.v))]
            )

    def test_invalid_arguments_rejected(self, net):
        with pytest.raises(ExperimentError):
            scenario_events("no-such-scenario", net)
        with pytest.raises(ExperimentError):
            morning_rush(net, duration_ms=0)
        with pytest.raises(ExperimentError):
            morning_rush(net, peak_factor=0.5)
        with pytest.raises(ExperimentError):
            uniform_churn(net, jitter=1.0)
        with pytest.raises(ExperimentError):
            incident_spike(net, duration_ms=-1)
