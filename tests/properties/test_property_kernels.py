"""Property-based tests: CSR kernels vs. the dict-based oracles.

Strategy mirrors ``test_property_ch.py``: random weighted networks —
directed or undirected, connected or not — snapshotted/contracted once,
then every sampled query must agree with the dict-based engine,
including on unreachable pairs.  This is the flat-kernel port's main
correctness net: snapshot construction, reverse-CSR transposition,
generation-stamped scratch reuse and index/id mapping all conspire in
one observable (the returned path).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError
from repro.network.csr import csr_snapshot
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra_path
from repro.search.kernels import (
    ch_csr_hierarchy,
    csr_bidirectional_path,
    csr_ch_path,
    csr_dijkstra_path,
)
from repro.search.multi import NaivePairwiseProcessor, get_processor


@st.composite
def arbitrary_networks(draw, min_nodes=2, max_nodes=24):
    """A random weighted network — possibly directed, possibly disconnected."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    density = draw(st.floats(min_value=0.3, max_value=3.0))
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    for node in range(n):
        net.add_node(node, rng.uniform(0, 10), rng.uniform(0, 10))
    num_edges = int(density * n)
    for _ in range(num_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not net.has_edge(u, v):
            net.add_edge(u, v, rng.uniform(0.1, 5.0))
    return net


@given(arbitrary_networks(), st.data())
@settings(max_examples=60, deadline=None)
def test_csr_kernels_match_dijkstra_including_unreachable(net, data):
    csr = csr_snapshot(net)
    hierarchy = ch_csr_hierarchy(net)
    nodes = list(net.nodes())
    for _ in range(5):
        s = data.draw(st.sampled_from(nodes))
        t = data.draw(st.sampled_from(nodes))
        kernels = (
            lambda: csr_dijkstra_path(net, s, t, csr=csr),
            lambda: csr_bidirectional_path(net, s, t, csr=csr),
            lambda: csr_ch_path(hierarchy, s, t),
        )
        try:
            ref = dijkstra_path(net, s, t)
        except NoPathError:
            for kernel in kernels:
                try:
                    found = kernel()
                except NoPathError:
                    continue
                raise AssertionError(
                    f"kernel found a path {found.nodes} where Dijkstra "
                    f"found none"
                )
            continue
        for kernel in kernels:
            assert abs(kernel().distance - ref.distance) < 1e-9


@given(arbitrary_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_csr_paths_are_walkable(net, data):
    csr = csr_snapshot(net)
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    try:
        path = csr_dijkstra_path(net, s, t, csr=csr)
    except NoPathError:
        return
    assert path.nodes[0] == s and path.nodes[-1] == t
    total = 0.0
    for u, v in path.edges():
        assert net.has_edge(u, v)
        total += net.edge_weight(u, v)
    assert abs(total - path.distance) < 1e-9


@given(arbitrary_networks(min_nodes=4), st.data())
@settings(max_examples=30, deadline=None)
def test_csr_processors_match_naive(net, data):
    nodes = list(net.nodes())
    sources = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True)
    )
    destinations = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=3, unique=True)
    )
    naive = NaivePairwiseProcessor()
    for name in ("dijkstra-csr", "ch-csr"):
        processor = get_processor(name)
        try:
            ref = naive.process(net, sources, destinations)
        except NoPathError:
            try:
                processor.process(net, sources, destinations)
            except NoPathError:
                continue
            raise AssertionError(
                f"{name} answered a query with an unreachable pair"
            )
        got = processor.process(net, sources, destinations)
        assert set(got.paths) == set(ref.paths)
        for pair, ref_path in ref.paths.items():
            assert abs(got.paths[pair].distance - ref_path.distance) < 1e-9


@given(arbitrary_networks(), st.data())
@settings(max_examples=25, deadline=None)
def test_round_trip_preserves_kernel_distances(net, data):
    """`CSRGraph.to_network` round trip answers queries identically."""
    rebuilt = csr_snapshot(net).to_network()
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    try:
        original = dijkstra_path(net, s, t).distance
    except NoPathError:
        try:
            dijkstra_path(rebuilt, s, t)
        except NoPathError:
            return
        raise AssertionError("round trip changed reachability")
    assert dijkstra_path(rebuilt, s, t).distance == original
