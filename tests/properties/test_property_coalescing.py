"""Property-based tests: coalesced windows equal serial serving exactly.

For ANY stream of obfuscated queries and ANY partition of that stream
into coalescing windows, the sliced responses must equal the serial
``ServingStack.answer_batch`` responses exactly — same pair tables in
the same wire order, same paths, same distances, same ``from_cache``
flags — and the result-cache hit/miss counters must stay consistent
(the totals are partition-invariant: an in-window duplicate counts as a
shared hit exactly where serial batching counts it, and cross-window
repeats are plain cache hits in both worlds).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import ObfuscatedPathQuery
from repro.network.generators import grid_network
from repro.service.serving import CoalesceConfig, ServingConfig, ServingStack

NET = grid_network(10, 10, perturbation=0.1, seed=4001)
NODES = list(NET.nodes())
# Small endpoint pools force cross-query overlap and exact duplicates,
# the traffic shape the coalescer exists for.
SOURCE_POOL = NODES[:8]
DEST_POOL = NODES[40:48]


@st.composite
def query_streams(draw, max_queries=10):
    """A stream of overlapping obfuscated queries plus a partition of it."""
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=40),
            min_size=1,
            max_size=max_queries,
        )
    )
    queries = []
    for seed in seeds:
        rng = random.Random(seed)  # repeated seeds -> identical queries
        queries.append(
            ObfuscatedPathQuery(
                sources=tuple(rng.sample(SOURCE_POOL, rng.randint(1, 3))),
                destinations=tuple(rng.sample(DEST_POOL, rng.randint(1, 3))),
            )
        )
    # Partition: window boundaries drawn as per-query "start new window"
    # flags (the first query always starts one).
    breaks = draw(
        st.lists(st.booleans(), min_size=len(queries), max_size=len(queries))
    )
    windows: list[list[ObfuscatedPathQuery]] = []
    for query, new_window in zip(queries, breaks):
        if new_window or not windows:
            windows.append([])
        windows[-1].append(query)
    return queries, windows


def _table(response):
    return [
        (pair, path.nodes, path.distance)
        for pair, path in response.candidates.paths.items()
    ]


@given(stream=query_streams())
@settings(max_examples=40, deadline=None)
def test_any_partition_matches_serial_batches(stepping_clock, stream):
    queries, windows = stream
    serial = ServingStack.from_config(NET, ServingConfig(engine="dijkstra"))
    coalesced = ServingStack.from_config(
        NET,
        ServingConfig(engine="dijkstra", coalesce=CoalesceConfig(
            max_batch=len(queries) + 1,  # only the clock closes windows
            max_wait_s=0.5,
            clock=stepping_clock(),
        )),
    )
    try:
        for window in windows:
            serial_responses = serial.answer_batch(window)
            coalesced_responses = coalesced.answer_batch(window)
            for a, b in zip(serial_responses, coalesced_responses):
                assert _table(a) == _table(b)
                assert a.from_cache == b.from_cache
        assert serial.results.hits == coalesced.results.hits
        assert serial.results.misses == coalesced.results.misses
        assert (
            serial.server.counters.queries_served
            == coalesced.server.counters.queries_served
        )
    finally:
        serial.close()
        coalesced.close()


@given(stream=query_streams())
@settings(max_examples=30, deadline=None)
def test_partition_invariant_cache_totals(stepping_clock, stream):
    """hits+misses totals match fully-serial one-query-at-a-time serving."""
    queries, windows = stream
    one_by_one = ServingStack.from_config(
        NET,
        ServingConfig(engine="dijkstra"),
    )
    coalesced = ServingStack.from_config(
        NET,
        ServingConfig(engine="dijkstra", coalesce=CoalesceConfig(
            max_batch=len(queries) + 1,
            max_wait_s=0.5,
            clock=stepping_clock(),
        )),
    )
    try:
        reference = [one_by_one.answer_batch([q])[0] for q in queries]
        answered = []
        for window in windows:
            answered.extend(coalesced.answer_batch(window))
        for a, b in zip(reference, answered):
            assert _table(a) == _table(b)
        # A duplicate costs no work under either regime: it is a result
        # cache hit when served alone, a shared in-window hit when
        # coalesced — the counters agree in total.
        assert one_by_one.results.hits == coalesced.results.hits
        assert one_by_one.results.misses == coalesced.results.misses
    finally:
        one_by_one.close()
        coalesced.close()


@given(stream=query_streams())
@settings(max_examples=30, deadline=None)
def test_coalesced_work_never_exceeds_serial(stepping_clock, stream):
    """Union passes settle at most what per-query dispatch settles."""
    queries, windows = stream
    serial = ServingStack.from_config(NET, ServingConfig(engine="dijkstra"))
    coalesced = ServingStack.from_config(
        NET,
        ServingConfig(engine="dijkstra", coalesce=CoalesceConfig(
            max_batch=len(queries) + 1,
            max_wait_s=0.5,
            clock=stepping_clock(),
        )),
    )
    try:
        for window in windows:
            serial.answer_batch(window)
            coalesced.answer_batch(window)
        assert (
            coalesced.server.counters.stats.settled_nodes
            <= serial.server.counters.stats.settled_nodes
        )
    finally:
        serial.close()
        coalesced.close()
