"""Property-based tests: CH structural invariants on arbitrary networks.

Oracle parity (CH vs. Dijkstra on random directed/disconnected
networks, point and many-to-many) lives in the engine-conformance
harness (``tests/search/test_engine_conformance.py``); this file keeps
the CH-specific properties: walkability of unpacked paths and the
persistence round trip.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError
from repro.network.graph import RoadNetwork
from repro.search.ch import (
    ch_path,
    contract_network,
    loads_contracted,
    dumps_contracted,
)


@st.composite
def arbitrary_networks(draw, min_nodes=2, max_nodes=24):
    """A random weighted network — possibly directed, possibly disconnected.

    Unlike the ``connected_networks`` strategy used by the classic search
    properties, nothing guarantees reachability here, so unreachable pairs
    are generated with high probability on sparse draws.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    density = draw(st.floats(min_value=0.3, max_value=3.0))
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    for node in range(n):
        net.add_node(node, rng.uniform(0, 10), rng.uniform(0, 10))
    num_edges = int(density * n)
    for _ in range(num_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not net.has_edge(u, v):
            net.add_edge(u, v, rng.uniform(0.1, 5.0))
    return net


@given(arbitrary_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_ch_paths_are_walkable(net, data):
    graph = contract_network(net)
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    try:
        path = ch_path(graph, s, t)
    except NoPathError:
        return
    assert path.nodes[0] == s and path.nodes[-1] == t
    total = 0.0
    for u, v in path.edges():
        assert net.has_edge(u, v)
        total += net.edge_weight(u, v)
    assert abs(total - path.distance) < 1e-9


@given(arbitrary_networks(), st.data())
@settings(max_examples=20, deadline=None)
def test_persist_round_trip_preserves_distances(net, data):
    graph = contract_network(net)
    loaded = loads_contracted(dumps_contracted(graph))
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    try:
        original = ch_path(graph, s, t).distance
    except NoPathError:
        try:
            ch_path(loaded, s, t)
        except NoPathError:
            return
        raise AssertionError("round-trip changed reachability")
    assert ch_path(loaded, s, t).distance == original
