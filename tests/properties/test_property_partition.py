"""Property tests: partition invariants and incremental recustomization.

Random (possibly directed, possibly disconnected) networks; the
partitioner must always produce an exact, balanced partition with every
cut edge accounted once, and an overlay recustomized after a random
re-weight must serialize byte-identically to a from-scratch build on
the re-weighted network — the exactness contract behind
:meth:`repro.service.serving.ServingStack.reweight`.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import RoadNetwork
from repro.network.partition import partition_network
from repro.search.overlay import build_overlay, dumps_overlay


@st.composite
def networks(draw, min_nodes=2, max_nodes=24):
    """Random weighted network — possibly directed, possibly disconnected."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    density = draw(st.floats(min_value=0.3, max_value=3.0))
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    for node in range(n):
        net.add_node(node, rng.uniform(0, 10), rng.uniform(0, 10))
    for _ in range(int(density * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not net.has_edge(u, v):
            net.add_edge(u, v, rng.uniform(0.1, 5.0))
    return net


@given(
    net=networks(),
    capacity=st.integers(min_value=1, max_value=12),
    method=st.sampled_from(["inertial", "bfs"]),
)
@settings(max_examples=60, deadline=None)
def test_partition_invariants(net, capacity, method):
    """Cells partition the node set; balance holds; cut accounted once."""
    partition = partition_network(net, cell_capacity=capacity, method=method)
    assigned = [node for cell in partition.cells for node in cell]
    assert sorted(assigned) == sorted(net.nodes())
    assert len(assigned) == len(set(assigned))
    for cell in partition.cells:
        assert 1 <= len(cell) <= capacity
    crossing = {
        (u, v)
        for u, v, _w in net.edges()
        if partition.cell_of[u] != partition.cell_of[v]
    }
    listed = list(partition.cut_edges)
    assert len(listed) == len(set(listed)), "a cut edge is listed twice"
    assert {
        (u, v) if (u, v) in crossing else (v, u) for u, v in listed
    } == crossing
    boundary_union = {b for cell in partition.boundary for b in cell}
    endpoint_union = {n for edge in crossing for n in edge}
    assert boundary_union == endpoint_union


@given(
    net=networks(min_nodes=3),
    capacity=st.integers(min_value=2, max_value=10),
    kernel=st.sampled_from(["dict", "csr"]),
    edge_rank=st.integers(min_value=0, max_value=10_000),
    factor=st.floats(min_value=0.2, max_value=4.0),
)
@settings(max_examples=40, deadline=None)
def test_recustomize_matches_scratch_build(
    net, capacity, kernel, edge_rank, factor
):
    """Recustomize after a re-weight == byte-identical from-scratch build."""
    edges = list(net.edges())
    if not edges:
        return
    overlay = build_overlay(net, cell_capacity=capacity, kernel=kernel)
    u, v, w = edges[edge_rank % len(edges)]
    net.add_edge(u, v, w * factor)
    refreshed = overlay.recustomized(overlay.touched_cells([(u, v)]))
    scratch = build_overlay(net, cell_capacity=capacity, kernel=kernel)
    assert dumps_overlay(refreshed) == dumps_overlay(scratch)
    assert refreshed.metric == scratch.metric
