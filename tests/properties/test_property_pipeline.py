"""Property-based tests over the full OPAQUE pipeline and its extensions.

A single fixed network with hypothesis-driven workloads: whatever the
requests, the pipeline must return exact paths, honor protection
settings, keep the server ignorant of user identities, and keep the
extension layers (planner, serialization, clustering) consistent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_requests
from repro.core.planner import plan_protection
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.serialization import (
    decode_obfuscated_query,
    decode_request,
    encode_obfuscated_query,
    encode_request,
)
from repro.core.system import OpaqueSystem
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import NaivePairwiseProcessor, SharedTreeProcessor

NET = grid_network(12, 12, perturbation=0.1, seed=2001)
NODES = list(NET.nodes())


@st.composite
def request_batches(draw, max_size=6):
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(NODES) - 1), st.integers(0, len(NODES) - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=max_size,
        )
    )
    batch = []
    for i, (s, t) in enumerate(pairs):
        f_s = draw(st.integers(1, 4))
        f_t = draw(st.integers(1, 4))
        batch.append(
            ClientRequest(
                f"user-{i}",
                PathQuery(NODES[s], NODES[t]),
                ProtectionSetting(f_s, f_t),
            )
        )
    return batch


@given(request_batches(), st.sampled_from(["independent", "shared"]))
@settings(max_examples=30, deadline=None)
def test_pipeline_always_returns_exact_paths(batch, mode):
    system = OpaqueSystem(NET, mode=mode, seed=5)
    results = system.submit(batch)
    assert set(results) == {r.user for r in batch}
    for request in batch:
        truth = dijkstra_path(NET, request.query.source, request.query.destination)
        assert abs(results[request.user].distance - truth.distance) < 1e-9


@given(request_batches())
@settings(max_examples=30, deadline=None)
def test_every_record_honors_every_members_setting(batch):
    system = OpaqueSystem(NET, mode="shared", seed=5)
    system.submit(batch)
    for record in system.last_report.records:
        for request in record.requests:
            assert record.query.satisfies(request.setting)
            assert record.query.covers(request.query)


@given(request_batches())
@settings(max_examples=30, deadline=None)
def test_server_view_carries_no_request_objects(batch):
    system = OpaqueSystem(NET, mode="independent", seed=5)
    system.submit(batch)
    # The server sees only node ids; its observed set sizes bound what any
    # log analysis could recover.
    for observed, record in zip(
        system.server.observed_queries, system.last_report.records
    ):
        assert observed == record.query
        assert len(observed.sources) >= 1
        assert len(observed.destinations) >= 1


@given(request_batches(), st.floats(min_value=0.5, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_clustering_partition_and_diameter(batch, bound):
    clusters = cluster_requests(batch, NET, bound, bound)
    users = sorted(r.user for c in clusters for r in c.requests)
    assert users == sorted(r.user for r in batch)
    for cluster in clusters:
        assert cluster.source_diameter(NET) <= bound + 1e-9
        assert cluster.destination_diameter(NET) <= bound + 1e-9


@given(
    st.integers(0, len(NODES) - 1),
    st.integers(0, len(NODES) - 1),
    st.integers(2, 20),
)
@settings(max_examples=30, deadline=None)
def test_planner_plans_meet_target_and_sort(source, target, product):
    if source == target:
        return
    query = PathQuery(NODES[source], NODES[target])
    plans = plan_protection(NET, query, max_breach=1.0 / product, max_side=product)
    costs = [p.predicted_cost for p in plans]
    assert costs == sorted(costs)
    for plan in plans:
        assert plan.breach <= 1.0 / product + 1e-12


@given(request_batches(max_size=3))
@settings(max_examples=30, deadline=None)
def test_wire_round_trip_preserves_pipeline_semantics(batch):
    system = OpaqueSystem(NET, mode="independent", seed=5)
    decoded = [decode_request(encode_request(r)) for r in batch]
    # De-duplicate users after decode (hypothesis may repeat indices).
    results = system.submit(decoded)
    for record in system.last_report.records:
        wire = encode_obfuscated_query(record.query)
        assert decode_obfuscated_query(wire) == record.query
    assert set(results) == {r.user for r in batch}


@given(
    st.lists(st.integers(0, len(NODES) - 1), min_size=2, max_size=5, unique=True),
    st.lists(st.integers(0, len(NODES) - 1), min_size=2, max_size=5, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_processors_agree_on_arbitrary_sets(source_idx, dest_idx):
    sources = [NODES[i] for i in source_idx]
    destinations = [NODES[i] for i in dest_idx]
    naive = NaivePairwiseProcessor().process(NET, sources, destinations)
    shared = SharedTreeProcessor().process(NET, sources, destinations)
    assert set(naive.paths) == set(shared.paths)
    for pair in naive.paths:
        assert abs(naive.paths[pair].distance - shared.paths[pair].distance) < 1e-9
    assert shared.stats.settled_nodes <= naive.stats.settled_nodes


# ---------------------------------------------------------------------------
# Live traffic pipeline: epoch handoff under arbitrary interleavings
# ---------------------------------------------------------------------------

import pytest  # noqa: E402

from repro.core.query import ObfuscatedPathQuery  # noqa: E402
from repro.search.overlay import build_overlay, dumps_overlay  # noqa: E402
from repro.service.pipeline import TrafficPipeline  # noqa: E402
from repro.service.serving import ServingConfig, ServingStack  # noqa: E402
from repro.workloads.replay import TrafficEvent  # noqa: E402

PIPE_NET = grid_network(8, 8, perturbation=0.1, seed=77)
PIPE_NODES = list(PIPE_NET.nodes())
PIPE_EDGES = list(PIPE_NET.edges())


class _ManualClock:
    """Settable clock so staleness stamps are deterministic."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@st.composite
def pipeline_scripts(draw, max_size=24):
    """Interleavings of traffic events, queries, installs and clock steps."""
    item = st.one_of(
        st.tuples(
            st.just("event"),
            st.integers(0, len(PIPE_EDGES) - 1),
            st.floats(min_value=0.5, max_value=3.0),
        ),
        st.tuples(
            st.just("query"),
            st.integers(0, len(PIPE_NODES) - 1),
            st.integers(0, len(PIPE_NODES) - 1),
        ),
        st.just(("pump",)),
        st.tuples(st.just("tick"), st.floats(min_value=0.001, max_value=2.0)),
    )
    return draw(st.lists(item, min_size=1, max_size=max_size))


def _apply_prefix(reference, published, applied_so_far, target):
    for event in published[applied_so_far:target]:
        reference.add_edge(event.u, event.v, event.weight)
    return target


@given(pipeline_scripts())
@settings(max_examples=15, deadline=None)
def test_every_response_is_exact_for_an_applied_stream_prefix(script):
    clock = _ManualClock()
    with ServingStack.from_config(
        PIPE_NET.copy(),
        ServingConfig(engine="overlay-csr", max_workers=1),
    ) as stack:
        stack.warm()
        pipeline = TrafficPipeline(stack, debounce_ms=0.0, clock=clock)
        published: list[TrafficEvent] = []
        reference = PIPE_NET.copy()
        applied = 0
        for item in script:
            if item[0] == "event":
                _, idx, factor = item
                u, v, w = PIPE_EDGES[idx]
                event = TrafficEvent(u, v, round(w * factor, 6))
                pipeline.publish(event)
                published.append(event)
            elif item[0] == "pump":
                pipeline.pump()
            elif item[0] == "tick":
                clock.now += item[1]
            else:
                _, si, ti = item
                s, t = PIPE_NODES[si], PIPE_NODES[ti]
                if s == t:
                    continue
                # The serving state is exactly the stream prefix the
                # batcher has drained — never a torn mix of a batch.
                prefix = pipeline.batcher.offset
                applied = _apply_prefix(reference, published, applied, prefix)
                response = stack.answer(ObfuscatedPathQuery((s,), (t,)))
                truth = dijkstra_path(reference, s, t)
                got = response.candidates.paths[(s, t)]
                assert got.distance == pytest.approx(truth.distance, abs=1e-9)
        # Quiesce: everything published must land, and the installed
        # overlay must be byte-identical to a scratch build on the
        # final weights (shared-cell reuse can never leak stale state).
        pipeline.pump()
        assert pipeline.snapshot().pending == 0
        applied = _apply_prefix(reference, published, applied, len(published))
        assert dumps_overlay(
            stack.preprocessing.peek(stack._fingerprint(), "overlay-csr")
        ) == dumps_overlay(build_overlay(reference, kernel="csr"))


@given(
    st.lists(
        st.tuples(
            st.integers(0, len(PIPE_EDGES) - 1),
            st.floats(min_value=0.5, max_value=3.0),
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(1, 8),
)
@settings(max_examples=15, deadline=None)
def test_batch_partitioning_never_changes_the_final_state(updates, max_batch):
    """Any batch partitioning (max_batch sweep) converges to the same
    overlay as applying the events one by one — last-writer-wins within
    a contiguous batch is state-equivalent to sequential application."""
    events = [
        TrafficEvent(*PIPE_EDGES[idx][:2], round(PIPE_EDGES[idx][2] * f, 6))
        for idx, f in updates
    ]
    with ServingStack.from_config(
        PIPE_NET.copy(),
        ServingConfig(engine="overlay-csr", max_workers=1),
    ) as stack:
        stack.warm()
        pipeline = TrafficPipeline(stack, debounce_ms=0.0, max_batch=max_batch)
        for event in events:
            pipeline.publish(event)
        pipeline.pump()
        installed = stack.preprocessing.peek(stack._fingerprint(), "overlay-csr")
        sequential = PIPE_NET.copy()
        for event in events:
            sequential.add_edge(event.u, event.v, event.weight)
        assert dumps_overlay(installed) == dumps_overlay(
            build_overlay(sequential, kernel="csr")
        )
        for u, v, w in sequential.edges():
            assert stack.network.edge_weight(u, v) == pytest.approx(w)
