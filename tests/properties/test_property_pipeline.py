"""Property-based tests over the full OPAQUE pipeline and its extensions.

A single fixed network with hypothesis-driven workloads: whatever the
requests, the pipeline must return exact paths, honor protection
settings, keep the server ignorant of user identities, and keep the
extension layers (planner, serialization, clustering) consistent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_requests
from repro.core.planner import plan_protection
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.serialization import (
    decode_obfuscated_query,
    decode_request,
    encode_obfuscated_query,
    encode_request,
)
from repro.core.system import OpaqueSystem
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import NaivePairwiseProcessor, SharedTreeProcessor

NET = grid_network(12, 12, perturbation=0.1, seed=2001)
NODES = list(NET.nodes())


@st.composite
def request_batches(draw, max_size=6):
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(NODES) - 1), st.integers(0, len(NODES) - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=max_size,
        )
    )
    batch = []
    for i, (s, t) in enumerate(pairs):
        f_s = draw(st.integers(1, 4))
        f_t = draw(st.integers(1, 4))
        batch.append(
            ClientRequest(
                f"user-{i}",
                PathQuery(NODES[s], NODES[t]),
                ProtectionSetting(f_s, f_t),
            )
        )
    return batch


@given(request_batches(), st.sampled_from(["independent", "shared"]))
@settings(max_examples=30, deadline=None)
def test_pipeline_always_returns_exact_paths(batch, mode):
    system = OpaqueSystem(NET, mode=mode, seed=5)
    results = system.submit(batch)
    assert set(results) == {r.user for r in batch}
    for request in batch:
        truth = dijkstra_path(NET, request.query.source, request.query.destination)
        assert abs(results[request.user].distance - truth.distance) < 1e-9


@given(request_batches())
@settings(max_examples=30, deadline=None)
def test_every_record_honors_every_members_setting(batch):
    system = OpaqueSystem(NET, mode="shared", seed=5)
    system.submit(batch)
    for record in system.last_report.records:
        for request in record.requests:
            assert record.query.satisfies(request.setting)
            assert record.query.covers(request.query)


@given(request_batches())
@settings(max_examples=30, deadline=None)
def test_server_view_carries_no_request_objects(batch):
    system = OpaqueSystem(NET, mode="independent", seed=5)
    system.submit(batch)
    # The server sees only node ids; its observed set sizes bound what any
    # log analysis could recover.
    for observed, record in zip(
        system.server.observed_queries, system.last_report.records
    ):
        assert observed == record.query
        assert len(observed.sources) >= 1
        assert len(observed.destinations) >= 1


@given(request_batches(), st.floats(min_value=0.5, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_clustering_partition_and_diameter(batch, bound):
    clusters = cluster_requests(batch, NET, bound, bound)
    users = sorted(r.user for c in clusters for r in c.requests)
    assert users == sorted(r.user for r in batch)
    for cluster in clusters:
        assert cluster.source_diameter(NET) <= bound + 1e-9
        assert cluster.destination_diameter(NET) <= bound + 1e-9


@given(
    st.integers(0, len(NODES) - 1),
    st.integers(0, len(NODES) - 1),
    st.integers(2, 20),
)
@settings(max_examples=30, deadline=None)
def test_planner_plans_meet_target_and_sort(source, target, product):
    if source == target:
        return
    query = PathQuery(NODES[source], NODES[target])
    plans = plan_protection(NET, query, max_breach=1.0 / product, max_side=product)
    costs = [p.predicted_cost for p in plans]
    assert costs == sorted(costs)
    for plan in plans:
        assert plan.breach <= 1.0 / product + 1e-12


@given(request_batches(max_size=3))
@settings(max_examples=30, deadline=None)
def test_wire_round_trip_preserves_pipeline_semantics(batch):
    system = OpaqueSystem(NET, mode="independent", seed=5)
    decoded = [decode_request(encode_request(r)) for r in batch]
    # De-duplicate users after decode (hypothesis may repeat indices).
    results = system.submit(decoded)
    for record in system.last_report.records:
        wire = encode_obfuscated_query(record.query)
        assert decode_obfuscated_query(wire) == record.query
    assert set(results) == {r.user for r in batch}


@given(
    st.lists(st.integers(0, len(NODES) - 1), min_size=2, max_size=5, unique=True),
    st.lists(st.integers(0, len(NODES) - 1), min_size=2, max_size=5, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_processors_agree_on_arbitrary_sets(source_idx, dest_idx):
    sources = [NODES[i] for i in source_idx]
    destinations = [NODES[i] for i in dest_idx]
    naive = NaivePairwiseProcessor().process(NET, sources, destinations)
    shared = SharedTreeProcessor().process(NET, sources, destinations)
    assert set(naive.paths) == set(shared.paths)
    for pair in naive.paths:
        assert abs(naive.paths[pair].distance - shared.paths[pair].distance) < 1e-9
    assert shared.stats.settled_nodes <= naive.stats.settled_nodes
