"""Property-based tests: graph structure, serialization, and storage."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import RoadNetwork
from repro.network.io import dumps_network, loads_network
from repro.network.storage import LRUBufferPool, PageStore


@st.composite
def networks(draw, max_nodes=25):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    density = draw(st.floats(min_value=0.0, max_value=0.3))
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    for node in range(n):
        net.add_node(node, rng.uniform(-50, 50), rng.uniform(-50, 50))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                net.add_edge(u, v, rng.uniform(0, 100))
    return net


@given(networks())
@settings(max_examples=60, deadline=None)
def test_serialization_round_trip(net):
    clone = loads_network(dumps_network(net))
    assert clone.directed == net.directed
    assert set(clone.nodes()) == set(net.nodes())
    assert clone.num_edges == net.num_edges
    for node in net.nodes():
        assert clone.position(node) == net.position(node)
    for u, v, w in net.edges():
        assert clone.edge_weight(u, v) == w


@given(networks())
@settings(max_examples=60, deadline=None)
def test_components_partition_nodes(net):
    components = net.connected_components()
    union: set = set()
    total = 0
    for component in components:
        assert not (component & union), "components must be disjoint"
        union |= component
        total += len(component)
    assert total == net.num_nodes
    sizes = [len(c) for c in components]
    assert sizes == sorted(sizes, reverse=True)


@given(networks(), st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_page_store_partitions_nodes(net, capacity):
    store = PageStore(net, page_capacity=capacity)
    seen: list = []
    for page_id in range(store.num_pages):
        members = store.page_members(page_id)
        assert 0 < len(members) <= capacity
        seen.extend(members)
    assert sorted(seen, key=repr) == sorted(net.nodes(), key=repr)


@given(
    st.lists(st.integers(min_value=0, max_value=20), max_size=300),
    st.integers(min_value=0, max_value=8),
)
def test_lru_pool_never_exceeds_capacity(accesses, capacity):
    pool = LRUBufferPool(capacity)
    for page in accesses:
        pool.access(page)
        assert len(pool.resident_pages) <= max(capacity, 0)
    assert pool.hits + pool.misses == len(accesses)


@given(
    st.lists(st.integers(min_value=0, max_value=5), max_size=200),
    st.integers(min_value=6, max_value=10),
)
def test_lru_pool_with_ample_capacity_faults_once_per_page(accesses, capacity):
    pool = LRUBufferPool(capacity)
    faults = sum(pool.access(page) for page in accesses)
    assert faults == len(set(accesses))


@given(networks())
@settings(max_examples=40, deadline=None)
def test_subgraph_of_all_nodes_is_identity(net):
    clone = net.subgraph(list(net.nodes()))
    assert clone.num_nodes == net.num_nodes
    assert clone.num_edges == net.num_edges
