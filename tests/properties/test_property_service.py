"""Property-based tests for the batching service simulator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.network.generators import grid_network
from repro.service.simulator import BatchingObfuscationService, TimedRequest

NET = grid_network(10, 10, perturbation=0.1, seed=3001)
NODES = list(NET.nodes())


@st.composite
def arrival_streams(draw, max_size=8):
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(NODES) - 1), st.integers(0, len(NODES) - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=max_size,
        )
    )
    arrivals = []
    for i, (s, t) in enumerate(pairs):
        time = draw(st.floats(min_value=0.0, max_value=30.0))
        arrivals.append(
            TimedRequest(
                time,
                ClientRequest(
                    f"user-{i}", PathQuery(NODES[s], NODES[t]),
                    ProtectionSetting(2, 2),
                ),
            )
        )
    return arrivals


@given(arrival_streams(), st.floats(min_value=0.25, max_value=10.0))
@settings(max_examples=30, deadline=None)
def test_everyone_answered_within_one_window(arrivals, window):
    system = OpaqueSystem(NET, mode="shared", seed=7)
    service = BatchingObfuscationService(system, window=window)
    results, report = service.run(arrivals)
    assert set(results) == {t.request.user for t in arrivals}
    for latency in report.latencies_by_user.values():
        assert 0.0 < latency <= window + 1e-9


@given(arrival_streams())
@settings(max_examples=30, deadline=None)
def test_window_count_bounded_by_arrivals(arrivals):
    system = OpaqueSystem(NET, mode="shared", seed=7)
    service = BatchingObfuscationService(system, window=1.0)
    _results, report = service.run(arrivals)
    assert 1 <= report.windows_processed <= len(arrivals)
    assert report.obfuscated_queries >= report.windows_processed


@given(arrival_streams())
@settings(max_examples=20, deadline=None)
def test_batched_results_match_direct_submission(arrivals):
    """Batching changes latency and grouping, never the paths."""
    service_system = OpaqueSystem(NET, mode="shared", seed=7)
    service = BatchingObfuscationService(service_system, window=2.0)
    batched, _report = service.run(arrivals)
    direct_system = OpaqueSystem(NET, mode="independent", seed=7)
    direct = direct_system.submit([t.request for t in arrivals])
    for user, path in batched.items():
        assert abs(path.distance - direct[user].distance) < 1e-9
