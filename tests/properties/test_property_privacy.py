"""Property-based tests: privacy metrics and obfuscation invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.privacy import (
    breach_probability,
    pair_posterior,
    posterior_breach,
    posterior_entropy_bits,
)
from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.network.generators import grid_network

NET = grid_network(12, 12, perturbation=0.1, seed=1001)
NODES = list(NET.nodes())


@st.composite
def obfuscated_queries(draw):
    sources = draw(
        st.lists(st.sampled_from(NODES), min_size=1, max_size=6, unique=True)
    )
    destinations = draw(
        st.lists(st.sampled_from(NODES), min_size=1, max_size=6, unique=True)
    )
    return ObfuscatedPathQuery(tuple(sources), tuple(destinations))


@st.composite
def priors(draw):
    return {
        node: draw(st.floats(min_value=0.0, max_value=10.0))
        for node in draw(st.lists(st.sampled_from(NODES), max_size=20, unique=True))
    }


@given(obfuscated_queries())
def test_breach_is_inverse_pair_count(query):
    assert breach_probability(query) * query.num_pairs == 1.0


@given(obfuscated_queries(), priors(), priors())
def test_posterior_is_distribution(query, sp, dp):
    posterior = pair_posterior(query, sp, dp)
    assert len(posterior) == query.num_pairs
    assert abs(sum(posterior.values()) - 1.0) < 1e-9
    assert all(p >= 0 for p in posterior.values())


@given(obfuscated_queries(), priors(), priors())
def test_entropy_bounded_by_log_pairs(query, sp, dp):
    entropy = posterior_entropy_bits(query, sp, dp)
    assert -1e-9 <= entropy <= math.log2(query.num_pairs) + 1e-9


@given(obfuscated_queries())
def test_uniform_posterior_breach_equals_definition_2(query):
    s = query.sources[0]
    t = query.destinations[-1]
    if s == t:
        return
    true_query = PathQuery(s, t)
    assert abs(
        posterior_breach(query, true_query) - breach_probability(query)
    ) < 1e-12


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_independent_obfuscation_invariants(f_s, f_t, seed):
    """For any protection setting: sizes honored, truth covered, fakes
    disjoint from the true pair, breach = 1/(f_s*f_t)."""
    obfuscator = PathQueryObfuscator(NET, seed=seed)
    request = ClientRequest(
        "u", PathQuery(NODES[0], NODES[-1]), ProtectionSetting(f_s, f_t)
    )
    record = obfuscator.obfuscate_independent(request)
    assert len(record.query.sources) == f_s
    assert len(record.query.destinations) == f_t
    assert record.query.covers(request.query)
    assert NODES[0] not in record.fake_sources
    assert NODES[-1] not in record.fake_destinations
    assert breach_probability(record.query) == 1.0 / (f_s * f_t)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(NODES) - 1),
            st.integers(min_value=0, max_value=len(NODES) - 1),
        ).filter(lambda p: p[0] != p[1]),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_shared_obfuscation_invariants(pairs, f_s, f_t):
    """Shared queries cover every member and meet the max protection."""
    requests = [
        ClientRequest(
            f"u{i}",
            PathQuery(NODES[s], NODES[t]),
            ProtectionSetting(f_s, f_t),
        )
        for i, (s, t) in enumerate(pairs)
    ]
    obfuscator = PathQueryObfuscator(NET, seed=7)
    record = obfuscator.obfuscate_shared(requests)
    for request in requests:
        assert record.query.covers(request.query)
    assert len(record.query.sources) >= f_s
    assert len(record.query.destinations) >= f_t
    # Every source is either some member's true source or a declared fake.
    for s in record.query.sources:
        assert s in record.true_sources or s in record.fake_sources
