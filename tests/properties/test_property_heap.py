"""Property-based tests for the addressable heap."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.heap import AddressableHeap


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=200))
def test_pop_order_is_sorted(priorities):
    heap: AddressableHeap[int] = AddressableHeap()
    for key, priority in enumerate(priorities):
        heap.push(key, priority)
    out = []
    while heap:
        out.append(heap.pop()[1])
    assert out == sorted(out)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
    st.data(),
)
def test_decrease_key_preserves_order(priorities, data):
    heap: AddressableHeap[int] = AddressableHeap()
    current = {}
    for key, priority in enumerate(priorities):
        heap.push(key, priority)
        current[key] = priority
    # Decrease a random subset of keys to random lower values.
    subset = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(priorities) - 1),
            unique=True,
            max_size=len(priorities),
        )
    )
    for key in subset:
        new = data.draw(st.floats(min_value=0, max_value=current[key]))
        heap.decrease_key(key, new)
        current[key] = new
    out = []
    while heap:
        key, priority = heap.pop()
        assert priority == current[key]
        out.append(priority)
    assert out == sorted(out)


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100)), max_size=200))
@settings(max_examples=50)
def test_push_or_decrease_tracks_minimum(operations):
    heap: AddressableHeap[int] = AddressableHeap()
    best: dict[int, float] = {}
    for key, priority in operations:
        heap.push_or_decrease(key, priority)
        best[key] = min(best.get(key, float("inf")), priority)
    while heap:
        key, priority = heap.pop()
        assert priority == best.pop(key)
    assert not best


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
def test_len_and_contains_consistent(priorities):
    heap: AddressableHeap[int] = AddressableHeap()
    for key, priority in enumerate(priorities):
        heap.push(key, priority)
    assert len(heap) == len(priorities)
    for key in range(len(priorities)):
        assert key in heap
    popped, _ = heap.pop()
    assert popped not in heap
    assert len(heap) == len(priorities) - 1
