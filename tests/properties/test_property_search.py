"""Property-based tests: search algorithms on random road networks.

Strategy: build a random connected geometric-ish network from hypothesis
data, then assert cross-algorithm agreement and metric properties that
must hold for any correct shortest-path implementation.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import RoadNetwork
from repro.search.astar import astar_path
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.dijkstra import dijkstra_path, dijkstra_sssp, dijkstra_to_many


@st.composite
def connected_networks(draw, min_nodes=2, max_nodes=30):
    """A connected undirected network with Euclidean-consistent weights.

    Built as a random spanning tree plus random extra edges, so
    connectivity is guaranteed by construction.  Weights are Euclidean
    lengths times a factor >= 1, keeping the A* heuristic admissible.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    extra_edges = draw(st.integers(min_value=0, max_value=2 * n))
    rng = random.Random(seed)
    net = RoadNetwork()
    for node in range(n):
        net.add_node(node, rng.uniform(0, 10), rng.uniform(0, 10))
    for node in range(1, n):
        anchor = rng.randrange(node)
        net.add_edge(
            node,
            anchor,
            net.euclidean_distance(node, anchor) * rng.uniform(1.0, 2.0) + 1e-9,
        )
    for _ in range(extra_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not net.has_edge(u, v):
            net.add_edge(
                u, v, net.euclidean_distance(u, v) * rng.uniform(1.0, 2.0) + 1e-9
            )
    return net


@given(connected_networks(), st.data())
@settings(max_examples=60, deadline=None)
def test_all_algorithms_agree(net, data):
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    d = dijkstra_path(net, s, t)
    a = astar_path(net, s, t)
    b = bidirectional_dijkstra_path(net, s, t)
    assert abs(d.distance - a.distance) < 1e-6
    assert abs(d.distance - b.distance) < 1e-6


@given(connected_networks(), st.data())
@settings(max_examples=60, deadline=None)
def test_triangle_inequality_on_network_distance(net, data):
    nodes = list(net.nodes())
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    c = data.draw(st.sampled_from(nodes))
    d_ab = dijkstra_path(net, a, b).distance
    d_bc = dijkstra_path(net, b, c).distance
    d_ac = dijkstra_path(net, a, c).distance
    assert d_ac <= d_ab + d_bc + 1e-6


@given(connected_networks(), st.data())
@settings(max_examples=60, deadline=None)
def test_symmetry_on_undirected_networks(net, data):
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    assert abs(
        dijkstra_path(net, s, t).distance - dijkstra_path(net, t, s).distance
    ) < 1e-6


@given(connected_networks(), st.data())
@settings(max_examples=60, deadline=None)
def test_path_distance_equals_edge_sum(net, data):
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    path = dijkstra_path(net, s, t)
    total = sum(net.edge_weight(u, v) for u, v in path.edges())
    assert abs(total - path.distance) < 1e-6


@given(connected_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_ssmd_matches_point_queries(net, data):
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    targets = data.draw(
        st.lists(st.sampled_from(nodes), min_size=1, max_size=5, unique=True)
    )
    many = dijkstra_to_many(net, s, targets)
    for t in targets:
        assert abs(many[t].distance - dijkstra_path(net, s, t).distance) < 1e-6


@given(connected_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_sssp_distances_lower_bound_nothing(net, data):
    """Every SSSP distance is <= any specific path's distance, and the
    distance map is consistent with one-step relaxations (fixpoint)."""
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    distances, _pred = dijkstra_sssp(net, s)
    for u in nodes:
        for v, w in net.neighbors(u).items():
            assert distances[v] <= distances[u] + w + 1e-9


@given(connected_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_subpath_optimality(net, data):
    """Any prefix of a shortest path is itself a shortest path."""
    nodes = list(net.nodes())
    s = data.draw(st.sampled_from(nodes))
    t = data.draw(st.sampled_from(nodes))
    path = dijkstra_path(net, s, t)
    if len(path.nodes) < 3:
        return
    mid_index = data.draw(st.integers(min_value=1, max_value=len(path.nodes) - 2))
    mid = path.nodes[mid_index]
    prefix_distance = sum(
        net.edge_weight(u, v)
        for u, v in zip(path.nodes[: mid_index + 1], path.nodes[1 : mid_index + 1])
    )
    assert abs(prefix_distance - dijkstra_path(net, s, mid).distance) < 1e-6
