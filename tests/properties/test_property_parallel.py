"""Property tests: parallel customization is byte-identical to serial.

Random networks (directed or not, possibly disconnected), random
partition capacities, both kernels and both worker counts: an overlay
built or recustomized on a process pool must :func:`dumps_overlay` to
exactly the serial bytes.  This is the invariant that lets
:meth:`repro.service.serving.ServingStack.reweight` turn parallelism on
as a pure throughput knob — no result drift, ever.

The pools are module-shared (fork start method, warmed once) so the
suite's wall time is spent customizing, not forking.  Every example
starts with a full build (``changed_edges=None``), which re-spills the
CSR blob and resets the pool's delta map — examples cannot contaminate
each other through the one shared spill.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import RoadNetwork
from repro.search.overlay import build_overlay, dumps_overlay
from repro.search.parallel import ParallelCustomizer

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)

_POOLS: dict[int, ParallelCustomizer] = {}


@pytest.fixture(scope="module", autouse=True)
def _pools():
    yield
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


def _pool(workers: int) -> ParallelCustomizer:
    if workers not in _POOLS:
        _POOLS[workers] = ParallelCustomizer(workers, start_method="fork")
    return _POOLS[workers]


@st.composite
def networks(draw, min_nodes=4, max_nodes=28):
    """Random weighted network with integer node ids."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    directed = draw(st.booleans())
    density = draw(st.floats(min_value=0.5, max_value=3.0))
    rng = random.Random(seed)
    net = RoadNetwork(directed=directed)
    for node in range(n):
        net.add_node(node, rng.uniform(0, 10), rng.uniform(0, 10))
    for _ in range(int(density * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not net.has_edge(u, v):
            net.add_edge(u, v, rng.uniform(0.1, 5.0))
    return net


@given(
    net=networks(),
    capacity=st.integers(min_value=2, max_value=10),
    kernel=st.sampled_from(["dict", "csr"]),
    workers=st.sampled_from([2, 3]),
    reweight_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_parallel_byte_identical_to_serial(
    net, capacity, kernel, workers, reweight_seed
):
    """Build and recustomize: pool output == serial output, bytewise."""
    pool = _pool(workers)
    serial = build_overlay(net, cell_capacity=capacity, kernel=kernel)
    par = build_overlay(
        net, cell_capacity=capacity, kernel=kernel, customizer=pool
    )
    assert dumps_overlay(par) == dumps_overlay(serial)

    # Re-weight a random slice of edges and recustomize both ways.
    rng = random.Random(reweight_seed)
    changed = []
    for u, v, w in list(net.edges()):
        if rng.random() < 0.3:
            net.add_edge(u, v, w * rng.uniform(0.5, 2.0))
            changed.append((u, v))
    serial2 = serial.recustomized(changed_edges=changed)
    par2 = par.recustomized(changed_edges=changed, customizer=pool)
    fresh = build_overlay(net, cell_capacity=capacity, kernel=kernel)
    assert dumps_overlay(par2) == dumps_overlay(serial2)
    assert dumps_overlay(par2) == dumps_overlay(fresh)
