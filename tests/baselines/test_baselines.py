"""Unit tests for repro.baselines (all privacy mechanisms)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CloakingMechanism,
    DirectMechanism,
    LandmarkMechanism,
    OpaqueMechanism,
    PlainObfuscationMechanism,
)
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import QueryError
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path


@pytest.fixture(scope="module")
def net():
    return grid_network(15, 15, perturbation=0.1, seed=141)


@pytest.fixture(scope="module")
def req(net):
    return ClientRequest("alice", PathQuery(3, 207), ProtectionSetting(3, 3))


class TestDirectMechanism:
    def test_exact_result(self, net, req):
        outcome = DirectMechanism(net).answer(req)
        assert outcome.exact
        assert outcome.endpoint_displacement == 0.0
        assert outcome.distance_error == 0.0
        truth = dijkstra_path(net, 3, 207)
        assert outcome.user_path.distance == pytest.approx(truth.distance)

    def test_breach_is_one(self, net, req):
        assert DirectMechanism(net).answer(req).breach == 1.0

    def test_minimal_candidates(self, net, req):
        outcome = DirectMechanism(net).answer(req)
        assert outcome.candidate_paths == 1


class TestLandmarkMechanism:
    def test_result_connects_landmarks_not_user(self, net, req):
        landmarks = [50, 170]
        outcome = LandmarkMechanism(net, landmarks).answer(req)
        assert not outcome.exact
        assert outcome.user_path.source in landmarks
        assert outcome.user_path.destination in landmarks
        assert outcome.endpoint_displacement > 0

    def test_breach_is_zero(self, net, req):
        outcome = LandmarkMechanism(net, [50, 170]).answer(req)
        assert outcome.breach == 0.0

    def test_same_landmark_for_both_endpoints(self, net):
        # One landmark only: both endpoints snap to it, nothing to route.
        outcome = LandmarkMechanism(net, [100]).answer(
            ClientRequest("bob", PathQuery(0, 224))
        )
        assert outcome.user_path is None
        assert outcome.endpoint_displacement == float("inf")

    def test_empty_landmarks_rejected(self, net):
        with pytest.raises(QueryError):
            LandmarkMechanism(net, [])

    def test_unknown_landmark_rejected(self, net):
        with pytest.raises(QueryError):
            LandmarkMechanism(net, [99999])

    def test_landmarks_deduplicated(self, net):
        mechanism = LandmarkMechanism(net, [50, 50, 170])
        assert mechanism.landmarks == [50, 170]


class TestCloakingMechanism:
    def test_result_usually_displaced(self, net):
        mechanism = CloakingMechanism(net, cell_size=4.0, seed=1)
        displaced = 0
        for i in range(10):
            outcome = mechanism.answer(
                ClientRequest(f"u{i}", PathQuery(i, 210 + i))
            )
            if outcome.endpoint_displacement > 0:
                displaced += 1
        assert displaced >= 5

    def test_breach_reflects_cell_population(self, net, req):
        coarse = CloakingMechanism(net, cell_size=6.0, seed=1).answer(req)
        fine = CloakingMechanism(net, cell_size=1.01, seed=1).answer(req)
        assert coarse.breach < fine.breach

    def test_breach_bounded(self, net, req):
        outcome = CloakingMechanism(net, cell_size=4.0, seed=1).answer(req)
        assert 0 < outcome.breach <= 1.0

    def test_deterministic_given_seed(self, net, req):
        a = CloakingMechanism(net, cell_size=4.0, seed=9).answer(req)
        b = CloakingMechanism(net, cell_size=4.0, seed=9).answer(req)
        assert a.breach == b.breach
        assert (a.user_path is None) == (b.user_path is None)


class TestPlainObfuscationMechanism:
    def test_exact_result(self, net, req):
        outcome = PlainObfuscationMechanism(net, num_fakes=4, seed=2).answer(req)
        assert outcome.exact
        assert outcome.distance_error == 0.0

    def test_breach_is_one_over_query_count(self, net, req):
        outcome = PlainObfuscationMechanism(net, num_fakes=4, seed=2).answer(req)
        assert outcome.breach == pytest.approx(1 / 5)

    def test_cost_scales_with_fakes(self, net, req):
        cheap = PlainObfuscationMechanism(net, num_fakes=1, seed=2).answer(req)
        costly = PlainObfuscationMechanism(net, num_fakes=8, seed=2).answer(req)
        assert costly.server_stats.settled_nodes > cheap.server_stats.settled_nodes
        assert costly.candidate_paths == 9

    def test_zero_fakes_equals_direct_semantics(self, net, req):
        outcome = PlainObfuscationMechanism(net, num_fakes=0, seed=2).answer(req)
        assert outcome.breach == 1.0
        assert outcome.exact

    def test_negative_fakes_rejected(self, net):
        with pytest.raises(ValueError):
            PlainObfuscationMechanism(net, num_fakes=-1)


class TestOpaqueMechanism:
    def test_exact_result(self, net, req):
        outcome = OpaqueMechanism(net, seed=3).answer(req)
        assert outcome.exact
        assert outcome.endpoint_displacement == 0.0

    def test_breach_matches_setting(self, net, req):
        outcome = OpaqueMechanism(net, seed=3).answer(req)
        assert outcome.breach == pytest.approx(1 / 9)

    def test_cheaper_than_plain_obfuscation_at_equal_anonymity(self, net, req):
        """The paper's core efficiency claim at matched anonymity (9 pairs)."""
        opaque = OpaqueMechanism(net, seed=3).answer(req)
        plain = PlainObfuscationMechanism(net, num_fakes=8, seed=3).answer(req)
        assert opaque.breach == pytest.approx(plain.breach)
        assert opaque.server_stats.settled_nodes < plain.server_stats.settled_nodes


class TestCrossMechanismInvariants:
    def test_all_report_nonnegative_costs(self, net, req):
        mechanisms = [
            DirectMechanism(net),
            LandmarkMechanism(net, [50, 170]),
            CloakingMechanism(net, seed=1),
            PlainObfuscationMechanism(net, seed=1),
            OpaqueMechanism(net, seed=1),
        ]
        for mechanism in mechanisms:
            outcome = mechanism.answer(req)
            assert outcome.server_stats.settled_nodes >= 0
            assert outcome.traffic_bytes >= 0
            assert 0.0 <= outcome.breach <= 1.0
            assert outcome.mechanism == mechanism.name

    def test_exact_mechanisms_have_zero_displacement(self, net, req):
        for mechanism in (
            DirectMechanism(net),
            PlainObfuscationMechanism(net, seed=1),
            OpaqueMechanism(net, seed=1),
        ):
            outcome = mechanism.answer(req)
            assert outcome.exact
            assert outcome.endpoint_displacement == 0.0
