"""Unit tests for repro.network.io (text serialization)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.network.generators import grid_network
from repro.network.io import (
    dumps_network,
    loads_network,
    read_network,
    write_network,
)
from repro.network.graph import RoadNetwork


class TestRoundTrip:
    def test_string_round_trip_exact(self, small_grid):
        clone = loads_network(dumps_network(small_grid))
        assert set(clone.nodes()) == set(small_grid.nodes())
        assert clone.num_edges == small_grid.num_edges
        for node in small_grid.nodes():
            assert clone.position(node) == small_grid.position(node)
        for u, v, w in small_grid.edges():
            assert clone.edge_weight(u, v) == w

    def test_file_round_trip(self, tmp_path, small_grid):
        path = tmp_path / "net.txt"
        write_network(small_grid, path)
        clone = read_network(path)
        assert clone.num_nodes == small_grid.num_nodes
        assert clone.num_edges == small_grid.num_edges

    def test_directed_flag_preserved(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 5.0)
        clone = loads_network(dumps_network(net))
        assert clone.directed
        assert clone.has_edge(1, 2)
        assert not clone.has_edge(2, 1)

    def test_empty_network_round_trip(self):
        clone = loads_network(dumps_network(RoadNetwork()))
        assert clone.num_nodes == 0
        assert not clone.directed


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = "# hello\n\ndirected 0\n# another\nnode 1 0.0 0.0\n"
        net = loads_network(text)
        assert 1 in net

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            loads_network("node 1 0.0 0.0\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\ndirected 1\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\nblob 1 2 3\n")

    def test_malformed_node_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\nnode 1 abc 0.0\n")

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\nnode 1 0 0\nnode 2 1 0\nedge 1\n")

    def test_edges_may_precede_nodes(self):
        # Edge lines are buffered until all nodes are read.
        text = "directed 0\nedge 1 2 3.0\nnode 1 0 0\nnode 2 1 0\n"
        net = loads_network(text)
        assert net.edge_weight(1, 2) == 3.0

    def test_generated_network_round_trip(self):
        net = grid_network(6, 6, perturbation=0.2, seed=8)
        clone = loads_network(dumps_network(net))
        assert clone.num_edges == net.num_edges


class TestDimacs:
    """DIMACS 9th-Challenge ``.gr``/``.co`` interchange."""

    def _renamed(self, net):
        """A copy with dense 1-based ids (the DIMACS precondition)."""
        from repro.network.io import write_dimacs  # noqa: F401

        ids = {u: i + 1 for i, u in enumerate(net.nodes())}
        clone = RoadNetwork(directed=net.directed)
        for u in net.nodes():
            p = net.position(u)
            clone.add_node(ids[u], p.x, p.y)
        for u, v, w in net.edges():
            clone.add_edge(ids[u], ids[v], w)
        return clone

    def test_round_trip_exact(self, tmp_path):
        from repro.network.io import read_dimacs, write_dimacs

        net = self._renamed(grid_network(5, 4, perturbation=0.2, seed=9))
        gr, co = tmp_path / "g.gr", tmp_path / "g.co"
        write_dimacs(net, gr, co)
        back = read_dimacs(gr, co, directed=False)
        assert set(back.nodes()) == set(net.nodes())
        assert back.num_edges == net.num_edges
        for u in net.nodes():
            assert back.position(u) == net.position(u)
        for u, v, w in net.edges():
            assert back.edge_weight(u, v) == w

    def test_round_trip_directed(self, tmp_path):
        from repro.network.io import read_dimacs, write_dimacs

        net = RoadNetwork(directed=True)
        net.add_node(1, 0.0, 0.0)
        net.add_node(2, 1.5, 0.25)
        net.add_edge(1, 2, 4.0)
        net.add_edge(2, 1, 7.5)
        gr = tmp_path / "d.gr"
        write_dimacs(net, gr)
        back = read_dimacs(gr, directed=True)
        assert back.edge_weight(1, 2) == 4.0
        assert back.edge_weight(2, 1) == 7.5

    def test_without_coordinates_nodes_sit_at_origin(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "g.gr"
        gr.write_text("c tiny\np sp 2 1\na 1 2 3.0\n")
        net = read_dimacs(gr)
        assert net.position(1).x == 0.0
        assert net.position(2).y == 0.0
        assert net.edge_weight(1, 2) == 3.0

    def test_integral_weights_written_as_ints(self, tmp_path):
        from repro.network.io import write_dimacs

        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 5.0)
        gr = tmp_path / "i.gr"
        write_dimacs(net, gr)
        assert "a 1 2 5\n" in gr.read_text()

    def test_malformed_arc_reports_line_number(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "bad.gr"
        gr.write_text("c ok\np sp 2 1\na 1 two 3.0\n")
        with pytest.raises(GraphError, match="malformed line 3"):
            read_dimacs(gr)

    def test_truncated_arc_reports_line_number(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 2 1\na 1\n")
        with pytest.raises(GraphError, match="malformed line 2"):
            read_dimacs(gr)

    def test_arc_before_header_rejected(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "bad.gr"
        gr.write_text("a 1 2 3.0\np sp 2 1\n")
        with pytest.raises(GraphError, match="before 'p' header"):
            read_dimacs(gr)

    def test_arc_count_mismatch_rejected(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 2 2\na 1 2 3.0\n")
        with pytest.raises(GraphError, match="declares 2 arcs, found 1"):
            read_dimacs(gr)

    def test_out_of_range_node_rejected(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 2 1\na 1 9 3.0\n")
        with pytest.raises(GraphError, match="outside 1..2"):
            read_dimacs(gr)

    def test_malformed_coordinate_reports_line_number(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "g.gr"
        gr.write_text("p sp 1 0\n")
        co = tmp_path / "g.co"
        co.write_text("p aux sp co 1\nv 1 x 0.0\n")
        with pytest.raises(GraphError, match="malformed line 2"):
            read_dimacs(gr, co)

    def test_coordinate_count_mismatch_rejected(self, tmp_path):
        from repro.network.io import read_dimacs

        gr = tmp_path / "g.gr"
        gr.write_text("p sp 2 0\n")
        co = tmp_path / "g.co"
        co.write_text("p aux sp co 2\nv 1 0.0 0.0\n")
        with pytest.raises(GraphError, match="declares 2 nodes, lists 1"):
            read_dimacs(gr, co)

    def test_non_dense_ids_rejected_on_write(self, tmp_path):
        from repro.network.io import write_dimacs

        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(5, 1, 0)
        net.add_edge(1, 5, 1.0)
        with pytest.raises(GraphError):
            write_dimacs(net, tmp_path / "g.gr")
