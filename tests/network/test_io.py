"""Unit tests for repro.network.io (text serialization)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.network.generators import grid_network
from repro.network.io import (
    dumps_network,
    loads_network,
    read_network,
    write_network,
)
from repro.network.graph import RoadNetwork


class TestRoundTrip:
    def test_string_round_trip_exact(self, small_grid):
        clone = loads_network(dumps_network(small_grid))
        assert set(clone.nodes()) == set(small_grid.nodes())
        assert clone.num_edges == small_grid.num_edges
        for node in small_grid.nodes():
            assert clone.position(node) == small_grid.position(node)
        for u, v, w in small_grid.edges():
            assert clone.edge_weight(u, v) == w

    def test_file_round_trip(self, tmp_path, small_grid):
        path = tmp_path / "net.txt"
        write_network(small_grid, path)
        clone = read_network(path)
        assert clone.num_nodes == small_grid.num_nodes
        assert clone.num_edges == small_grid.num_edges

    def test_directed_flag_preserved(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 5.0)
        clone = loads_network(dumps_network(net))
        assert clone.directed
        assert clone.has_edge(1, 2)
        assert not clone.has_edge(2, 1)

    def test_empty_network_round_trip(self):
        clone = loads_network(dumps_network(RoadNetwork()))
        assert clone.num_nodes == 0
        assert not clone.directed


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = "# hello\n\ndirected 0\n# another\nnode 1 0.0 0.0\n"
        net = loads_network(text)
        assert 1 in net

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            loads_network("node 1 0.0 0.0\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\ndirected 1\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\nblob 1 2 3\n")

    def test_malformed_node_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\nnode 1 abc 0.0\n")

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            loads_network("directed 0\nnode 1 0 0\nnode 2 1 0\nedge 1\n")

    def test_edges_may_precede_nodes(self):
        # Edge lines are buffered until all nodes are read.
        text = "directed 0\nedge 1 2 3.0\nnode 1 0 0\nnode 2 1 0\n"
        net = loads_network(text)
        assert net.edge_weight(1, 2) == 3.0

    def test_generated_network_round_trip(self):
        net = grid_network(6, 6, perturbation=0.2, seed=8)
        clone = loads_network(dumps_network(net))
        assert clone.num_edges == net.num_edges
