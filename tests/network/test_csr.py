"""Unit tests for the flat CSR snapshot (`repro.network.csr`)."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownNodeError
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.generators import grid_network, one_way_grid_network
from repro.network.graph import RoadNetwork
from repro.service.cache import network_fingerprint


def _disconnected_network(directed: bool = False) -> RoadNetwork:
    net = RoadNetwork(directed=directed)
    for i in range(6):
        net.add_node(i, float(i), float(i % 2))
    net.add_edge(0, 1, 1.0)
    net.add_edge(1, 2, 2.0)
    net.add_edge(3, 4, 0.5)
    # node 5 is fully isolated
    return net


class TestConstruction:
    def test_shape_matches_network(self, small_grid):
        csr = CSRGraph.from_network(small_grid)
        assert csr.num_nodes == small_grid.num_nodes
        # Undirected adjacency stores both arc directions.
        assert csr.num_arcs == 2 * small_grid.num_edges
        assert len(csr.offsets) == csr.num_nodes + 1
        assert csr.offsets[0] == 0 and csr.offsets[-1] == csr.num_arcs

    def test_offsets_monotone(self, small_grid):
        csr = CSRGraph.from_network(small_grid)
        offsets = list(csr.offsets)
        assert offsets == sorted(offsets)

    def test_adjacency_matches_neighbors(self, small_grid):
        csr = CSRGraph.from_network(small_grid)
        for node in small_grid.nodes():
            i = csr.index(node)
            got = {csr.node_ids[j]: w for j, w in csr.arcs_from(i)}
            assert got == small_grid.neighbors(node)
            assert csr.degree(i) == small_grid.degree(node)

    def test_positions_preserved(self, small_grid):
        csr = CSRGraph.from_network(small_grid)
        for node in small_grid.nodes():
            i = csr.index(node)
            p = small_grid.position(node)
            assert (csr.xs[i], csr.ys[i]) == (p.x, p.y)

    def test_empty_network(self):
        csr = CSRGraph.from_network(RoadNetwork())
        assert csr.num_nodes == 0 and csr.num_arcs == 0
        assert list(csr.offsets) == [0]
        assert csr.to_network().num_nodes == 0

    def test_unknown_node_raises(self, small_grid):
        csr = CSRGraph.from_network(small_grid)
        with pytest.raises(UnknownNodeError):
            csr.index("nope")
        assert "nope" not in csr
        assert 0 in csr


class TestReverseView:
    def test_undirected_reverse_aliases_forward(self, small_grid):
        csr = CSRGraph.from_network(small_grid)
        assert csr.rtargets is csr.targets
        assert csr.rweights is csr.weights
        assert csr.reverse_kernel_view() is csr.kernel_view()

    def test_directed_reverse_transposes(self):
        net = one_way_grid_network(5, 5, seed=3)
        csr = CSRGraph.from_network(net)
        assert csr.directed
        forward = {
            (u, csr.targets[e], csr.weights[e])
            for u in range(csr.num_nodes)
            for e in range(csr.offsets[u], csr.offsets[u + 1])
        }
        backward = {
            (csr.rtargets[e], v, csr.rweights[e])
            for v in range(csr.num_nodes)
            for e in range(csr.roffsets[v], csr.roffsets[v + 1])
        }
        assert forward == backward


class TestRoundTrip:
    @pytest.mark.parametrize("directed", [False, True])
    def test_disconnected_round_trip(self, directed):
        net = _disconnected_network(directed)
        rebuilt = csr_snapshot(net).to_network()
        assert network_fingerprint(rebuilt) == network_fingerprint(net)

    def test_grid_round_trip(self, small_grid):
        rebuilt = csr_snapshot(small_grid).to_network()
        assert network_fingerprint(rebuilt) == network_fingerprint(small_grid)
        assert rebuilt.num_edges == small_grid.num_edges

    def test_directed_grid_round_trip(self):
        net = one_way_grid_network(6, 6, seed=1)
        rebuilt = csr_snapshot(net).to_network()
        assert rebuilt.directed
        assert network_fingerprint(rebuilt) == network_fingerprint(net)


class TestSnapshotMemo:
    def test_same_version_reuses_snapshot(self, small_grid):
        assert csr_snapshot(small_grid) is csr_snapshot(small_grid)

    def test_mutation_invalidates(self):
        net = grid_network(4, 4, perturbation=0.1, seed=2)
        before = csr_snapshot(net)
        net.add_node(99, 0.5, 0.5)
        after = csr_snapshot(net)
        assert after is not before
        assert after.num_nodes == before.num_nodes + 1
        # The new snapshot is the memoized one now.
        assert csr_snapshot(net) is after

    def test_versionless_views_rebuild_per_call(self, small_grid):
        class Bare:
            """Minimal read interface without a version stamp."""

            directed = False

            def nodes(self):
                return small_grid.nodes()

            def neighbors(self, node):
                return small_grid.neighbors(node)

            def position(self, node):
                return small_grid.position(node)

        view = Bare()
        assert csr_snapshot(view) is not csr_snapshot(view)


class TestNumpyView:
    def test_zero_copy_views(self, small_grid):
        np = pytest.importorskip("numpy")
        csr = csr_snapshot(small_grid)
        views = csr.as_numpy()
        assert views["targets"].shape == (csr.num_arcs,)
        assert views["offsets"][-1] == csr.num_arcs
        assert float(views["weights"].sum()) == pytest.approx(
            sum(csr.weights)
        )
        assert np.shares_memory(
            views["weights"], np.frombuffer(csr.weights)
        )

    def test_views_are_read_only(self, small_grid):
        np = pytest.importorskip("numpy")
        csr = csr_snapshot(small_grid)
        views = csr.as_numpy()
        before = {k: bytes(getattr(csr, k)) for k in views}
        for name, view in views.items():
            assert not view.flags.writeable, name
            with pytest.raises(ValueError):
                view[0] = 999
        # The memoized snapshot's buffers survived every attempt.
        for name in views:
            assert bytes(getattr(csr, name)) == before[name], name
        assert csr_snapshot(small_grid) is csr

    def test_empty_graph_views(self):
        pytest.importorskip("numpy")
        views = csr_snapshot(RoadNetwork()).as_numpy()
        assert views["offsets"].tolist() == [0]
        assert views["targets"].shape == (0,)
        assert views["weights"].shape == (0,)
        assert not views["offsets"].flags.writeable


class TestKernelViewRace:
    def test_concurrent_first_calls_share_one_view(self):
        import threading

        net = one_way_grid_network(12, 12, seed=5)
        csr = csr_snapshot(net)
        barrier = threading.Barrier(8)
        results: list[tuple] = []
        lock = threading.Lock()

        def grab():
            barrier.wait()
            forward = csr.kernel_view()
            backward = csr.reverse_kernel_view()
            with lock:
                results.append((forward, backward))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        first_f, first_b = results[0]
        assert all(f is first_f and b is first_b for f, b in results)
        assert first_f[0] == list(csr.offsets)
        assert first_b[1] == list(csr.rtargets)

    def test_undirected_reverse_view_aliases_forward(self, small_grid):
        csr = csr_snapshot(small_grid)
        assert csr.reverse_kernel_view() is csr.kernel_view()
        # And the memoized alias is stable on repeat calls.
        assert csr.reverse_kernel_view() is csr.reverse_kernel_view()
