"""Unit tests for repro.network.graph."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import (
    DuplicateNodeError,
    EdgeError,
    UnknownNodeError,
)
from repro.network.graph import Point, RoadNetwork


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.0)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_point_is_immutable(self):
        p = Point(0, 0)
        with pytest.raises(AttributeError):
            p.x = 1.0


class TestNodeManagement:
    def test_add_node_and_position(self):
        net = RoadNetwork()
        net.add_node(1, 2.0, 3.0)
        assert net.position(1) == Point(2.0, 3.0)
        assert 1 in net
        assert len(net) == 1

    def test_add_node_coerces_to_float(self):
        net = RoadNetwork()
        net.add_node(1, 2, 3)
        assert isinstance(net.position(1).x, float)

    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        with pytest.raises(DuplicateNodeError):
            net.add_node(1, 5, 5)

    def test_position_of_unknown_node(self):
        net = RoadNetwork()
        with pytest.raises(UnknownNodeError):
            net.position(99)

    def test_string_node_ids_supported(self):
        net = RoadNetwork()
        net.add_node("home", 0, 0)
        net.add_node("clinic", 1, 1)
        net.add_edge("home", "clinic")
        assert net.has_edge("home", "clinic")

    def test_nodes_iterates_in_insertion_order(self):
        net = RoadNetwork()
        for node in (5, 3, 9):
            net.add_node(node, 0, node)
        assert list(net.nodes()) == [5, 3, 9]


class TestEdgeManagement:
    def test_add_edge_with_weight(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 7.5)
        assert net.edge_weight(1, 2) == 7.5

    def test_undirected_edge_is_symmetric(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 4.0)
        assert net.edge_weight(2, 1) == 4.0
        assert net.num_edges == 1

    def test_directed_edge_is_one_way(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 4.0)
        assert net.has_edge(1, 2)
        assert not net.has_edge(2, 1)

    def test_default_weight_is_euclidean(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 3, 4)
        net.add_edge(1, 2)
        assert net.edge_weight(1, 2) == pytest.approx(5.0)

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        with pytest.raises(EdgeError):
            net.add_edge(1, 1, 1.0)

    def test_negative_weight_rejected(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(EdgeError):
            net.add_edge(1, 2, -0.1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_weight_rejected(self, bad):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(EdgeError):
            net.add_edge(1, 2, bad)

    def test_edge_to_unknown_node_rejected(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        with pytest.raises(UnknownNodeError):
            net.add_edge(1, 2, 1.0)
        with pytest.raises(UnknownNodeError):
            net.add_edge(2, 1, 1.0)

    def test_re_adding_edge_updates_weight_not_count(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 2, 9.0)
        assert net.num_edges == 1
        assert net.edge_weight(1, 2) == 9.0

    def test_remove_edge(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2)
        net.remove_edge(1, 2)
        assert not net.has_edge(1, 2)
        assert not net.has_edge(2, 1)
        assert net.num_edges == 0

    def test_remove_missing_edge_raises(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(EdgeError):
            net.remove_edge(1, 2)

    def test_edge_weight_of_missing_edge_raises(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        with pytest.raises(EdgeError):
            net.edge_weight(1, 2)

    def test_edges_yields_each_undirected_edge_once(self, small_grid):
        edges = list(small_grid.edges())
        assert len(edges) == small_grid.num_edges
        seen = set()
        for u, v, _w in edges:
            assert (v, u) not in seen
            seen.add((u, v))

    def test_neighbors_of_unknown_node_raises(self):
        net = RoadNetwork()
        with pytest.raises(UnknownNodeError):
            net.neighbors(0)

    def test_degree_counts_outgoing_edges(self, tiny_triangle):
        assert tiny_triangle.degree("b") == 2
        assert tiny_triangle.degree("a") == 2


class TestGeometry:
    def test_euclidean_distance(self, tiny_triangle):
        assert tiny_triangle.euclidean_distance("a", "c") == pytest.approx(2.0)

    def test_bounding_box(self, tiny_triangle):
        assert tiny_triangle.bounding_box() == (0.0, 0.0, 2.0, 0.0)

    def test_bounding_box_empty_network_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork().bounding_box()


class TestConnectivity:
    def test_component_of_connected(self, small_grid):
        start = next(small_grid.nodes())
        assert len(small_grid.component_of(start)) == small_grid.num_nodes

    def test_component_of_unknown_raises(self, small_grid):
        with pytest.raises(UnknownNodeError):
            small_grid.component_of(-1)

    def test_is_connected_true_for_grid(self, small_grid):
        assert small_grid.is_connected()

    def test_empty_network_is_connected(self):
        assert RoadNetwork().is_connected()

    def test_disconnected_components_sorted_by_size(self):
        net = RoadNetwork()
        for i in range(5):
            net.add_node(i, i, 0)
        net.add_edge(0, 1)
        net.add_edge(1, 2)
        net.add_edge(3, 4)
        comps = net.connected_components()
        assert [len(c) for c in comps] == [3, 2]

    def test_largest_component_subgraph(self):
        net = RoadNetwork()
        for i in range(5):
            net.add_node(i, i, 0)
        net.add_edge(0, 1)
        net.add_edge(1, 2)
        net.add_edge(3, 4)
        largest = net.largest_component_subgraph()
        assert set(largest.nodes()) == {0, 1, 2}
        assert largest.num_edges == 2

    def test_directed_weak_connectivity(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2)
        assert len(net.connected_components()) == 1

    def test_strong_connectivity_requires_return_paths(self):
        net = RoadNetwork(directed=True)
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        net.add_edge(1, 2)
        assert net.is_connected()
        assert not net.is_strongly_connected()
        net.add_edge(2, 1)
        assert net.is_strongly_connected()

    def test_strong_connectivity_directed_cycle(self):
        net = RoadNetwork(directed=True)
        for i in range(4):
            net.add_node(i, i, 0)
        for i in range(4):
            net.add_edge(i, (i + 1) % 4)
        assert net.is_strongly_connected()

    def test_strong_connectivity_on_undirected_equals_connected(self, small_grid):
        assert small_grid.is_strongly_connected() == small_grid.is_connected()

    def test_strong_connectivity_empty_network(self):
        assert RoadNetwork(directed=True).is_strongly_connected()


class TestSubgraphAndCopy:
    def test_subgraph_keeps_internal_edges_only(self, tiny_triangle):
        sub = tiny_triangle.subgraph(["a", "b"])
        assert set(sub.nodes()) == {"a", "b"}
        assert sub.has_edge("a", "b")
        assert sub.num_edges == 1

    def test_subgraph_unknown_node_raises(self, tiny_triangle):
        with pytest.raises(UnknownNodeError):
            tiny_triangle.subgraph(["a", "zz"])

    def test_copy_is_independent(self, tiny_triangle):
        clone = tiny_triangle.copy()
        clone.remove_edge("a", "b")
        assert tiny_triangle.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_copy_preserves_positions_and_weights(self, tiny_triangle):
        clone = tiny_triangle.copy()
        for node in tiny_triangle.nodes():
            assert clone.position(node) == tiny_triangle.position(node)
        for u, v, w in tiny_triangle.edges():
            assert clone.edge_weight(u, v) == w

    def test_repr_mentions_counts(self, tiny_triangle):
        text = repr(tiny_triangle)
        assert "nodes=3" in text and "edges=3" in text


class TestNetworkxInterop:
    def test_round_trip_distances_match(self, small_grid):
        g = small_grid.to_networkx()
        assert g.number_of_nodes() == small_grid.num_nodes
        assert g.number_of_edges() == small_grid.num_edges
        u = next(small_grid.nodes())
        for v, w in small_grid.neighbors(u).items():
            assert math.isclose(g[u][v]["weight"], w)
