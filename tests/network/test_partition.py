"""Unit tests for repro.network.partition (and its io round trip)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, UnknownNodeError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.network.io import dumps_partition, loads_partition
from repro.network.partition import (
    Partition,
    default_cell_capacity,
    partition_network,
    partition_snapshot,
)
from repro.network.storage import PageStore


def _check_invariants(net, partition, capacity):
    # Cells partition the node set exactly.
    seen = [node for cell in partition.cells for node in cell]
    assert sorted(seen) == sorted(net.nodes())
    assert len(seen) == len(set(seen)) == partition.num_nodes
    # Balance bound.
    for cell in partition.cells:
        assert 1 <= len(cell) <= capacity
    # cell_of is the inverse of cells.
    for i, cell in enumerate(partition.cells):
        for node in cell:
            assert partition.cell_of[node] == i
    # Every cut edge accounted exactly once, and only cut edges.
    expected_cut = [
        (u, v)
        for u, v, _w in net.edges()
        if partition.cell_of[u] != partition.cell_of[v]
    ]
    assert list(partition.cut_edges) == expected_cut
    # Boundary nodes are exactly the endpoints of cut edges.
    flagged = set()
    for u, v in partition.cut_edges:
        flagged.add(u)
        flagged.add(v)
    for i, boundary in enumerate(partition.boundary):
        assert set(boundary) == flagged & set(partition.cells[i])
        # boundary preserves cell order
        assert list(boundary) == [n for n in partition.cells[i] if n in flagged]


class TestPartitionNetwork:
    @pytest.mark.parametrize("method", ["inertial", "bfs"])
    def test_invariants(self, small_grid, method):
        partition = partition_network(
            small_grid, cell_capacity=12, method=method
        )
        _check_invariants(small_grid, partition, 12)

    def test_deterministic(self, small_grid):
        a = partition_network(small_grid, cell_capacity=16)
        b = partition_network(small_grid, cell_capacity=16)
        assert a == b

    def test_weight_independent(self, small_grid):
        before = partition_network(small_grid, cell_capacity=16)
        net = small_grid.copy()
        u, v, w = next(net.edges())
        net.add_edge(u, v, w * 7.5)
        after = partition_network(net, cell_capacity=16)
        assert before.cells == after.cells

    def test_refinement_reduces_cut(self):
        net = grid_network(20, 20, perturbation=0.1, seed=5)
        raw = partition_network(
            net, cell_capacity=40, refine_rounds=0, method="bfs"
        )
        refined = partition_network(
            net, cell_capacity=40, refine_rounds=2, method="bfs"
        )
        assert refined.num_cut_edges <= raw.num_cut_edges

    def test_inertial_cells_are_compact(self):
        # On a grid, coordinate bisection must clearly beat BFS stripes.
        net = grid_network(30, 30, perturbation=0.1, seed=5)
        inertial = partition_network(net, cell_capacity=100, method="inertial")
        bfs = partition_network(
            net, cell_capacity=100, refine_rounds=0, method="bfs"
        )
        assert inertial.num_boundary_nodes < bfs.num_boundary_nodes

    def test_directed_network(self):
        net = RoadNetwork(directed=True)
        for i in range(6):
            net.add_node(i, float(i), 0.0)
        for i in range(5):
            net.add_edge(i, i + 1, 1.0)
        partition = partition_network(net, cell_capacity=2)
        _check_invariants(net, partition, 2)

    def test_disconnected_components(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, float(i), 0.0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        partition = partition_network(net, cell_capacity=2)
        _check_invariants(net, partition, 2)

    def test_invalid_arguments(self, small_grid):
        with pytest.raises(GraphError):
            partition_network(small_grid, cell_capacity=0)
        with pytest.raises(GraphError):
            partition_network(small_grid, cell_capacity=4, refine_rounds=-1)
        with pytest.raises(GraphError):
            partition_network(small_grid, cell_capacity=4, method="voodoo")

    def test_accessors(self, small_grid):
        partition = partition_network(small_grid, cell_capacity=16)
        assert partition.members(0) == partition.cells[0]
        assert 0 in partition
        assert -1 not in partition
        with pytest.raises(GraphError):
            partition.members(partition.num_cells)
        with pytest.raises(UnknownNodeError):
            partition.cell_index(-1)
        assert "Partition(" in repr(partition)

    def test_default_capacity_heuristic(self):
        assert default_cell_capacity(1) == 4
        assert default_cell_capacity(10_000) == 232
        assert default_cell_capacity(10**9) == 1024


class TestFromCells:
    def test_rejects_double_assignment(self, small_grid):
        nodes = list(small_grid.nodes())
        cells = [nodes, nodes[:1]]
        with pytest.raises(GraphError, match="two cells"):
            Partition.from_cells(small_grid, cells, len(nodes))

    def test_rejects_missing_nodes(self, small_grid):
        nodes = list(small_grid.nodes())
        with pytest.raises(GraphError, match="cover"):
            Partition.from_cells(small_grid, [nodes[:-1]], len(nodes))

    def test_rejects_capacity_violation(self, small_grid):
        nodes = list(small_grid.nodes())
        with pytest.raises(GraphError, match="capacity"):
            Partition.from_cells(small_grid, [nodes], 8)

    def test_rejects_unknown_node(self, small_grid):
        nodes = list(small_grid.nodes()) + [-5]
        with pytest.raises(UnknownNodeError):
            Partition.from_cells(small_grid, [nodes], len(nodes))


class TestMemoization:
    def test_snapshot_reused_until_mutation(self):
        net = grid_network(6, 6, seed=1)
        a = partition_snapshot(net, cell_capacity=9)
        assert partition_snapshot(net, cell_capacity=9) is a
        # A different capacity is a different layout.
        assert partition_snapshot(net, cell_capacity=18) is not a
        net.add_edge(0, 7, 1.0)
        b = partition_snapshot(net, cell_capacity=9)
        assert b is not a

    def test_versionless_views_rebuild(self, small_grid):
        class Bare:
            directed = False

            def __contains__(self, node):
                return node in small_grid

            def nodes(self):
                return small_grid.nodes()

            def neighbors(self, n):
                return small_grid.neighbors(n)

            def position(self, n):
                return small_grid.position(n)

            @property
            def num_nodes(self):
                return small_grid.num_nodes

        bare = Bare()
        a = partition_snapshot(bare, cell_capacity=16)
        b = partition_snapshot(bare, cell_capacity=16)
        assert a is not b
        assert a.cells == b.cells


class TestPagesAreCells:
    def test_pages_equal_partition_cells(self, small_grid):
        store = PageStore(small_grid, page_capacity=16)
        partition = partition_snapshot(small_grid, cell_capacity=16)
        assert store.num_pages == partition.num_cells
        for i in range(store.num_pages):
            assert store.page_members(i) == list(partition.cells[i])


class TestPartitionIO:
    def test_round_trip(self, small_grid):
        partition = partition_network(small_grid, cell_capacity=16)
        text = dumps_partition(partition)
        loaded = loads_partition(text, small_grid)
        assert loaded == partition
        assert dumps_partition(loaded) == text

    def test_write_read_file(self, small_grid, tmp_path):
        from repro.network.io import read_partition, write_partition

        partition = partition_network(small_grid, cell_capacity=16)
        path = tmp_path / "grid.part"
        write_partition(partition, path)
        assert read_partition(path, small_grid) == partition

    def test_rejects_malformed(self, small_grid):
        with pytest.raises(GraphError, match="capacity"):
            loads_partition("cell 0 1 2\n", small_grid)
        with pytest.raises(GraphError, match="malformed"):
            loads_partition("capacity x\n", small_grid)
        with pytest.raises(GraphError, match="record kind"):
            loads_partition("capacity 4\nfrobnicate\n", small_grid)
        with pytest.raises(GraphError, match="numbered"):
            loads_partition("capacity 100\ncell 1 0\n", small_grid)

    def test_rejects_non_integer_ids(self):
        net = RoadNetwork()
        net.add_node("a", 0.0, 0.0)
        partition = partition_network(net, cell_capacity=4)
        with pytest.raises(GraphError, match="integer"):
            dumps_partition(partition)
