"""Unit tests for repro.network.generators."""

from __future__ import annotations

import pytest

from repro.network.generators import (
    grid_network,
    random_geometric_network,
    ring_radial_network,
    scale_free_network,
    tiger_like_network,
)
from repro.network.metrics import summarize_network


class TestGridNetwork:
    def test_node_and_edge_counts(self):
        net = grid_network(4, 3)
        assert net.num_nodes == 12
        # horizontal: 3*3, vertical: 4*2
        assert net.num_edges == 9 + 8

    def test_single_node_grid(self):
        net = grid_network(1, 1)
        assert net.num_nodes == 1
        assert net.num_edges == 0

    def test_positions_respect_spacing(self):
        net = grid_network(3, 3, spacing=2.0)
        assert net.position(0).x == 0.0
        assert net.position(2).x == 4.0

    def test_deterministic_for_same_seed(self):
        a = grid_network(5, 5, perturbation=0.2, seed=11)
        b = grid_network(5, 5, perturbation=0.2, seed=11)
        assert list(a.edges()) == list(b.edges())
        for node in a.nodes():
            assert a.position(node) == b.position(node)

    def test_different_seed_differs(self):
        a = grid_network(5, 5, perturbation=0.2, seed=11)
        b = grid_network(5, 5, perturbation=0.2, seed=12)
        moved = any(a.position(n) != b.position(n) for n in a.nodes())
        assert moved

    def test_perturbation_zero_is_exact_lattice(self):
        net = grid_network(3, 3, perturbation=0.0, seed=5)
        assert net.position(4).x == 1.0
        assert net.position(4).y == 1.0

    def test_drop_fraction_keeps_connectivity(self):
        net = grid_network(10, 10, drop_fraction=0.15, seed=3)
        assert net.is_connected()
        assert net.num_edges < 180  # fewer than the full grid

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_network(0, 5)

    def test_invalid_drop_fraction(self):
        with pytest.raises(ValueError):
            grid_network(3, 3, drop_fraction=1.0)

    def test_negative_perturbation_rejected(self):
        with pytest.raises(ValueError):
            grid_network(3, 3, perturbation=-0.1)

    def test_is_road_like(self):
        summary = summarize_network(grid_network(15, 15, perturbation=0.1, seed=1))
        assert summary.is_road_like


class TestRandomGeometricNetwork:
    def test_connected_output(self):
        net = random_geometric_network(300, radius=0.12, seed=4)
        assert net.is_connected()
        assert net.num_nodes > 0

    def test_edges_respect_radius(self):
        net = random_geometric_network(200, radius=0.15, seed=4)
        for u, v, w in net.edges():
            assert w <= 0.15 + 1e-9

    def test_deterministic(self):
        a = random_geometric_network(100, radius=0.2, seed=9)
        b = random_geometric_network(100, radius=0.2, seed=9)
        assert set(a.nodes()) == set(b.nodes())
        assert list(a.edges()) == list(b.edges())

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_geometric_network(0, radius=0.1)
        with pytest.raises(ValueError):
            random_geometric_network(10, radius=0.0)
        with pytest.raises(ValueError):
            random_geometric_network(10, radius=0.1, extent=-1)


class TestRingRadialNetwork:
    def test_node_count(self):
        net = ring_radial_network(rings=3, spokes=6)
        assert net.num_nodes == 1 + 3 * 6

    def test_connected(self):
        assert ring_radial_network(rings=4, spokes=8).is_connected()

    def test_center_degree_equals_spokes(self):
        net = ring_radial_network(rings=2, spokes=5)
        assert net.degree(0) == 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ring_radial_network(rings=0, spokes=6)
        with pytest.raises(ValueError):
            ring_radial_network(rings=2, spokes=2)


class TestTigerLikeNetwork:
    def test_node_count(self):
        net = tiger_like_network(blocks=3, block_size=4, seed=1)
        assert net.num_nodes == 3 * 3 * 4 * 4

    def test_connected(self):
        assert tiger_like_network(blocks=3, block_size=4, seed=1).is_connected()

    def test_arterials_are_faster_than_euclidean(self):
        net = tiger_like_network(
            blocks=2, block_size=4, arterial_speedup=3.0, perturbation=0.0, seed=1
        )
        fast_edges = [
            (u, v, w)
            for u, v, w in net.edges()
            if w < net.euclidean_distance(u, v) - 1e-9
        ]
        assert fast_edges, "expected at least one arterial edge"
        for u, v, w in fast_edges:
            assert w == pytest.approx(net.euclidean_distance(u, v) / 3.0)

    def test_deterministic(self):
        a = tiger_like_network(blocks=2, block_size=3, seed=6)
        b = tiger_like_network(blocks=2, block_size=3, seed=6)
        assert list(a.edges()) == list(b.edges())

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            tiger_like_network(blocks=0)
        with pytest.raises(ValueError):
            tiger_like_network(block_size=1)
        with pytest.raises(ValueError):
            tiger_like_network(arterial_speedup=0.5)

    def test_is_road_like(self):
        summary = summarize_network(tiger_like_network(blocks=3, block_size=4, seed=2))
        assert summary.is_road_like


class TestScaleFreeNetwork:
    def test_size_and_connectivity(self):
        net = scale_free_network(200, attachment=2, seed=4)
        assert net.num_nodes == 200
        assert net.is_connected()
        # Seed clique plus exactly `attachment` edges per arriving node
        # (arrivals are new nodes, so their edges can never collide).
        assert net.num_edges == 3 + 2 * 197

    def test_heavy_tailed_degrees(self):
        net = scale_free_network(400, attachment=2, seed=5)
        degrees = sorted((net.degree(n) for n in net.nodes()), reverse=True)
        # Hubs exist: the max degree dwarfs the median.
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_weights_are_euclidean(self):
        net = scale_free_network(60, seed=6)
        for u, v, w in net.edges():
            assert w == pytest.approx(net.euclidean_distance(u, v))

    def test_deterministic(self):
        a = scale_free_network(80, seed=7)
        b = scale_free_network(80, seed=7)
        assert list(a.edges()) == list(b.edges())

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            scale_free_network(5, attachment=0)
        with pytest.raises(ValueError):
            scale_free_network(2, attachment=2)


class TestMetroNetwork:
    def test_deterministic_for_same_seed(self):
        from repro.network.generators import metro_network

        a = metro_network(900, seed=4)
        b = metro_network(900, seed=4)
        assert list(a.nodes()) == list(b.nodes())
        assert list(a.edges()) == list(b.edges())
        for node in a.nodes():
            assert a.position(node) == b.position(node)

    def test_different_seed_differs(self):
        from repro.network.generators import metro_network

        a = metro_network(900, seed=4)
        b = metro_network(900, seed=5)
        assert list(a.edges()) != list(b.edges())

    def test_connected_and_near_requested_size(self):
        from repro.network.generators import metro_network

        net = metro_network(2000, seed=1)
        assert net.is_connected()
        # largest-component trim loses a fringe sliver at most
        assert net.num_nodes > 2000 * 0.8

    def test_degree_distribution_sane(self):
        from repro.network.generators import metro_network

        net = metro_network(2000, seed=2)
        avg = 2.0 * net.num_edges / net.num_nodes
        # a street grid with radial thinning: clearly sparser than the
        # full lattice (4) and denser than a tree (2)
        assert 2.0 < avg < 4.0

    def test_core_denser_than_fringe(self):
        from repro.network.generators import metro_network

        net = metro_network(4000, core_drop=0.02, fringe_drop=0.6, seed=3)
        xs = [net.position(n).x for n in net.nodes()]
        ys = [net.position(n).y for n in net.nodes()]
        cx = (min(xs) + max(xs)) / 2.0
        cy = (min(ys) + max(ys)) / 2.0
        span = (max(xs) - min(xs)) / 2.0
        core_deg, core_n, fringe_deg, fringe_n = 0, 0, 0, 0
        for node in net.nodes():
            p = net.position(node)
            r = ((p.x - cx) ** 2 + (p.y - cy) ** 2) ** 0.5
            if r < span * 0.25:
                core_deg += net.degree(node)
                core_n += 1
            elif r > span * 0.75:
                fringe_deg += net.degree(node)
                fringe_n += 1
        assert core_n and fringe_n
        assert core_deg / core_n > fringe_deg / fringe_n

    def test_arterials_are_faster_than_length(self):
        from repro.network.generators import metro_network

        net = metro_network(2000, arterial_every=8, arterial_speedup=2.0,
                            seed=6)
        fast = 0
        for u, v, w in net.edges():
            pu, pv = net.position(u), net.position(v)
            length = ((pu.x - pv.x) ** 2 + (pu.y - pv.y) ** 2) ** 0.5
            if w < length * 0.75:
                fast += 1
        assert fast > 0

    def test_undirected(self):
        from repro.network.generators import metro_network

        assert metro_network(400, seed=0).directed is False

    def test_validations(self):
        from repro.network.generators import metro_network

        with pytest.raises(ValueError):
            metro_network(2)
        with pytest.raises(ValueError):
            metro_network(400, fringe_drop=1.0)
        with pytest.raises(ValueError):
            metro_network(400, perturbation=-0.1)
        with pytest.raises(ValueError):
            metro_network(400, arterial_speedup=0.5)
