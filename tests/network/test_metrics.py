"""Unit tests for repro.network.metrics."""

from __future__ import annotations

import pytest

from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.network.metrics import (
    sample_network_diameter,
    summarize_network,
)


class TestSummarizeNetwork:
    def test_counts_match_network(self, small_grid):
        summary = summarize_network(small_grid)
        assert summary.num_nodes == small_grid.num_nodes
        assert summary.num_edges == small_grid.num_edges
        assert summary.num_components == 1

    def test_average_degree_of_lattice(self):
        net = grid_network(3, 3, perturbation=0.0)
        summary = summarize_network(net)
        # 3x3 lattice: 12 undirected edges over 9 nodes -> mean degree 24/9.
        assert summary.average_degree == pytest.approx(24 / 9)
        assert summary.max_degree == 4

    def test_edge_weight_stats(self, tiny_triangle):
        summary = summarize_network(tiny_triangle)
        assert summary.max_edge_weight == 3.0
        assert summary.average_edge_weight == pytest.approx((1 + 1 + 3) / 3)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            summarize_network(RoadNetwork())

    def test_road_like_flag_rejects_disconnected(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        net.add_node(2, 1, 0)
        summary = summarize_network(net)
        assert summary.num_components == 2
        assert not summary.is_road_like

    def test_bounding_box_passthrough(self, tiny_triangle):
        summary = summarize_network(tiny_triangle)
        assert summary.bounding_box == tiny_triangle.bounding_box()


class TestSampleDiameter:
    def test_positive_for_grid(self, small_grid):
        assert sample_network_diameter(small_grid) > 0

    def test_zero_for_single_node(self):
        net = RoadNetwork()
        net.add_node(1, 0, 0)
        assert sample_network_diameter(net) == 0.0

    def test_at_least_half_diagonal(self, small_grid):
        min_x, min_y, max_x, max_y = small_grid.bounding_box()
        diagonal = ((max_x - min_x) ** 2 + (max_y - min_y) ** 2) ** 0.5
        assert sample_network_diameter(small_grid) >= diagonal * 0.5 - 1e-9
