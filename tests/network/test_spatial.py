"""Unit tests for repro.network.spatial."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import UnknownNodeError
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.network.spatial import GridSpatialIndex


@pytest.fixture(scope="module")
def indexed_grid():
    net = grid_network(12, 12, perturbation=0.1, seed=2)
    return net, GridSpatialIndex(net)


class TestConstruction:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            GridSpatialIndex(RoadNetwork())

    def test_invalid_cell_size_rejected(self, small_grid):
        with pytest.raises(ValueError):
            GridSpatialIndex(small_grid, cell_size=0.0)

    def test_automatic_cell_size_positive(self, small_grid):
        index = GridSpatialIndex(small_grid)
        assert index.cell_size > 0

    def test_single_node_network(self):
        net = RoadNetwork()
        net.add_node(7, 3.0, 4.0)
        index = GridSpatialIndex(net, cell_size=1.0)
        assert index.nearest_node(100.0, 100.0) == 7


class TestNearestNode:
    def test_exact_hit(self, indexed_grid):
        net, index = indexed_grid
        for node in list(net.nodes())[:20]:
            p = net.position(node)
            assert index.nearest_node(p.x, p.y) == node

    def test_matches_brute_force(self, indexed_grid):
        net, index = indexed_grid
        rng = random.Random(5)
        for _ in range(50):
            x = rng.uniform(-2, 13)
            y = rng.uniform(-2, 13)
            got = index.nearest_node(x, y)
            best = min(
                net.nodes(),
                key=lambda n: (net.position(n).x - x) ** 2
                + (net.position(n).y - y) ** 2,
            )
            got_d = (net.position(got).x - x) ** 2 + (net.position(got).y - y) ** 2
            best_d = (net.position(best).x - x) ** 2 + (net.position(best).y - y) ** 2
            assert got_d == pytest.approx(best_d)

    def test_far_away_query_still_answers(self, indexed_grid):
        _net, index = indexed_grid
        assert index.nearest_node(1e6, 1e6) is not None


class TestRangeQueries:
    def test_nodes_in_box_matches_brute_force(self, indexed_grid):
        net, index = indexed_grid
        got = set(index.nodes_in_box(2.0, 2.0, 5.0, 6.0))
        expected = {
            n
            for n in net.nodes()
            if 2.0 <= net.position(n).x <= 5.0 and 2.0 <= net.position(n).y <= 6.0
        }
        assert got == expected

    def test_nodes_within_matches_brute_force(self, indexed_grid):
        net, index = indexed_grid
        got = set(index.nodes_within(6.0, 6.0, 2.5))
        expected = {
            n
            for n in net.nodes()
            if (net.position(n).x - 6.0) ** 2 + (net.position(n).y - 6.0) ** 2
            <= 2.5**2 + 1e-12
        }
        assert got == expected

    def test_nodes_within_negative_radius_rejected(self, indexed_grid):
        _net, index = indexed_grid
        with pytest.raises(ValueError):
            index.nodes_within(0, 0, -1.0)

    def test_ring_excludes_inner_disc(self, indexed_grid):
        net, index = indexed_grid
        ring = index.nodes_in_ring(6.0, 6.0, 2.0, 4.0)
        for node in ring:
            d = ((net.position(node).x - 6.0) ** 2 + (net.position(node).y - 6.0) ** 2) ** 0.5
            assert 2.0 - 1e-9 <= d <= 4.0 + 1e-9

    def test_ring_invalid_bounds_rejected(self, indexed_grid):
        _net, index = indexed_grid
        with pytest.raises(ValueError):
            index.nodes_in_ring(0, 0, 3.0, 2.0)

    def test_empty_box_returns_empty(self, indexed_grid):
        _net, index = indexed_grid
        assert index.nodes_in_box(100, 100, 101, 101) == []


class TestRandomNodeNear:
    def test_respects_radius_and_exclusions(self, indexed_grid):
        net, index = indexed_grid
        rng = random.Random(3)
        exclude = set(list(net.nodes())[:5])
        for _ in range(20):
            node = index.random_node_near(5.0, 5.0, 3.0, rng, exclude=exclude)
            assert node is not None
            assert node not in exclude
            d = ((net.position(node).x - 5.0) ** 2 + (net.position(node).y - 5.0) ** 2) ** 0.5
            assert d <= 3.0 + 1e-9

    def test_returns_none_when_no_candidates(self, indexed_grid):
        _net, index = indexed_grid
        rng = random.Random(3)
        assert index.random_node_near(500.0, 500.0, 1.0, rng) is None


class TestCellOperations:
    def test_snap_and_members_consistent(self, indexed_grid):
        net, index = indexed_grid
        node = next(net.nodes())
        cell = index.snap(node)
        assert node in index.cell_members(cell)

    def test_snap_unknown_node(self, indexed_grid):
        _net, index = indexed_grid
        with pytest.raises(UnknownNodeError):
            index.snap(-42)

    def test_unknown_cell_is_empty(self, indexed_grid):
        _net, index = indexed_grid
        assert index.cell_members((999, 999)) == []

    def test_cells_partition_all_nodes(self, indexed_grid):
        net, index = indexed_grid
        seen: list = []
        for cell in {index.snap(n) for n in net.nodes()}:
            seen.extend(index.cell_members(cell))
        assert sorted(seen) == sorted(net.nodes())
