"""Unit tests for repro.network.storage."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError, UnknownNodeError
from repro.network.storage import IOCounter, LRUBufferPool, PagedNetwork, PageStore
from repro.search.dijkstra import dijkstra_path, dijkstra_sssp


class TestIOCounter:
    def test_record_and_reset(self):
        io = IOCounter()
        io.record(1, fault=True)
        io.record(1, fault=False)
        io.record(2, fault=True)
        assert io.logical_accesses == 3
        assert io.page_faults == 2
        assert io.distinct_pages == 2
        io.reset()
        assert io.logical_accesses == 0
        assert io.page_faults == 0
        assert io.distinct_pages == 0


class TestPageStore:
    def test_every_node_assigned_exactly_once(self, small_grid):
        store = PageStore(small_grid, page_capacity=8)
        seen = []
        for page_id in range(store.num_pages):
            seen.extend(store.page_members(page_id))
        assert sorted(seen) == sorted(small_grid.nodes())

    def test_capacity_respected(self, small_grid):
        store = PageStore(small_grid, page_capacity=8)
        for page_id in range(store.num_pages):
            assert len(store.page_members(page_id)) <= 8

    def test_page_count_lower_bound(self, small_grid):
        store = PageStore(small_grid, page_capacity=8)
        assert store.num_pages >= small_grid.num_nodes // 8

    def test_page_of_matches_members(self, small_grid):
        store = PageStore(small_grid, page_capacity=8)
        for node in small_grid.nodes():
            assert node in store.page_members(store.page_of(node))

    def test_clustering_groups_neighbors(self, small_grid):
        """CCAM property: most edges connect nodes on the same page or an
        adjacent handful of pages (BFS packing keeps locality)."""
        store = PageStore(small_grid, page_capacity=16)
        same_page = 0
        total = 0
        for u, v, _w in small_grid.edges():
            total += 1
            if store.page_of(u) == store.page_of(v):
                same_page += 1
        assert same_page / total > 0.3

    def test_invalid_capacity(self, small_grid):
        with pytest.raises(StorageError):
            PageStore(small_grid, page_capacity=0)

    def test_unknown_node(self, small_grid):
        store = PageStore(small_grid, page_capacity=8)
        with pytest.raises(UnknownNodeError):
            store.page_of(-1)

    def test_unknown_page(self, small_grid):
        store = PageStore(small_grid, page_capacity=8)
        with pytest.raises(StorageError):
            store.page_members(store.num_pages)

    def test_deterministic_layout(self, small_grid):
        a = PageStore(small_grid, page_capacity=8)
        b = PageStore(small_grid, page_capacity=8)
        for node in small_grid.nodes():
            assert a.page_of(node) == b.page_of(node)


class TestLRUBufferPool:
    def test_cold_access_faults(self):
        pool = LRUBufferPool(capacity=2)
        assert pool.access(1) is True
        assert pool.access(1) is False

    def test_eviction_is_lru(self):
        pool = LRUBufferPool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 2 is now LRU
        pool.access(3)  # evicts 2
        assert pool.access(1) is False
        assert pool.access(3) is False
        assert pool.access(2) is True

    def test_zero_capacity_always_faults(self):
        pool = LRUBufferPool(capacity=0)
        assert pool.access(1) is True
        assert pool.access(1) is True
        assert pool.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            LRUBufferPool(capacity=-1)

    def test_hit_miss_counters(self):
        pool = LRUBufferPool(capacity=4)
        for page in (1, 2, 1, 1, 3):
            pool.access(page)
        assert pool.misses == 3
        assert pool.hits == 2

    def test_clear(self):
        pool = LRUBufferPool(capacity=4)
        pool.access(1)
        pool.clear()
        assert pool.resident_pages == []
        assert pool.access(1) is True

    def test_resident_pages_order(self):
        pool = LRUBufferPool(capacity=3)
        for page in (1, 2, 3, 1):
            pool.access(page)
        assert pool.resident_pages == [2, 3, 1]


class TestPagedNetwork:
    def test_read_interface_matches_backing(self, small_grid):
        paged = PagedNetwork(small_grid, page_capacity=8, buffer_capacity=4)
        node = next(small_grid.nodes())
        assert paged.num_nodes == small_grid.num_nodes
        assert paged.num_edges == small_grid.num_edges
        assert node in paged
        assert paged.position(node) == small_grid.position(node)
        assert paged.neighbors(node) == small_grid.neighbors(node)
        assert len(paged) == len(small_grid)
        assert not paged.directed

    def test_accesses_are_charged(self, small_grid):
        paged = PagedNetwork(small_grid, page_capacity=8, buffer_capacity=4)
        node = next(small_grid.nodes())
        paged.neighbors(node)
        assert paged.io.logical_accesses == 1
        assert paged.io.page_faults == 1

    def test_reset_io_clears_counters_and_cache(self, small_grid):
        paged = PagedNetwork(small_grid, page_capacity=8, buffer_capacity=4)
        node = next(small_grid.nodes())
        paged.neighbors(node)
        paged.reset_io()
        assert paged.io.page_faults == 0
        paged.neighbors(node)
        assert paged.io.page_faults == 1  # cache was dropped too

    def test_search_results_identical_to_unpaged(self, small_grid):
        paged = PagedNetwork(small_grid, page_capacity=8, buffer_capacity=4)
        nodes = list(small_grid.nodes())
        plain = dijkstra_path(small_grid, nodes[0], nodes[-1])
        charged = dijkstra_path(paged, nodes[0], nodes[-1])
        assert plain.nodes == charged.nodes
        assert plain.distance == pytest.approx(charged.distance)

    def test_larger_buffer_means_fewer_faults(self, medium_grid):
        nodes = list(medium_grid.nodes())
        faults = []
        for capacity in (1, 8, 10_000):
            paged = PagedNetwork(medium_grid, page_capacity=16, buffer_capacity=capacity)
            dijkstra_sssp(paged, nodes[0])
            faults.append(paged.io.page_faults)
        assert faults[0] >= faults[1] >= faults[2]
        # With an unbounded buffer only compulsory faults remain.
        assert faults[2] == paged.store.num_pages

    def test_repr(self, small_grid):
        paged = PagedNetwork(small_grid, page_capacity=8, buffer_capacity=4)
        assert "PagedNetwork" in repr(paged)
