"""Unit tests for repro.network.views."""

from __future__ import annotations

import pytest

from repro.exceptions import NoPathError
from repro.network.generators import grid_network, tiger_like_network
from repro.network.graph import RoadNetwork
from repro.network.views import FilteredView, ReverseView, avoid_fast_roads
from repro.search.dijkstra import dijkstra_path


@pytest.fixture(scope="module")
def directed_chain():
    net = RoadNetwork(directed=True)
    for i in range(4):
        net.add_node(i, i, 0)
    net.add_edge(0, 1, 1.0)
    net.add_edge(1, 2, 2.0)
    net.add_edge(2, 3, 3.0)
    return net


class TestReverseView:
    def test_flips_directed_edges(self, directed_chain):
        rv = ReverseView(directed_chain)
        assert rv.neighbors(1) == {0: 1.0}
        assert rv.neighbors(0) == {}
        assert rv.neighbors(3) == {2: 3.0}

    def test_search_on_reverse_finds_backward_path(self, directed_chain):
        rv = ReverseView(directed_chain)
        path = dijkstra_path(rv, 3, 0)
        assert path.nodes == (3, 2, 1, 0)
        assert path.distance == pytest.approx(6.0)
        with pytest.raises(NoPathError):
            dijkstra_path(directed_chain, 3, 0)

    def test_identity_on_undirected(self, small_grid):
        rv = ReverseView(small_grid)
        node = next(small_grid.nodes())
        assert rv.neighbors(node) == small_grid.neighbors(node)

    def test_read_interface_delegates(self, directed_chain):
        rv = ReverseView(directed_chain)
        assert rv.num_nodes == 4
        assert len(rv) == 4
        assert 2 in rv
        assert rv.directed
        assert rv.position(1) == directed_chain.position(1)
        assert rv.euclidean_distance(0, 3) == pytest.approx(3.0)
        assert list(rv.nodes()) == list(directed_chain.nodes())
        assert rv.base is directed_chain

    def test_double_reverse_restores_adjacency(self, directed_chain):
        double = ReverseView(ReverseView(directed_chain))
        for node in directed_chain.nodes():
            assert double.neighbors(node) == directed_chain.neighbors(node)


class TestFilteredView:
    def test_hides_failing_edges(self, tiny_triangle):
        view = FilteredView(tiny_triangle, lambda u, v, w: w < 2.0)
        assert "c" not in view.neighbors("a")
        assert view.neighbors("a") == {"b": 1.0}

    def test_search_respects_filter(self, tiny_triangle):
        # Hide the direct a-c shortcut-candidate; route must go via b.
        view = FilteredView(tiny_triangle, lambda u, v, w: {u, v} != {"a", "c"})
        path = dijkstra_path(view, "a", "c")
        assert path.nodes == ("a", "b", "c")

    def test_filter_can_disconnect(self, tiny_triangle):
        view = FilteredView(tiny_triangle, lambda u, v, w: False)
        with pytest.raises(NoPathError):
            dijkstra_path(view, "a", "c")

    def test_composes_with_reverse(self, directed_chain):
        view = ReverseView(FilteredView(directed_chain, lambda u, v, w: w <= 2.0))
        assert view.neighbors(2) == {1: 2.0}
        assert view.neighbors(3) == {}

    def test_nodes_never_hidden(self, small_grid):
        view = FilteredView(small_grid, lambda u, v, w: False)
        assert view.num_nodes == small_grid.num_nodes


class TestAvoidFastRoads:
    @pytest.fixture(scope="class")
    def suburb(self):
        return tiger_like_network(
            blocks=3, block_size=5, arterial_speedup=2.5, seed=3
        )

    def test_arterials_hidden(self, suburb):
        view = avoid_fast_roads(suburb)
        for u in view.nodes():
            for v, w in view.neighbors(u).items():
                speed = suburb.euclidean_distance(u, v) / w
                assert speed <= 1.0 + 1e-6

    def test_still_connected_via_local_streets(self, suburb):
        view = avoid_fast_roads(suburb)
        nodes = list(suburb.nodes())
        path = dijkstra_path(view, nodes[0], nodes[-1])
        assert path.distance > 0

    def test_avoiding_highways_costs_more(self, suburb):
        nodes = list(suburb.nodes())
        fast = dijkstra_path(suburb, nodes[0], nodes[-1]).distance
        slow = dijkstra_path(avoid_fast_roads(suburb), nodes[0], nodes[-1]).distance
        assert slow > fast

    def test_threshold_above_arterials_hides_nothing(self, suburb):
        view = avoid_fast_roads(suburb, speed_threshold=10.0)
        nodes = list(suburb.nodes())
        fast = dijkstra_path(suburb, nodes[0], nodes[-1]).distance
        same = dijkstra_path(view, nodes[0], nodes[-1]).distance
        assert same == pytest.approx(fast)

    def test_plain_grid_unaffected(self):
        net = grid_network(8, 8, perturbation=0.0, seed=1)
        view = avoid_fast_roads(net)
        assert dijkstra_path(view, 0, 63).distance == pytest.approx(
            dijkstra_path(net, 0, 63).distance
        )
