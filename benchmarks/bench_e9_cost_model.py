"""Bench E9 — validating the O(||s,t||^2) cost model.

Regenerates the E9 table and times a long-radius point query, the unit
the model prices.
"""

from __future__ import annotations

from repro.experiments import e9_cost_model
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path


def test_e9_table(benchmark, record_result):
    result = benchmark.pedantic(e9_cost_model.run, rounds=1, iterations=1)
    record_result(result)
    rows = result.rows
    d_ratio = rows[-1]["mean_distance"] / rows[0]["mean_distance"]
    c_ratio = rows[-1]["mean_settled"] / rows[0]["mean_settled"]
    assert c_ratio > d_ratio * 1.5  # clearly superlinear
    r2 = float(result.notes.split("R^2 = ")[1].split()[0])
    assert r2 > 0.7


def test_e9_long_query_time(benchmark):
    network = grid_network(50, 50, perturbation=0.1, seed=9)
    path = benchmark(dijkstra_path, network, 0, 2499)
    assert path.distance > 0
