"""Ablation bench: point-to-point engines the server could run.

Times Dijkstra, A* (Euclidean), bidirectional Dijkstra and ALT on the same
long-radius queries — the engine choice underneath the naive pairwise
processor, and a sanity anchor for every settled-node comparison in the
experiment suite.  ALT's preprocessing is deliberately excluded from the
timed region (it is a build-time cost).
"""

from __future__ import annotations

import random

import pytest

from repro.network.generators import grid_network
from repro.search.alt import LandmarkIndex, alt_path
from repro.search.astar import astar_path
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.dijkstra import dijkstra_path

_NET = grid_network(50, 50, perturbation=0.1, seed=77)
_NODES = list(_NET.nodes())
_INDEX = LandmarkIndex(_NET, num_landmarks=6)
_PAIRS = [
    tuple(random.Random(seed).sample(_NODES, 2)) for seed in range(8)
]


def _run_all(engine):
    total = 0.0
    for s, t in _PAIRS:
        total += engine(s, t).distance
    return total


@pytest.fixture(scope="module")
def reference_total():
    return _run_all(lambda s, t: dijkstra_path(_NET, s, t))


def test_engine_dijkstra(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: dijkstra_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_astar_euclidean(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: astar_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_bidirectional(benchmark, reference_total):
    total = benchmark(
        _run_all, lambda s, t: bidirectional_dijkstra_path(_NET, s, t)
    )
    assert total == pytest.approx(reference_total)


def test_engine_alt(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: alt_path(_NET, s, t, _INDEX))
    assert total == pytest.approx(reference_total)
