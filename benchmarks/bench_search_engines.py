"""Ablation bench: point-to-point engines the server could run.

Times Dijkstra, A* (Euclidean), bidirectional Dijkstra, ALT,
Contraction Hierarchies and the flat CSR kernels on the same long-radius
queries — the engine choice underneath the naive pairwise processor, and
a sanity anchor for every settled-node comparison in the experiment
suite.  Preprocessing (ALT landmarks, CH contraction, CSR snapshots) is
deliberately excluded from the timed query regions — it is a build-time
cost — and reported separately by the dedicated preprocessing/speedup
tests below, which cover a >= 10k-node grid and a hub-heavy scale-free
network.

The ``test_csr_*`` speedup tests are the acceptance anchors of the CSR
kernel port: >= 3x point queries for ``dijkstra-csr`` vs ``dijkstra``
and >= 2x shared-tree MSMD batches on the 10k-node grid, identical
distances required.  The CI perf gate (tools/bench_quick.py +
tools/bench_gate.py) tracks the same ratios on a smaller grid on every
push.
"""

from __future__ import annotations

import random
import time

import pytest

from timing import best_of as _best_of

from repro.network.csr import csr_snapshot
from repro.network.generators import grid_network, scale_free_network
from repro.search.alt import LandmarkIndex, alt_path
from repro.search.astar import astar_path
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.ch import ch_path, contract_network
from repro.search.dijkstra import dijkstra_path
from repro.search.kernels import (
    CSRHierarchy,
    CSRSharedTreeProcessor,
    csr_bidirectional_path,
    csr_ch_path,
    csr_dijkstra_path,
)
from repro.search.multi import SharedTreeProcessor

_NET = grid_network(50, 50, perturbation=0.1, seed=77)
_NODES = list(_NET.nodes())
_INDEX = LandmarkIndex(_NET, num_landmarks=6)
_CH = contract_network(_NET)
_CSR = csr_snapshot(_NET)
_CSR_CH = CSRHierarchy(_CH)
_PAIRS = [
    tuple(random.Random(seed).sample(_NODES, 2)) for seed in range(8)
]


def _run_all(engine):
    total = 0.0
    for s, t in _PAIRS:
        total += engine(s, t).distance
    return total


@pytest.fixture(scope="module")
def reference_total():
    return _run_all(lambda s, t: dijkstra_path(_NET, s, t))


def test_engine_dijkstra(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: dijkstra_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_astar_euclidean(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: astar_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_bidirectional(benchmark, reference_total):
    total = benchmark(
        _run_all, lambda s, t: bidirectional_dijkstra_path(_NET, s, t)
    )
    assert total == pytest.approx(reference_total)


def test_engine_alt(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: alt_path(_NET, s, t, _INDEX))
    assert total == pytest.approx(reference_total)


def test_engine_ch(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: ch_path(_CH, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_dijkstra_csr(benchmark, reference_total):
    total = benchmark(
        _run_all, lambda s, t: csr_dijkstra_path(_NET, s, t, csr=_CSR)
    )
    assert total == pytest.approx(reference_total)


def test_engine_bidirectional_csr(benchmark, reference_total):
    total = benchmark(
        _run_all, lambda s, t: csr_bidirectional_path(_NET, s, t, csr=_CSR)
    )
    assert total == pytest.approx(reference_total)


def test_engine_ch_csr(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: csr_ch_path(_CSR_CH, s, t))
    assert total == pytest.approx(reference_total)


def test_ch_preprocessing_cost(benchmark):
    """One-time contraction cost on a 625-node grid (build-time budget)."""
    net = grid_network(25, 25, perturbation=0.1, seed=5)
    graph = benchmark.pedantic(
        contract_network, args=(net,), rounds=3, iterations=1
    )
    assert graph.num_nodes == net.num_nodes


def _speedup_report(label, net, num_pairs, seed, alt_landmarks=6):
    """Time Dijkstra vs. ALT vs. CH on shared pairs; return the timings."""
    nodes = list(net.nodes())
    rng = random.Random(seed)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(num_pairs)]

    t0 = time.perf_counter()
    graph = contract_network(net)
    prep_ch = time.perf_counter() - t0
    t0 = time.perf_counter()
    index = LandmarkIndex(net, num_landmarks=alt_landmarks)
    prep_alt = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref = [dijkstra_path(net, s, t).distance for s, t in pairs]
    t_dij = time.perf_counter() - t0
    t0 = time.perf_counter()
    via_alt = [alt_path(net, s, t, index).distance for s, t in pairs]
    t_alt = time.perf_counter() - t0
    t0 = time.perf_counter()
    via_ch = [ch_path(graph, s, t).distance for s, t in pairs]
    t_ch = time.perf_counter() - t0

    for a, b, c in zip(ref, via_alt, via_ch):
        assert abs(a - b) < 1e-6 and abs(a - c) < 1e-6
    per = num_pairs / 1000.0  # ms per query
    print(
        f"\n[{label}] nodes={net.num_nodes} shortcuts={graph.num_shortcuts}\n"
        f"  preprocessing: ch={prep_ch:.1f}s alt={prep_alt:.1f}s\n"
        f"  query: dijkstra={t_dij / per:.2f}ms alt={t_alt / per:.2f}ms "
        f"ch={t_ch / per:.2f}ms\n"
        f"  speedup: ch-vs-dijkstra={t_dij / t_ch:.1f}x "
        f"ch-vs-alt={t_alt / t_ch:.1f}x"
    )
    return t_dij, t_alt, t_ch


def test_ch_speedup_grid_10k():
    """Acceptance anchor: >= 5x point-query speedup over Dijkstra on a
    >= 10k-node network, preprocessing excluded."""
    net = grid_network(100, 100, perturbation=0.1, seed=7)
    assert net.num_nodes >= 10_000
    t_dij, _t_alt, t_ch = _speedup_report("grid-100x100", net, 20, seed=1)
    assert t_dij / t_ch >= 5.0


def test_ch_speedup_scale_free():
    """Hub-heavy topology: contraction is harder (hubs are expensive to
    bypass) but query speedups are even larger than on grids."""
    net = scale_free_network(2000, attachment=2, seed=3)
    t_dij, _t_alt, t_ch = _speedup_report("scale-free-2k", net, 30, seed=2)
    assert t_dij / t_ch >= 5.0


def test_csr_point_speedup_grid_10k():
    """Acceptance anchor: >= 3x point-query speedup for the CSR Dijkstra
    kernel over dict-based Dijkstra on a >= 10k-node grid, identical
    distances (snapshot build excluded: it is a one-time cost paid by
    ``prepare``/the preprocessing cache, ~10ms for this grid)."""
    net = grid_network(100, 100, perturbation=0.1, seed=7)
    assert net.num_nodes >= 10_000
    nodes = list(net.nodes())
    rng = random.Random(1)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(20)]
    csr = csr_snapshot(net)

    t_dict, ref = _best_of(
        lambda: [dijkstra_path(net, s, t).distance for s, t in pairs]
    )
    t_csr, got = _best_of(
        lambda: [csr_dijkstra_path(net, s, t, csr=csr).distance for s, t in pairs]
    )
    assert ref == got  # identical float distances, not just approx
    speedup = t_dict / t_csr
    print(
        f"\n[csr-point grid-100x100] dict={t_dict * 1000:.0f}ms "
        f"csr={t_csr * 1000:.0f}ms speedup={speedup:.2f}x"
    )
    assert speedup >= 3.0


def test_csr_msmd_speedup_grid_10k():
    """Acceptance anchor: >= 2x MSMD (shared SSMD trees) speedup for the
    CSR kernel on the 10k-node grid, identical distances and settled
    counts."""
    net = grid_network(100, 100, perturbation=0.1, seed=7)
    nodes = list(net.nodes())
    rng = random.Random(5)
    sources = rng.sample(nodes, 4)
    destinations = rng.sample(nodes, 4)
    shared = SharedTreeProcessor()
    csr_shared = CSRSharedTreeProcessor()
    csr_shared.artifact_for(net)  # build the snapshot outside the timing

    t_dict, ref = _best_of(lambda: shared.process(net, sources, destinations))
    t_csr, got = _best_of(
        lambda: csr_shared.process(net, sources, destinations)
    )
    assert set(got.paths) == set(ref.paths)
    for pair, path in ref.paths.items():
        assert got.paths[pair].distance == path.distance
    assert got.stats.settled_nodes == ref.stats.settled_nodes
    speedup = t_dict / t_csr
    print(
        f"\n[csr-msmd grid-100x100] dict={t_dict * 1000:.0f}ms "
        f"csr={t_csr * 1000:.0f}ms speedup={speedup:.2f}x"
    )
    assert speedup >= 2.0
