"""Ablation bench: point-to-point engines the server could run.

Times Dijkstra, A* (Euclidean), bidirectional Dijkstra, ALT and
Contraction Hierarchies on the same long-radius queries — the engine
choice underneath the naive pairwise processor, and a sanity anchor for
every settled-node comparison in the experiment suite.  Preprocessing
(ALT landmarks, CH contraction) is deliberately excluded from the timed
query regions — it is a build-time cost — and reported separately by the
dedicated preprocessing/speedup tests below, which cover a >= 10k-node
grid and a hub-heavy scale-free network.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.network.generators import grid_network, scale_free_network
from repro.search.alt import LandmarkIndex, alt_path
from repro.search.astar import astar_path
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.ch import ch_path, contract_network
from repro.search.dijkstra import dijkstra_path

_NET = grid_network(50, 50, perturbation=0.1, seed=77)
_NODES = list(_NET.nodes())
_INDEX = LandmarkIndex(_NET, num_landmarks=6)
_CH = contract_network(_NET)
_PAIRS = [
    tuple(random.Random(seed).sample(_NODES, 2)) for seed in range(8)
]


def _run_all(engine):
    total = 0.0
    for s, t in _PAIRS:
        total += engine(s, t).distance
    return total


@pytest.fixture(scope="module")
def reference_total():
    return _run_all(lambda s, t: dijkstra_path(_NET, s, t))


def test_engine_dijkstra(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: dijkstra_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_astar_euclidean(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: astar_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_engine_bidirectional(benchmark, reference_total):
    total = benchmark(
        _run_all, lambda s, t: bidirectional_dijkstra_path(_NET, s, t)
    )
    assert total == pytest.approx(reference_total)


def test_engine_alt(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: alt_path(_NET, s, t, _INDEX))
    assert total == pytest.approx(reference_total)


def test_engine_ch(benchmark, reference_total):
    total = benchmark(_run_all, lambda s, t: ch_path(_CH, s, t))
    assert total == pytest.approx(reference_total)


def test_ch_preprocessing_cost(benchmark):
    """One-time contraction cost on a 625-node grid (build-time budget)."""
    net = grid_network(25, 25, perturbation=0.1, seed=5)
    graph = benchmark.pedantic(
        contract_network, args=(net,), rounds=3, iterations=1
    )
    assert graph.num_nodes == net.num_nodes


def _speedup_report(label, net, num_pairs, seed, alt_landmarks=6):
    """Time Dijkstra vs. ALT vs. CH on shared pairs; return the timings."""
    nodes = list(net.nodes())
    rng = random.Random(seed)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(num_pairs)]

    t0 = time.perf_counter()
    graph = contract_network(net)
    prep_ch = time.perf_counter() - t0
    t0 = time.perf_counter()
    index = LandmarkIndex(net, num_landmarks=alt_landmarks)
    prep_alt = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref = [dijkstra_path(net, s, t).distance for s, t in pairs]
    t_dij = time.perf_counter() - t0
    t0 = time.perf_counter()
    via_alt = [alt_path(net, s, t, index).distance for s, t in pairs]
    t_alt = time.perf_counter() - t0
    t0 = time.perf_counter()
    via_ch = [ch_path(graph, s, t).distance for s, t in pairs]
    t_ch = time.perf_counter() - t0

    for a, b, c in zip(ref, via_alt, via_ch):
        assert abs(a - b) < 1e-6 and abs(a - c) < 1e-6
    per = num_pairs / 1000.0  # ms per query
    print(
        f"\n[{label}] nodes={net.num_nodes} shortcuts={graph.num_shortcuts}\n"
        f"  preprocessing: ch={prep_ch:.1f}s alt={prep_alt:.1f}s\n"
        f"  query: dijkstra={t_dij / per:.2f}ms alt={t_alt / per:.2f}ms "
        f"ch={t_ch / per:.2f}ms\n"
        f"  speedup: ch-vs-dijkstra={t_dij / t_ch:.1f}x "
        f"ch-vs-alt={t_alt / t_ch:.1f}x"
    )
    return t_dij, t_alt, t_ch


def test_ch_speedup_grid_10k():
    """Acceptance anchor: >= 5x point-query speedup over Dijkstra on a
    >= 10k-node network, preprocessing excluded."""
    net = grid_network(100, 100, perturbation=0.1, seed=7)
    assert net.num_nodes >= 10_000
    t_dij, _t_alt, t_ch = _speedup_report("grid-100x100", net, 20, seed=1)
    assert t_dij / t_ch >= 5.0


def test_ch_speedup_scale_free():
    """Hub-heavy topology: contraction is harder (hubs are expensive to
    bypass) but query speedups are even larger than on grids."""
    net = scale_free_network(2000, attachment=2, seed=3)
    t_dij, _t_alt, t_ch = _speedup_report("scale-free-2k", net, 30, seed=2)
    assert t_dij / t_ch >= 5.0
