"""Bench E7 — fake endpoint strategy ablation.

Regenerates the E7 table and times the compact strategy's selection
(the obfuscator's hot path).
"""

from __future__ import annotations

import random

from repro.core.endpoints import CompactEndpointStrategy, SelectionContext
from repro.experiments import e7_endpoint_strategies
from repro.network.generators import grid_network
from repro.network.spatial import GridSpatialIndex


def test_e7_table(benchmark, record_result):
    result = benchmark.pedantic(e7_endpoint_strategies.run, rounds=1, iterations=1)
    record_result(result)
    rows = {row["strategy"]: row for row in result.rows}
    assert rows["compact"]["cost_inflation"] < rows["uniform"]["cost_inflation"]
    # Popularity-matched fakes defend best against the prior-aware adversary.
    assert abs(rows["popularity"]["breach_excess"]) < abs(
        rows["uniform"]["breach_excess"]
    )
    assert abs(rows["popularity"]["breach_excess"]) < abs(
        rows["compact"]["breach_excess"]
    )


def test_e7_compact_selection_time(benchmark):
    network = grid_network(40, 40, perturbation=0.1, seed=7)
    index = GridSpatialIndex(network)
    strategy = CompactEndpointStrategy()

    def select():
        context = SelectionContext(
            network=network,
            index=index,
            rng=random.Random(7),
            anchors=[41],
            counterparts=[1438],
            exclude=frozenset({41, 1438}),
        )
        return strategy.select(context, 4)

    fakes = benchmark(select)
    assert len(fakes) == 4
