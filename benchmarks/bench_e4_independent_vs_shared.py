"""Bench E4 — independent vs. shared obfuscation as batch size grows.

Regenerates the E4 table and times a full OpaqueSystem.submit in both
modes at the largest batch size.
"""

from __future__ import annotations

from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.experiments import e4_independent_vs_shared
from repro.network.generators import grid_network
from repro.workloads.queries import hotspot_queries, requests_from_queries


def test_e4_table(benchmark, record_result):
    result = benchmark.pedantic(e4_independent_vs_shared.run, rounds=1, iterations=1)
    record_result(result)
    last = result.rows[-1]
    assert last["shared_settled"] < last["indep_settled"]
    assert last["shared_breach"] < last["indep_breach"]
    assert last["shared_queries"] == 1


def _batch(network, k):
    queries = hotspot_queries(network, k, num_hotspots=2, seed=4)
    return requests_from_queries(queries, ProtectionSetting(3, 3))


def test_e4_independent_submit_time(benchmark):
    network = grid_network(40, 40, perturbation=0.1, seed=4)
    requests = _batch(network, 16)

    def run():
        return OpaqueSystem(network, mode="independent", seed=4).submit(requests)

    results = benchmark(run)
    assert len(results) == 16


def test_e4_shared_submit_time(benchmark):
    network = grid_network(40, 40, perturbation=0.1, seed=4)
    requests = _batch(network, 16)

    def run():
        return OpaqueSystem(network, mode="shared", seed=4).submit(requests)

    results = benchmark(run)
    assert len(results) == 16
