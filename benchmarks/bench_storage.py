"""Ablation bench: the CCAM-style storage simulator.

Measures (a) how buffer-pool capacity shapes page faults for a fixed
search — the knob behind every I/O number in E2 — and (b) the value of
BFS connectivity clustering versus a worst-case scattered layout.
"""

from __future__ import annotations

from repro.network.generators import grid_network
from repro.network.storage import LRUBufferPool, PagedNetwork, PageStore
from repro.search.dijkstra import dijkstra_sssp

_NET = grid_network(40, 40, perturbation=0.1, seed=88)
_SOURCE = next(_NET.nodes())


def _faults_with_buffer(capacity: int) -> int:
    paged = PagedNetwork(_NET, page_capacity=32, buffer_capacity=capacity)
    dijkstra_sssp(paged, _SOURCE)
    return paged.io.page_faults


def test_buffer_pool_ablation_table(benchmark, record_result):
    from repro.experiments.harness import ExperimentResult

    def build() -> ExperimentResult:
        result = ExperimentResult(
            experiment_id="STORAGE",
            title="Buffer pool capacity vs. page faults (full SSSP, 40x40 grid)",
            columns=["buffer_pages", "page_faults", "fault_rate"],
            expectation=(
                "faults fall monotonically with capacity; at capacity >= page "
                "count only compulsory faults remain"
            ),
        )
        store_pages = PageStore(_NET, page_capacity=32).num_pages
        for capacity in (0, 2, 8, 32, store_pages):
            paged = PagedNetwork(_NET, page_capacity=32, buffer_capacity=capacity)
            dijkstra_sssp(paged, _SOURCE)
            result.rows.append(
                {
                    "buffer_pages": capacity,
                    "page_faults": paged.io.page_faults,
                    "fault_rate": paged.io.page_faults / paged.io.logical_accesses,
                }
            )
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    store_pages = PageStore(_NET, page_capacity=32).num_pages
    record_result(result)
    faults = result.column("page_faults")
    assert faults == sorted(faults, reverse=True)
    assert faults[-1] == store_pages  # compulsory only


def test_storage_sssp_time_small_buffer(benchmark):
    faults = benchmark(_faults_with_buffer, 2)
    assert faults > 0


def test_storage_sssp_time_large_buffer(benchmark):
    faults = benchmark(_faults_with_buffer, 10_000)
    assert faults > 0


def test_lru_pool_access_throughput(benchmark):
    pool = LRUBufferPool(capacity=64)

    def churn():
        total = 0
        for i in range(10_000):
            total += pool.access(i % 256)
        return total

    assert benchmark(churn) > 0
