"""Bench E1 — breach probability vs. obfuscation power (Definition 2).

Regenerates the E1 table and times the attack-evaluation loop (the
empirical side of Definition 2).
"""

from __future__ import annotations

import pytest

from repro.core.attacks import empirical_breach_rate
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ProtectionSetting
from repro.experiments import e1_breach
from repro.network.generators import grid_network
from repro.workloads.queries import requests_from_queries, uniform_queries


def test_e1_table(benchmark, record_result):
    result = benchmark.pedantic(e1_breach.run, rounds=1, iterations=1)
    record_result(result)
    for row in result.rows:
        assert row["abs_error"] < 0.05
    breaches = result.column("analytic_breach")
    assert breaches == sorted(breaches, reverse=True)


def test_e1_attack_throughput(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=1)
    queries = uniform_queries(network, 10, seed=1)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))
    obfuscator = PathQueryObfuscator(network, seed=1)
    records = [obfuscator.obfuscate_independent(r) for r in requests]
    rate = benchmark(empirical_breach_rate, records, trials_per_record=100)
    assert rate == pytest.approx(1 / 9, abs=0.05)
