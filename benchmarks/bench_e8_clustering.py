"""Bench E8 — query clustering ablation.

Regenerates the E8 table and times the greedy clustering pass.
"""

from __future__ import annotations

from repro.core.clustering import cluster_requests
from repro.core.query import ProtectionSetting
from repro.experiments import e8_clustering
from repro.network.generators import grid_network
from repro.workloads.queries import hotspot_queries, requests_from_queries


def test_e8_table(benchmark, record_result):
    result = benchmark.pedantic(e8_clustering.run, rounds=1, iterations=1)
    record_result(result)
    clusters = result.column("clusters")
    assert clusters == sorted(clusters, reverse=True)
    assert clusters[-1] == 1  # infinite bound -> one shared query
    breaches = result.column("mean_breach")
    assert breaches[-1] <= breaches[0]


def test_e8_clustering_time(benchmark):
    network = grid_network(40, 40, perturbation=0.1, seed=8)
    queries = hotspot_queries(network, 64, num_hotspots=4, seed=8)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))
    clusters = benchmark(
        cluster_requests, requests, network, 8.0, 8.0
    )
    assert sum(c.size for c in clusters) == 64
