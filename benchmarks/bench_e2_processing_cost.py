"""Bench E2 — server cost vs. |T| (Lemma 1; naive vs. shared SSMD).

Regenerates the E2 table and times both processors on a representative
obfuscated query so the wall-clock gap backs the settled-node gap.
"""

from __future__ import annotations

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.experiments import e2_processing_cost
from repro.network.generators import grid_network
from repro.search.multi import NaivePairwiseProcessor, SharedTreeProcessor


def _representative_query():
    network = grid_network(40, 40, perturbation=0.1, seed=2)
    obfuscator = PathQueryObfuscator(network, seed=2)
    request = ClientRequest("u", PathQuery(41, 1438), ProtectionSetting(3, 6))
    record = obfuscator.obfuscate_independent(request)
    return network, list(record.query.sources), list(record.query.destinations)


def test_e2_table(benchmark, record_result):
    result = benchmark.pedantic(e2_processing_cost.run, rounds=1, iterations=1)
    record_result(result)
    for row in result.rows:
        assert row["shared_settled"] <= row["naive_settled"]
        assert row["shared_faults"] <= row["naive_faults"]
    assert result.rows[-1]["speedup"] > result.rows[0]["speedup"]


def test_e2_naive_processor_time(benchmark):
    network, sources, destinations = _representative_query()
    out = benchmark(NaivePairwiseProcessor().process, network, sources, destinations)
    assert out.num_paths == len(sources) * len(destinations)


def test_e2_shared_processor_time(benchmark):
    network, sources, destinations = _representative_query()
    out = benchmark(SharedTreeProcessor().process, network, sources, destinations)
    assert out.num_paths == len(sources) * len(destinations)
