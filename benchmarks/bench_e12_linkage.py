"""Bench E12 — linkage attack on repeated queries vs. sticky decoys.

Regenerates the E12 table and times the intersection attack itself.
"""

from __future__ import annotations

from repro.core.attacks import LinkageAttack
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.experiments import e12_linkage
from repro.network.generators import grid_network


def test_e12_table(benchmark, record_result):
    result = benchmark.pedantic(e12_linkage.run, rounds=1, iterations=1)
    record_result(result)
    fresh = result.column("fresh_breach")
    sticky = result.column("sticky_breach")
    assert fresh == sorted(fresh)          # worsens with observations
    assert len(set(sticky)) == 1           # fixpoint at the Def. 2 bound
    assert result.rows[-1]["fresh_exposed"] == 1.0
    assert result.rows[-1]["sticky_exposed"] == 0.0


def test_e12_intersection_time(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=12)
    obfuscator = PathQueryObfuscator(network, seed=12)
    request = ClientRequest(
        "alice", PathQuery(31, 600), ProtectionSetting(6, 6)
    )
    observations = [
        obfuscator.obfuscate_independent(request).query for _ in range(10)
    ]
    outcome = benchmark(LinkageAttack().intersect, observations)
    assert outcome.observations == 10
