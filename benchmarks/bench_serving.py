"""Serving-layer bench: repeated-network sessions, warm vs. cold.

The acceptance anchor for the serving stack: a workload of repeated
sessions over the *same* road network must get >= 5x faster when the
:class:`~repro.service.serving.ServingStack`'s caches are shared across
sessions (one preprocessing build + result-cache hits) than when every
session starts cold (preprocessing and search paid per session) —
``O(preprocess * sessions)`` collapsing to ``O(preprocess)``.

Also verifies the determinism contract: concurrent dispatch returns
paths byte-identical to serial evaluation.

Run by explicit path (benchmarks are excluded from tier-1 collection):

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s --benchmark-disable
"""

from __future__ import annotations

import time

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.network.generators import grid_network
from repro.service.cache import PreprocessingCache, ResultCache
from repro.service.serving import ServingConfig, ServingStack
from repro.workloads.queries import hotspot_queries, requests_from_queries

_ENGINE = "ch"
_SESSIONS = 5
_NET = grid_network(25, 25, perturbation=0.1, seed=21)
_REQUESTS = requests_from_queries(
    hotspot_queries(_NET, 12, num_hotspots=2, seed=21),
    ProtectionSetting(3, 3),
)


def _run_sessions(shared_stack: ServingStack | None) -> tuple[float, list]:
    """Run `_SESSIONS` identical sessions; return (seconds, per-session paths).

    ``shared_stack=None`` is the cold baseline: each session builds a
    fresh stack (empty caches), paying preprocessing and search itself.
    """
    outputs = []
    t0 = time.perf_counter()
    for _ in range(_SESSIONS):
        stack = (
            shared_stack
            if shared_stack is not None
            else ServingStack.from_config(_NET, ServingConfig(engine=_ENGINE))
        )
        system = OpaqueSystem(_NET, mode="independent", serving=stack, seed=3)
        results = system.submit(_REQUESTS)
        outputs.append({u: p.nodes for u, p in results.items()})
        if shared_stack is None:
            stack.close()
    return time.perf_counter() - t0, outputs


def test_serving_cache_speedup_repeated_sessions():
    """Warm shared caches must beat cold per-session setup by >= 5x."""
    t_cold, cold_outputs = _run_sessions(None)

    shared = ServingStack.from_config(
        _NET,
        ServingConfig(engine=_ENGINE),
        preprocessing_cache=PreprocessingCache(),
        result_cache=ResultCache(capacity=1024),
    )
    shared.warm()  # deploy-time build, the one preprocessing payment
    t_warm, warm_outputs = _run_sessions(shared)
    snapshot = shared.snapshot()
    shared.close()

    speedup = t_cold / t_warm
    print(
        f"\n[serving] sessions={_SESSIONS} engine={_ENGINE} "
        f"nodes={_NET.num_nodes}\n"
        f"  cold={t_cold:.2f}s warm={t_warm:.3f}s speedup={speedup:.1f}x\n"
        f"  result cache: {snapshot.result_hits} hits / "
        f"{snapshot.result_misses} misses, "
        f"preprocessing: {snapshot.preprocessing_hits} hits / "
        f"{snapshot.preprocessing_misses} misses"
    )
    assert warm_outputs == cold_outputs, "caching changed the answers"
    assert snapshot.preprocessing_misses == 1  # O(preprocess), not O(sessions)
    assert snapshot.result_hits > 0
    assert speedup >= 5.0


def test_concurrent_dispatch_matches_serial():
    """Concurrency contract: identical responses, any worker count."""
    obfuscator = PathQueryObfuscator(_NET, seed=9)
    records = obfuscator.obfuscate_batch(_REQUESTS, mode="independent")
    queries = [record.query for record in records]

    def tables(workers: int):
        with ServingStack.from_config(
            _NET,
            ServingConfig(engine=_ENGINE, max_workers=workers),
        ) as stack:
            responses = stack.answer_batch(queries)
        return [
            {pair: (p.nodes, p.distance) for pair, p in r.candidates.paths.items()}
            for r in responses
        ]

    serial = tables(1)
    for workers in (2, 8):
        assert tables(workers) == serial
