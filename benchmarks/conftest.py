"""Shared helpers for the benchmark suite.

Each ``bench_eN`` module regenerates one experiment from DESIGN.md's
per-experiment index: it times the core operation with pytest-benchmark,
asserts the paper-expected shape, and writes the full result table to
``benchmarks/results/eN.txt`` so EXPERIMENTS.md numbers are reproducible
with a single command:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
import sys

# Make `pytest benchmarks/...` work from a plain checkout (no install,
# no PYTHONPATH=src) by putting the src layout on the import path, the
# same way the CI perf job and tools/bench_quick.py resolve the package.
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_result(results_dir):
    """Write an ExperimentResult table to results/<id>.txt and echo it."""

    def _record(result) -> None:
        path = results_dir / f"{result.experiment_id.lower()}.txt"
        text = str(result)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _record
