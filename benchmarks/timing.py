"""Shared timing helper for the benchmark suites."""

from __future__ import annotations

import time


def best_of(fn, repeats: int = 3):
    """Best-of-N wall time for ratio stability on noisy CI machines.

    Returns ``(best_seconds, last_result)``.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result
