"""Acceptance bench for the partition-overlay engine.

Two anchors on the 10k-node grid, mirroring the issue's acceptance
criteria:

* ``test_overlay_point_speedup`` — the two-phase ``overlay-csr`` point
  query answers the same random pairs >= 2x faster than the flat
  ``dijkstra-csr`` kernel (preprocessing excluded on both sides,
  identical distances required; measured ~2.5-3x).
* ``test_recustomize_vs_ch_rebuild`` — after a traffic re-weight of one
  intra-cell edge, recustomizing the touched cell is >= 10x faster than
  rebuilding a Contraction Hierarchy from scratch (measured ~1000x),
  and the refreshed overlay is byte-identical to a from-scratch overlay
  build on the re-weighted network.

Run by explicit path (not part of tier-1)::

    python -m pytest benchmarks/bench_overlay.py -s --benchmark-disable
"""

from __future__ import annotations

import random
import time

from timing import best_of as _best_of

from repro.network.csr import csr_snapshot
from repro.network.generators import grid_network
from repro.search.ch import contract_network
from repro.search.kernels import csr_dijkstra_path
from repro.search.overlay import build_overlay, dumps_overlay

_NET = grid_network(100, 100, perturbation=0.1, seed=7)
_NODES = list(_NET.nodes())
_PAIRS = [tuple(random.Random(seed).sample(_NODES, 2)) for seed in range(25)]


def test_overlay_point_speedup():
    """overlay-csr >= 2x over dijkstra-csr on 10k-grid point queries."""
    csr = csr_snapshot(_NET)
    overlay = build_overlay(_NET, kernel="csr")
    t_csr, ref = _best_of(
        lambda: [csr_dijkstra_path(_NET, s, t, csr=csr).distance
                 for s, t in _PAIRS]
    )
    t_overlay, got = _best_of(
        lambda: [overlay.route(s, t).distance for s, t in _PAIRS]
    )
    assert all(abs(a - b) < 1e-9 for a, b in zip(ref, got)), (
        "overlay distances diverge from dijkstra-csr"
    )
    speedup = t_csr / t_overlay
    print(
        f"\n[bench-overlay] point queries: dijkstra-csr {t_csr * 1e3:.1f}ms, "
        f"overlay-csr {t_overlay * 1e3:.1f}ms -> {speedup:.2f}x "
        f"(cells={overlay.num_cells}, boundary={overlay.num_boundary_nodes})"
    )
    assert speedup >= 2.0, f"overlay point speedup {speedup:.2f}x < 2x"


def test_recustomize_vs_ch_rebuild():
    """Single-cell recustomization >= 10x faster than a full CH rebuild."""
    overlay = build_overlay(_NET, kernel="csr")
    u, v, w = next(_NET.edges())
    _NET.add_edge(u, v, w * 2.0)
    try:
        touched = overlay.touched_cells([(u, v)])
        assert touched, "expected the first grid edge to be intra-cell"
        t_recustomize, refreshed = _best_of(
            lambda: overlay.recustomized(touched)
        )
        assert dumps_overlay(refreshed) == dumps_overlay(
            build_overlay(_NET, kernel="csr")
        ), "recustomized overlay differs from a from-scratch build"
        t0 = time.perf_counter()
        contract_network(_NET)
        t_contract = time.perf_counter() - t0
    finally:
        _NET.add_edge(u, v, w)
    speedup = t_contract / t_recustomize
    print(
        f"\n[bench-overlay] customization: CH rebuild {t_contract:.2f}s, "
        f"recustomize {len(touched)} of {overlay.num_cells} cells "
        f"{t_recustomize * 1e3:.1f}ms -> {speedup:.0f}x"
    )
    assert speedup >= 10.0, f"recustomize speedup {speedup:.0f}x < 10x"
