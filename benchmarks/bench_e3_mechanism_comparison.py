"""Bench E3 — privacy mechanism comparison (Figure 2 as a table).

Regenerates the mechanism table and times OPAQUE vs. plain obfuscation at
matched anonymity, the paper's headline efficiency comparison.
"""

from __future__ import annotations

from repro.baselines import OpaqueMechanism, PlainObfuscationMechanism
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.experiments import e3_mechanism_comparison
from repro.network.generators import grid_network


def test_e3_table(benchmark, record_result):
    result = benchmark.pedantic(e3_mechanism_comparison.run, rounds=1, iterations=1)
    record_result(result)
    rows = {row["mechanism"]: row for row in result.rows}
    assert rows["direct"]["mean_breach"] == 1.0
    assert rows["direct"]["exact_rate"] == 1.0
    assert rows["landmark"]["exact_rate"] < 1.0
    assert rows["cloaking"]["exact_rate"] < 1.0
    assert rows["opaque"]["exact_rate"] == 1.0
    assert rows["plain-obfuscation"]["exact_rate"] == 1.0
    # OPAQUE matches plain obfuscation's privacy at lower cost.
    assert rows["opaque"]["mean_breach"] <= rows["plain-obfuscation"]["mean_breach"] + 1e-9
    assert rows["opaque"]["settled_nodes"] < rows["plain-obfuscation"]["settled_nodes"]


def _request():
    return ClientRequest("alice", PathQuery(10, 880), ProtectionSetting(3, 3))


def test_e3_opaque_answer_time(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=3)
    mechanism = OpaqueMechanism(network, seed=3)
    outcome = benchmark(mechanism.answer, _request())
    assert outcome.exact


def test_e3_plain_obfuscation_answer_time(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=3)
    mechanism = PlainObfuscationMechanism(network, num_fakes=8, seed=3)
    outcome = benchmark(mechanism.answer, _request())
    assert outcome.exact
