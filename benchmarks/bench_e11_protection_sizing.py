"""Bench E11 — (f_S, f_T) factorization cost at fixed anonymity.

Regenerates the E11 table and times the planner (it must be cheap enough
to run per request).
"""

from __future__ import annotations

from repro.core.planner import plan_protection
from repro.core.query import PathQuery
from repro.experiments import e11_protection_sizing
from repro.network.generators import grid_network


def test_e11_table(benchmark, record_result):
    result = benchmark.pedantic(e11_protection_sizing.run, rounds=1, iterations=1)
    record_result(result)
    settled = result.column("measured_settled")
    # Cost must grow monotonically as the anonymity product shifts from
    # the destination side to the source side.
    assert settled == sorted(settled)
    # The planner's top pick must be the measured-cheapest split.
    best_row = min(result.rows, key=lambda r: r["measured_settled"])
    assert best_row["planner_rank"] == 1


def test_e11_planner_time(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=11)
    nodes = list(network.nodes())
    query = PathQuery(nodes[31], nodes[600])
    plans = benchmark(
        plan_protection, network, query, 1 / 12, max_side=12
    )
    assert plans[0].setting.f_s <= plans[0].setting.f_t
