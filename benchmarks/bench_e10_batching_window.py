"""Bench E10 — batching window vs. latency/privacy/cost (extension).

Regenerates the E10 table and times a full service run at a mid-size
window.
"""

from __future__ import annotations

from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.experiments import e10_batching_window
from repro.network.generators import grid_network
from repro.service.simulator import BatchingObfuscationService, poisson_arrivals
from repro.workloads.queries import hotspot_queries, requests_from_queries


def test_e10_table(benchmark, record_result):
    result = benchmark.pedantic(e10_batching_window.run, rounds=1, iterations=1)
    record_result(result)
    latencies = result.column("mean_latency_s")
    breaches = result.column("mean_breach")
    assert latencies == sorted(latencies)
    assert breaches == sorted(breaches, reverse=True)
    assert result.rows[-1]["settled_cold"] <= result.rows[0]["settled_cold"]
    for row in result.rows:
        # Coalescing the window's sessions never exceeds solo dispatch.
        assert row["settled_coalesced"] <= row["settled_solo"]


def test_e10_service_run_time(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=10)
    queries = hotspot_queries(network, 32, num_hotspots=2, seed=10)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))
    arrivals = poisson_arrivals(requests, rate=2.0, seed=10)

    def run():
        system = OpaqueSystem(network, mode="shared", seed=10)
        service = BatchingObfuscationService(system, window=2.0)
        return service.run(arrivals)

    _results, report = benchmark(run)
    assert len(report.latencies_by_user) == 32
