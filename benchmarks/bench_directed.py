"""Ablation bench: one-way-street (directed) search stack.

Times the point-to-point engines and the side-selecting processor on the
alternating one-way grid, confirming that directed support costs no
asymptotic penalty over the undirected stack.
"""

from __future__ import annotations

import random

import pytest

from repro.network.generators import one_way_grid_network
from repro.search.alt import LandmarkIndex, alt_path
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import SharedTreeProcessor, SideSelectingProcessor

_NET = one_way_grid_network(40, 40, perturbation=0.05, seed=99)
_NODES = list(_NET.nodes())
_PAIRS = [tuple(random.Random(seed).sample(_NODES, 2)) for seed in range(6)]
_INDEX = LandmarkIndex(_NET, num_landmarks=4)


def _total(engine) -> float:
    return sum(engine(s, t).distance for s, t in _PAIRS)


@pytest.fixture(scope="module")
def reference_total():
    return _total(lambda s, t: dijkstra_path(_NET, s, t))


def test_directed_dijkstra(benchmark, reference_total):
    total = benchmark(_total, lambda s, t: dijkstra_path(_NET, s, t))
    assert total == pytest.approx(reference_total)


def test_directed_bidirectional(benchmark, reference_total):
    total = benchmark(
        _total, lambda s, t: bidirectional_dijkstra_path(_NET, s, t)
    )
    assert total == pytest.approx(reference_total)


def test_directed_alt(benchmark, reference_total):
    total = benchmark(_total, lambda s, t: alt_path(_NET, s, t, _INDEX))
    assert total == pytest.approx(reference_total)


def test_directed_side_selecting_processor(benchmark):
    sources = _NODES[10:16]
    destinations = _NODES[800:802]
    out = benchmark(
        SideSelectingProcessor().process, _NET, sources, destinations
    )
    reference = SharedTreeProcessor().process(_NET, sources, destinations)
    for pair, path in out.paths.items():
        assert path.distance == pytest.approx(reference.paths[pair].distance)
