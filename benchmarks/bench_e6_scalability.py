"""Bench E6 — server cost vs. network size for all MSMD processors.

Regenerates the E6 table and times the shared processor on the largest
grid in the sweep.
"""

from __future__ import annotations

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.experiments import e6_scalability
from repro.network.generators import grid_network
from repro.search.multi import SharedTreeProcessor


def test_e6_table(benchmark, record_result):
    result = benchmark.pedantic(e6_scalability.run, rounds=1, iterations=1)
    record_result(result)
    for row in result.rows:
        assert row["shared_settled"] <= row["naive_settled"]
        assert row["side_settled"] <= row["shared_settled"]
    assert result.rows[-1]["naive_settled"] > result.rows[0]["naive_settled"]


def test_e6_shared_processor_on_large_grid(benchmark):
    network = grid_network(50, 50, perturbation=0.1, seed=6)
    obfuscator = PathQueryObfuscator(network, seed=6)
    record = obfuscator.obfuscate_independent(
        ClientRequest("u", PathQuery(51, 2448), ProtectionSetting(4, 2))
    )
    out = benchmark(
        SharedTreeProcessor().process,
        network,
        list(record.query.sources),
        list(record.query.destinations),
    )
    assert out.num_paths == 8
