"""Bench E5 — collusion resistance: independent vs. shared.

Regenerates the E5 table and times the collusion-attack evaluation.
"""

from __future__ import annotations

from repro.core.attacks import CollusionAttack
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ProtectionSetting
from repro.experiments import e5_collusion
from repro.network.generators import grid_network
from repro.workloads.queries import requests_from_queries, uniform_queries


def test_e5_table(benchmark, record_result):
    result = benchmark.pedantic(e5_collusion.run, rounds=1, iterations=1)
    record_result(result)
    for row in result.rows:
        assert row["indep_breach_pool"] == 1.0
        assert row["shared_breach_pool"] < 1.0
    shared = [row["shared_breach_pool"] for row in result.rows]
    assert shared == sorted(shared)


def test_e5_collusion_attack_time(benchmark):
    network = grid_network(30, 30, perturbation=0.1, seed=5)
    queries = uniform_queries(network, 8, seed=5)
    requests = requests_from_queries(queries, ProtectionSetting(8, 8))
    obfuscator = PathQueryObfuscator(network, seed=5)
    record = obfuscator.obfuscate_shared(requests)
    attack = CollusionAttack(
        colluding_users=[r.user for r in requests[1:5]], knows_fake_pool=True
    )
    outcome = benchmark(attack.attack, record, requests[0])
    assert not outcome.exposed
