"""Cross-session coalescing bench: 8 concurrent sessions, shared passes.

The acceptance anchor for the query coalescer: 8 concurrent sessions
whose obfuscated queries overlap (hot origins and hotspot destinations —
the mix sticky decoys produce for recurring traffic, see E12) must get
>= 2x faster when the :class:`~repro.service.serving.QueryCoalescer`
merges their concurrent queries into shared union kernel passes than
under per-session dispatch — while every session's responses stay
byte-identical to the uncoalesced answers.

Run by explicit path (benchmarks are excluded from tier-1 collection):

    PYTHONPATH=src python -m pytest benchmarks/bench_coalescing.py -s --benchmark-disable
"""

from __future__ import annotations

import threading
import time

from repro.network.generators import grid_network
from repro.service.cache import PreprocessingCache
from repro.service.serving import CoalesceConfig, ServingConfig, ServingStack
from repro.workloads.queries import overlapping_session_queries

_SESSIONS = 8
_QUERIES_PER_SESSION = 6
_NET = grid_network(30, 30, perturbation=0.1, seed=77)
_PREPROCESSING = PreprocessingCache()  # shared: pay contraction once


def _session_workloads():
    """The canonical hot-pool workload, shared with the CI perf gate."""
    return overlapping_session_queries(
        _NET,
        sessions=_SESSIONS,
        queries_per_session=_QUERIES_PER_SESSION,
        seed=4,
    )


def _run_concurrent(stack: ServingStack, sessions) -> tuple[float, list]:
    """Answer every session's batch from its own thread; returns (s, tables)."""
    outputs: list = [None] * len(sessions)

    def session(i: int) -> None:
        responses = stack.answer_batch(sessions[i])
        outputs[i] = [
            {
                pair: (path.nodes, path.distance)
                for pair, path in response.candidates.paths.items()
            }
            for response in responses
        ]

    threads = [
        threading.Thread(target=session, args=(i,))
        for i in range(len(sessions))
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0, outputs


def _bench_engine(engine: str) -> None:
    sessions = _session_workloads()
    total = _SESSIONS * _QUERIES_PER_SESSION

    solo = ServingStack.from_config(
        _NET,
        ServingConfig(engine=engine),
        preprocessing_cache=_PREPROCESSING,
    )
    solo.warm()
    t_solo, solo_outputs = _run_concurrent(solo, sessions)
    settled_solo = solo.server.counters.stats.settled_nodes
    solo.close()

    coalesced = ServingStack.from_config(
        _NET,
        ServingConfig(engine=engine, coalesce=CoalesceConfig(max_batch=total, max_wait_s=2.0)),
        preprocessing_cache=_PREPROCESSING,
    )
    coalesced.warm()
    t_co, co_outputs = _run_concurrent(coalesced, sessions)
    settled_co = coalesced.server.counters.stats.settled_nodes
    snapshot = coalesced.coalesce_snapshot()
    coalesced.close()

    speedup = t_solo / t_co
    print(
        f"\n[coalescing] engine={engine} sessions={_SESSIONS} "
        f"queries={total} nodes={_NET.num_nodes}\n"
        f"  per-session={t_solo * 1e3:.1f}ms coalesced={t_co * 1e3:.1f}ms "
        f"speedup={speedup:.1f}x\n"
        f"  settled: solo={settled_solo} coalesced={settled_co}\n"
        f"  windows={snapshot.windows} (max {snapshot.max_window}), "
        f"coalesced_queries={snapshot.coalesced_queries}, "
        f"union_pairs={snapshot.union_pairs}"
    )
    # Byte-identical per-session responses: same pairs, same order, same
    # paths, same distances.
    assert co_outputs == solo_outputs, "coalescing changed a session's answers"
    assert snapshot.coalesced_queries > 0
    assert settled_co <= settled_solo
    assert speedup >= 2.0


def test_coalescing_speedup_shared_trees():
    """dijkstra-csr: union shared trees must beat per-session dispatch >= 2x."""
    _bench_engine("dijkstra-csr")


def test_coalescing_speedup_ch_buckets():
    """ch-csr: one union bucket pass must beat per-session dispatch >= 2x."""
    _bench_engine("ch-csr")
