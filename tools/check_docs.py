#!/usr/bin/env python
"""Docs gate: internal links, doctests, and public-docstring audit.

Run from the repo root (CI's docs job does exactly this):

    PYTHONPATH=src python tools/check_docs.py

Three checks, all stdlib-only:

1. every relative markdown link in ``docs/*.md`` and ``README.md``
   resolves to an existing file;
2. ``doctest`` passes on the doctest-bearing modules;
3. every public module/class/function/method in the documented modules
   (the serving layer, the engine registry, the MSMD processors, the
   workload replay format) has a docstring — the stdlib mirror of
   ruff's D1 rules, so the gate also runs where ruff isn't installed.
"""

from __future__ import annotations

import ast
import doctest
import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

MARKDOWN_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

DOCTEST_MODULES = [
    "repro",
    "repro.service.cache",
    "repro.obs.metrics",
]

DOCSTRING_AUDIT_FILES = [
    "src/repro/network/csr.py",
    "src/repro/network/partition.py",
    "src/repro/obs/__init__.py",
    "src/repro/obs/metrics.py",
    "src/repro/obs/record.py",
    "src/repro/obs/trace.py",
    "src/repro/search/__init__.py",
    "src/repro/search/kernels.py",
    "src/repro/search/multi.py",
    "src/repro/search/overlay.py",
    "src/repro/search/vectorized.py",
    "src/repro/service/__init__.py",
    "src/repro/service/blob.py",
    "src/repro/service/cache.py",
    "src/repro/service/gateway.py",
    "src/repro/service/pipeline.py",
    "src/repro/service/serving.py",
    "src/repro/service/simulator.py",
    "src/repro/service/stats.py",
    "src/repro/service/wire.py",
    "src/repro/workloads/loadgen.py",
    "src/repro/workloads/replay.py",
    "src/repro/workloads/scenarios.py",
]

# Dunders where a docstring adds nothing over the data-model contract.
_EXEMPT = {"__init__", "__repr__", "__str__", "__post_init__"}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links() -> list[str]:
    """Return one error string per broken relative markdown link."""
    errors = []
    for md in MARKDOWN_FILES:
        for target in _LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = (md.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors


def run_doctests() -> list[str]:
    """Return one error string per failing doctest module."""
    errors = []
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module)
        if result.failed:
            errors.append(
                f"{name}: {result.failed}/{result.attempted} doctests failed"
            )
    return errors


def _audit_node(node: ast.AST, where: str, errors: list[str]) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            name = child.name
            public = not name.startswith("_") or (
                name.startswith("__") and name.endswith("__")
                and name not in _EXEMPT
            )
            if public and ast.get_docstring(child) is None:
                errors.append(f"{where}: missing docstring on {name!r}")
            if isinstance(child, ast.ClassDef) and public:
                _audit_node(child, f"{where}::{name}", errors)


def audit_docstrings() -> list[str]:
    """Return one error string per public symbol lacking a docstring."""
    errors: list[str] = []
    for rel in DOCSTRING_AUDIT_FILES:
        path = REPO / rel
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            errors.append(f"{rel}: missing module docstring")
        _audit_node(tree, rel, errors)
    return errors


def main() -> int:
    """Run all three checks; print a summary and return an exit code."""
    failures = []
    for label, check in (
        ("links", check_links),
        ("doctests", run_doctests),
        ("docstrings", audit_docstrings),
    ):
        errors = check()
        status = "ok" if not errors else f"{len(errors)} error(s)"
        print(f"[check_docs] {label}: {status}")
        for error in errors:
            print(f"  - {error}")
        failures.extend(errors)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
