#!/usr/bin/env python
"""Benchmark regression gate: compare a bench run against the baseline.

Reads two JSON documents produced by ``tools/bench_quick.py`` — the
fresh ``BENCH_PR.json`` and the committed ``benchmarks/baseline.json``
— and fails (exit code 1) when any tracked metric regressed by more
than the tolerance (default 25%):

* ``direction: higher`` metrics (speedup ratios) regress when
  ``value < baseline * (1 - tolerance)``;
* ``direction: lower`` metrics (settled-node counters) regress when
  ``value > baseline * (1 + tolerance)``;
* metrics whose baseline entry carries a ``max`` (or ``min``) field are
  gated *absolutely* — ``value <= max`` / ``value >= min`` — ignoring
  the relative tolerance (used for quantities with a hard budget, like
  ``telemetry_overhead_pct`` or ``throughput_under_churn_pct``, where a
  multiplicative band around a noisy baseline is the wrong shape).

Metrics present in the run but absent from the baseline are reported as
``new`` and never gated (commit a refreshed baseline to start tracking
them); metrics present only in the baseline fail the gate — a silently
dropped metric is how perf coverage rots.  Usage::

    python tools/bench_quick.py -o BENCH_PR.json
    python tools/bench_gate.py BENCH_PR.json benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: str) -> dict:
    doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != 1 or "metrics" not in doc:
        raise SystemExit(f"{path}: not a bench_quick schema-1 document")
    return doc


def compare(run: dict, baseline: dict, tolerance: float) -> tuple[list[str], list[str]]:
    """Compare two bench documents; returns ``(report_lines, failures)``."""
    lines: list[str] = []
    failures: list[str] = []
    run_metrics = run["metrics"]
    base_metrics = baseline["metrics"]
    if run.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: run={run.get('mode')!r} "
            f"baseline={baseline.get('mode')!r} (not comparable)"
        )
    for name, base in sorted(base_metrics.items()):
        got = run_metrics.get(name)
        if got is None:
            failures.append(f"{name}: tracked metric missing from the run")
            continue
        value, ref = got["value"], base["value"]
        direction = base.get("direction", "lower")
        absolute_max = base.get("max")
        absolute_min = base.get("min")
        if absolute_max is not None:
            ok = value <= absolute_max
            verdict = f"<= {absolute_max:.3f} (absolute)"
        elif absolute_min is not None:
            ok = value >= absolute_min
            verdict = f">= {absolute_min:.3f} (absolute)"
        elif direction == "higher":
            bound = ref * (1.0 - tolerance)
            ok = value >= bound
            verdict = f">= {bound:.3f}"
        else:
            bound = ref * (1.0 + tolerance)
            ok = value <= bound
            verdict = f"<= {bound:.3f}"
        status = "ok " if ok else "REGRESSION"
        lines.append(
            f"  {status:10s} {name:32s} value={value:<10} "
            f"baseline={ref:<10} gate {verdict}"
        )
        if not ok:
            failures.append(
                f"{name}: {value} vs baseline {ref} "
                f"(allowed {verdict}, {direction} is better)"
            )
    for name in sorted(set(run_metrics) - set(base_metrics)):
        lines.append(
            f"  new        {name:32s} value={run_metrics[name]['value']} "
            f"(not gated; refresh the baseline to track)"
        )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run", help="fresh BENCH_PR.json from bench_quick")
    parser.add_argument("baseline", help="committed benchmarks/baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression per metric (default 0.25)",
    )
    args = parser.parse_args(argv)
    run = _load(args.run)
    baseline = _load(args.baseline)
    lines, failures = compare(run, baseline, args.tolerance)
    print(
        f"[bench-gate] {args.run} (grid {run.get('grid')}) vs "
        f"{args.baseline}, tolerance {args.tolerance:.0%}"
    )
    for line in lines:
        print(line)
    if failures:
        print(f"[bench-gate] FAILED: {len(failures)} regression(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[bench-gate] OK: no tracked metric regressed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
