#!/usr/bin/env python
"""Thin wrapper over the HTTP load generator (``repro loadgen``).

Lets CI and shell scripts drive the gateway load generator without an
installed console script::

    PYTHONPATH=src python tools/loadgen.py grid:12x12 uniform \
        --host 127.0.0.1 --port 8080 --clients 4 --repeats 2

All arguments are forwarded verbatim to the ``repro loadgen``
subcommand (see ``repro.cli``); exit code is non-zero when any request
errored, so a failing gateway fails the calling job.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    raise SystemExit(main(["loadgen", *sys.argv[1:]]))
