#!/usr/bin/env python
"""Quick-mode benchmark runner for the CI perf gate.

Measures a small tracked-metric suite in a few seconds and writes it as
``BENCH_PR.json``; ``tools/bench_gate.py`` then compares that file
against the committed ``benchmarks/baseline.json`` and fails the build
on a >25% regression.  Two metric kinds are tracked:

* **counters** (``settled_*``) — deterministic algorithmic work, exact
  on every machine; any change is a real behavior change;
* **ratios** (``speedup_*``) — same-machine wall-clock ratios (best-of-N
  on both sides), which transfer across hardware far better than
  absolute times;
* **budgets** (``telemetry_overhead_pct``, ``staleness_p95_ms``,
  ``throughput_under_churn_pct``) — quantities with a hard absolute
  ceiling or floor, gated by a ``max``/``min`` field on the baseline
  entry instead of the relative tolerance.

Absolute wall-clock values are recorded for humans under ``info`` but
never gated.  Usage::

    python tools/bench_quick.py -o BENCH_PR.json          # quick mode
    python tools/bench_quick.py --full -o BENCH_FULL.json # 10k-node grid
    python tools/bench_quick.py --grid200 -o BENCH_200.json

``--grid200`` runs a separate 40k-node tier (``mode: "grid200"``, gated
against ``benchmarks/baseline_200.json``) for the wins that only show up
at scale: the batched numpy MSMD sweep vs the scalar CSR kernel, the
nested two-level overlay vs the flat one on far pairs, and the
mmap-backed cold shard warm-up from a spilled CSR blob.  It requires
numpy — the quick suite stays numpy-free so both CI matrix legs run it.

Refreshing the committed baselines after an intentional perf change::

    python tools/bench_quick.py -o benchmarks/baseline.json
    python tools/bench_quick.py --grid200 -o benchmarks/baseline_200.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import time

_REPO = pathlib.Path(__file__).resolve().parent.parent
for _entry in (str(_REPO / "src"), str(_REPO / "benchmarks")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from timing import best_of as _best_of  # noqa: E402

from repro.network.csr import csr_snapshot  # noqa: E402
from repro.network.generators import grid_network  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.record import MetricsRecorder, recording  # noqa: E402
from repro.search.ch import contract_network  # noqa: E402
from repro.search.ch.manytomany import ch_many_to_many  # noqa: E402
from repro.search.dijkstra import dijkstra_path  # noqa: E402
from repro.search.kernels import (  # noqa: E402
    CSRHierarchy,
    CSRSharedTreeProcessor,
    csr_ch_many_to_many,
    csr_dijkstra_path,
)
from repro.search.multi import SharedTreeProcessor  # noqa: E402
from repro.search.overlay import build_overlay  # noqa: E402
from repro.core.query import ObfuscatedPathQuery  # noqa: E402
from repro.search.result import SearchStats  # noqa: E402
from repro.service.cache import PreprocessingCache, ResultCache  # noqa: E402
from repro.service.gateway import GatewayConfig, GatewayServer  # noqa: E402
from repro.service.pipeline import TrafficPipeline  # noqa: E402
from repro.service.serving import (
    CoalesceConfig,
    ServingConfig,
    ServingStack  # noqa: E402,
)
from repro.service.wire import RouteRequest, RouteResponse  # noqa: E402
from repro.workloads.loadgen import run_load  # noqa: E402
from repro.workloads.queries import overlapping_session_queries  # noqa: E402
from repro.workloads.scenarios import uniform_churn  # noqa: E402


def run_suite(full: bool = False, repeats: int = 3) -> dict:
    """Run the tracked-metric suite; returns the BENCH json document."""
    side = 100 if full else 40
    num_pairs = 20 if full else 12
    net = grid_network(side, side, perturbation=0.1, seed=7)
    nodes = list(net.nodes())
    rng = random.Random(1)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(num_pairs)]

    t0 = time.perf_counter()
    csr = csr_snapshot(net)
    t_snapshot = time.perf_counter() - t0

    # Point queries: dict Dijkstra vs the CSR kernel.
    t_dict, ref = _best_of(
        lambda: [dijkstra_path(net, s, t).distance for s, t in pairs], repeats
    )
    t_csr, got = _best_of(
        lambda: [csr_dijkstra_path(net, s, t, csr=csr).distance for s, t in pairs],
        repeats,
    )
    if ref != got:
        raise SystemExit("FATAL: dijkstra-csr distances diverge from dijkstra")

    # Deterministic algorithmic-work counter for the same workload.
    stats = SearchStats()
    for s, t in pairs:
        csr_dijkstra_path(net, s, t, csr=csr, stats=stats)
    settled_point = stats.settled_nodes

    # Telemetry overhead: the same point workload with a *recording*
    # MetricsRecorder installed vs the disabled default.  Recording
    # upper-bounds the disabled hook cost (one module-attribute read and
    # one branch per kernel invocation), and a same-machine wall ratio
    # transfers across hardware; the gate holds it under an absolute
    # 5%.  Each round times the off and on passes back-to-back and the
    # metric takes the *cleanest round's* ratio, so sustained machine
    # noise (GC, CPU contention) spanning a whole timing block cannot
    # masquerade as hook cost — any one quiet round yields the truth.
    overhead_repeats = max(repeats * 3, 9)
    recorder = MetricsRecorder(MetricsRegistry())

    def _hooks_off():
        return [
            csr_dijkstra_path(net, s, t, csr=csr).distance for s, t in pairs
        ]

    def _with_recorder():
        with recording(recorder):
            return [
                csr_dijkstra_path(net, s, t, csr=csr).distance for s, t in pairs
            ]

    t_hooks_off = t_hooks_on = float("inf")
    best_ratio = float("inf")
    for _ in range(overhead_repeats):
        start = time.perf_counter()
        _hooks_off()
        round_off = time.perf_counter() - start
        start = time.perf_counter()
        _with_recorder()
        round_on = time.perf_counter() - start
        t_hooks_off = min(t_hooks_off, round_off)
        t_hooks_on = min(t_hooks_on, round_on)
        best_ratio = min(best_ratio, round_on / round_off)
    telemetry_overhead = round(max(0.0, (best_ratio - 1.0) * 100.0), 2)

    # MSMD: the paper's shared SSMD trees, dict vs CSR.
    rng2 = random.Random(5)
    sources = rng2.sample(nodes, 4)
    destinations = rng2.sample(nodes, 4)
    shared = SharedTreeProcessor()
    csr_shared = CSRSharedTreeProcessor()
    csr_shared.artifact_for(net)
    t_msmd_dict, ref_msmd = _best_of(
        lambda: shared.process(net, sources, destinations), repeats
    )
    t_msmd_csr, got_msmd = _best_of(
        lambda: csr_shared.process(net, sources, destinations), repeats
    )
    for pair, path in ref_msmd.paths.items():
        if got_msmd.paths[pair].distance != path.distance:
            raise SystemExit("FATAL: CSR MSMD distances diverge from shared trees")

    # CH many-to-many: dict buckets vs CSR buckets (one shared contraction,
    # also timed as the "full rebuild" a traffic update would cost a CH
    # deployment — the denominator of the recustomization ratio below).
    t_contract, contracted = _best_of(lambda: contract_network(net), repeats)
    hierarchy = CSRHierarchy(contracted)
    t_m2m_dict, _ = _best_of(
        lambda: ch_many_to_many(contracted, sources, destinations), repeats
    )
    t_m2m_csr, _ = _best_of(
        lambda: csr_ch_many_to_many(hierarchy, sources, destinations), repeats
    )
    ch_stats = SearchStats()
    csr_ch_many_to_many(hierarchy, sources, destinations, stats=ch_stats)

    # Partition overlay: two-phase point queries vs the flat Dijkstra
    # kernel on the same pairs, plus the incremental-customization win —
    # recustomizing the single cell containing a re-weighted edge vs the
    # full CH contraction above.  Cut/boundary/clique counters are
    # deterministic partitioner outputs; any change is a layout change.
    overlay = build_overlay(net, kernel="csr")
    t_overlay, got_overlay = _best_of(
        lambda: [overlay.route(s, t).distance for s, t in pairs], repeats
    )
    if any(abs(a - b) > 1e-9 for a, b in zip(ref, got_overlay)):
        raise SystemExit("FATAL: overlay-csr distances diverge from dijkstra")
    overlay_stats = SearchStats()
    for s, t in pairs:
        overlay.route(s, t, stats=overlay_stats)
    reweight_edge = next(
        (u, v, w) for u, v, w in net.edges()
        if overlay.touched_cells([(u, v)])
    )
    u, v, w = reweight_edge
    net.add_edge(u, v, w * 2.0)
    touched = overlay.touched_cells([(u, v)])
    t_recustomize, refreshed = _best_of(
        lambda: overlay.recustomized(touched), repeats
    )
    net.add_edge(u, v, w)  # restore: later sections measure the same net

    # Cross-session coalescing: 8 sessions with hot origin/destination
    # pools (the same canonical workload bench_coalescing.py anchors
    # on), per-session dispatch vs one shared union pass.  Result
    # caching is disabled on both stacks so every timing repeat pays the
    # same cold search work.
    session_batches = overlapping_session_queries(net, seed=9)
    total_queries = sum(len(batch) for batch in session_batches)
    preprocessing = PreprocessingCache()

    def run_sessions(coalesce: CoalesceConfig | None):
        stack = ServingStack.from_config(
            net,
            ServingConfig(engine="dijkstra-csr", coalesce=coalesce),
            preprocessing_cache=preprocessing,
            result_cache=ResultCache(capacity=0),
        )
        stack.warm()
        try:
            if coalesce is None:
                for batch in session_batches:
                    stack.answer_batch(batch)
            else:
                # One answer_batch call holds every session's queries, so
                # the count threshold closes the window inline --
                # deterministic, no threads, no waiting.
                stack.answer_batch(
                    [query for batch in session_batches for query in batch]
                )
            return stack.coalesce_snapshot()
        finally:
            stack.close()

    t_sessions, _ = _best_of(lambda: run_sessions(None), repeats)
    t_coalesced, coalesce_snapshot = _best_of(
        lambda: run_sessions(
            CoalesceConfig(max_batch=total_queries, max_wait_s=60.0)
        ),
        repeats,
    )

    # Live traffic pipeline: answer_batch throughput while the
    # background RecustomizeWorker churns cells, against an idle
    # (pipeline started, zero events) baseline on a fresh copy of the
    # same grid.  The result cache is off on both sides — churn changes
    # the serving fingerprint on every epoch install, so a cache-hit
    # baseline would compare cached-table lookups against real searches.
    # Both metrics are absolute gates (a hard budget, not a ratio to a
    # noisy committed number): staleness p95 must stay under its
    # ceiling, and churned throughput must keep an absolute floor of
    # the idle baseline measured in the same process.  Each round times
    # idle and churn back-to-back and the metric takes the *cleanest
    # round's* ratio — the same trick the telemetry-overhead metric
    # uses — so sustained machine noise spanning one whole run cannot
    # masquerade as churn cost.  Even two events in a 0.6s window is
    # ~200 churned cells per minute, orders of magnitude above the 5%
    # cells-per-minute churn floor the serving SLO targets.
    pipeline_duration_s = 0.6
    churn_events_n = 3 if full else 2
    pipeline_rounds = 3
    rng3 = random.Random(11)
    pipeline_queries = [
        ObfuscatedPathQuery(
            tuple(rng3.sample(nodes, 3)), tuple(rng3.sample(nodes, 3))
        )
        for _ in range(16)
    ]

    def run_pipeline(churn_events):
        stack = ServingStack.from_config(
            net.copy(),
            ServingConfig(engine="overlay-csr", max_workers=2),
            result_cache=ResultCache(capacity=0),
        )
        stack.warm()
        pipeline = TrafficPipeline(stack, debounce_ms=2.0)
        pipeline.start()
        served = cursor = 0
        start = time.perf_counter()
        try:
            while True:
                elapsed = time.perf_counter() - start
                if elapsed >= pipeline_duration_s:
                    break
                due_ms = elapsed * 1000.0
                while (
                    cursor < len(churn_events)
                    and churn_events[cursor].at_ms <= due_ms
                ):
                    pipeline.publish(churn_events[cursor])
                    cursor += 1
                stack.answer_batch(
                    [
                        pipeline_queries[(served + i) % len(pipeline_queries)]
                        for i in range(8)
                    ]
                )
                served += 8
            elapsed = time.perf_counter() - start
        finally:
            pipeline.stop()
            stack.close()
        return served / elapsed, pipeline.snapshot()

    churn_schedule = uniform_churn(
        net,
        duration_ms=round(pipeline_duration_s * 1000.0),
        events=churn_events_n,
        seed=13,
    )
    qps_idle = qps_churn = 0.0
    churn_ratio = 0.0
    pipe_snap = None
    for _ in range(pipeline_rounds):
        round_idle, _ = run_pipeline([])
        round_churn, round_snap = run_pipeline(churn_schedule)
        if round_churn / round_idle > churn_ratio:
            churn_ratio = round_churn / round_idle
            qps_idle, qps_churn, pipe_snap = round_idle, round_churn, round_snap
    cells_per_min = (
        pipe_snap.cells_recustomized / (pipeline_duration_s / 60.0)
    )

    # Network gateway: RPS and tail latency over real HTTP through the
    # asyncio front-end, single-process vs shard workers.  Every
    # response body captured during both runs must be byte-identical to
    # the in-process answer_batch encoding of the same query (FATAL,
    # not gated — a divergence is a correctness bug, not a regression).
    # The multi-process ratio is normalized per usable core so the gate
    # transfers between the 1-CPU CI box (ratio ~1 is ideal there) and
    # many-core hosts (ratio ~workers is ideal).
    gateway_engine = "dijkstra-csr"
    gateway_queries = pipeline_queries
    gateway_requests = [RouteRequest.from_query(q) for q in gateway_queries]
    gateway_repeats = 3 if full else 2
    with ServingStack.from_config(
        net,
        ServingConfig(engine=gateway_engine),
        preprocessing_cache=preprocessing,
        result_cache=ResultCache(capacity=0),
    ) as identity_stack:
        expected_payloads = sorted(
            RouteResponse.from_server(r).payload_json()
            for r in identity_stack.answer_batch(gateway_queries)
        ) * gateway_repeats

    def run_gateway_load(workers: int):
        label = f"{workers}-worker" if workers else "single-process"
        with GatewayServer(
            net,
            ServingConfig(engine=gateway_engine),
            GatewayConfig(workers=workers),
        ) as server:
            best = None
            for _ in range(repeats):
                report = run_load(
                    server.host,
                    server.port,
                    gateway_requests,
                    clients=4,
                    repeats=gateway_repeats,
                    capture_payloads=True,
                )
                if report.errors:
                    raise SystemExit(
                        f"FATAL: gateway {label} run returned "
                        f"{report.errors} HTTP errors"
                    )
                got = sorted(
                    RouteResponse.from_json(p).payload_json()
                    for p in report.payloads
                )
                if sorted(got) != sorted(expected_payloads):
                    raise SystemExit(
                        f"FATAL: gateway {label} responses diverge from "
                        "in-process answer_batch"
                    )
                if best is None or report.rps > best.rps:
                    best = report
            return best

    gateway_single = run_gateway_load(0)
    gateway_workers = 4
    gateway_multi = run_gateway_load(gateway_workers)
    cores = os.cpu_count() or 1
    mp_speedup_per_core = (
        (gateway_multi.rps / gateway_single.rps)
        / min(gateway_workers, cores)
    )

    metrics = {
        "speedup_point_dijkstra_csr": {
            "value": round(t_dict / t_csr, 3),
            "direction": "higher",
            "desc": "point-query wall ratio, dijkstra vs dijkstra-csr",
        },
        "speedup_msmd_shared_csr": {
            "value": round(t_msmd_dict / t_msmd_csr, 3),
            "direction": "higher",
            "desc": "shared-SSMD-tree wall ratio, dict vs CSR kernel",
        },
        "settled_point_dijkstra_csr": {
            "value": settled_point,
            "direction": "lower",
            "desc": "nodes settled by dijkstra-csr over the point workload",
        },
        "settled_msmd_shared_csr": {
            "value": got_msmd.stats.settled_nodes,
            "direction": "lower",
            "desc": "nodes settled by the CSR shared trees (MSMD workload)",
        },
        "settled_m2m_ch_csr": {
            "value": ch_stats.settled_nodes,
            "direction": "lower",
            "desc": "nodes settled by the CSR CH buckets (MSMD workload)",
        },
        "overlay_point_speedup": {
            "value": round(t_csr / t_overlay, 3),
            "direction": "higher",
            "desc": "point-query wall ratio, dijkstra-csr vs overlay-csr",
        },
        "recustomize_vs_rebuild_speedup": {
            "value": round(t_contract / t_recustomize, 3),
            "direction": "higher",
            "desc": (
                "single-cell overlay recustomization vs full CH "
                "contraction wall ratio after one edge re-weight"
            ),
        },
        "overlay_cut_edges": {
            "value": overlay.partition.num_cut_edges,
            "direction": "lower",
            "desc": "cut edges of the default partition (deterministic)",
        },
        "overlay_boundary_nodes": {
            "value": overlay.num_boundary_nodes,
            "direction": "lower",
            "desc": "boundary nodes of the default partition (deterministic)",
        },
        "overlay_clique_arcs": {
            "value": overlay.num_clique_arcs,
            "direction": "lower",
            "desc": "kept clique shortcut arcs after pruning (deterministic)",
        },
        "settled_point_overlay": {
            "value": overlay_stats.settled_nodes,
            "direction": "lower",
            "desc": "nodes settled by overlay-csr over the point workload",
        },
        "settled_recustomize_one_cell": {
            "value": refreshed.customize_stats.settled_nodes,
            "direction": "lower",
            "desc": "nodes settled recustomizing one re-weighted cell",
        },
        "coalesce_speedup_8_sessions": {
            "value": round(t_sessions / t_coalesced, 3),
            "direction": "higher",
            "desc": "8-session wall ratio, per-session dispatch vs coalesced",
        },
        "coalesced_batch_pairs": {
            "value": coalesce_snapshot.union_pairs,
            "direction": "lower",
            "desc": "distinct pairs the coalesced union passes evaluated",
        },
        "staleness_p95_ms": {
            "value": round(pipe_snap.staleness_p95_ms, 2),
            "direction": "lower",
            "max": 500.0,
            "desc": (
                "event->install staleness p95 (ms) under churn through "
                "the live pipeline (gated absolutely at 500ms)"
            ),
        },
        "throughput_under_churn_pct": {
            "value": round(min(100.0, 100.0 * churn_ratio), 1),
            "direction": "higher",
            "min": 80.0,
            "desc": (
                "answer_batch throughput under cell churn as % of the "
                "idle-pipeline baseline (gated absolutely at 80%)"
            ),
        },
        "telemetry_overhead_pct": {
            "value": telemetry_overhead,
            "direction": "lower",
            "max": 5.0,
            "desc": (
                "point-kernel wall overhead (%) with a recording "
                "MetricsRecorder installed (gated absolutely at 5%)"
            ),
        },
        "gateway_http_rps": {
            "value": round(gateway_single.rps, 1),
            "direction": "higher",
            "min": 25.0,
            "desc": (
                "single-process HTTP requests/s through the gateway "
                "(4 keep-alive clients; conservative absolute floor)"
            ),
        },
        "gateway_p99_ms": {
            "value": round(gateway_single.p99_latency * 1000.0, 2),
            "direction": "lower",
            "max": 250.0,
            "desc": (
                "per-request p99 latency (ms) over HTTP, single-process "
                "(gated absolutely at 250ms)"
            ),
        },
        "gateway_mp_speedup_per_core": {
            "value": round(mp_speedup_per_core, 3),
            "direction": "higher",
            "min": 0.4,
            "desc": (
                "4-shard-worker RPS over single-process RPS, divided by "
                "min(4, cores) — ~1.0 is ideal scaling on any host; the "
                "absolute floor catches dispatch pathologies without "
                "demanding parallel speedup of a 1-CPU box"
            ),
        },
    }
    return {
        "schema": 1,
        "mode": "full" if full else "quick",
        "grid": f"{side}x{side}",
        "metrics": metrics,
        "info": {
            "python": platform.python_version(),
            "csr_snapshot_ms": round(t_snapshot * 1000, 2),
            "point_dict_ms": round(t_dict * 1000, 2),
            "point_csr_ms": round(t_csr * 1000, 2),
            "msmd_dict_ms": round(t_msmd_dict * 1000, 2),
            "msmd_csr_ms": round(t_msmd_csr * 1000, 2),
            # CH m2m finishes in ~10ms on the quick grid, so its wall
            # ratio is too noisy to gate — recorded for humans only.
            "m2m_ch_dict_ms": round(t_m2m_dict * 1000, 2),
            "m2m_ch_csr_ms": round(t_m2m_csr * 1000, 2),
            "ch_contract_ms": round(t_contract * 1000, 2),
            "overlay_point_ms": round(t_overlay * 1000, 2),
            "overlay_recustomize_ms": round(t_recustomize * 1000, 2),
            "overlay_cells": overlay.num_cells,
            "coalesce_sessions_ms": round(t_sessions * 1000, 2),
            "coalesce_coalesced_ms": round(t_coalesced * 1000, 2),
            "telemetry_hooks_off_ms": round(t_hooks_off * 1000, 2),
            "telemetry_hooks_on_ms": round(t_hooks_on * 1000, 2),
            "pipeline_idle_qps": round(qps_idle, 1),
            "pipeline_churn_qps": round(qps_churn, 1),
            "pipeline_installs": pipe_snap.installs,
            "pipeline_cells_per_min": round(cells_per_min, 1),
            "pipeline_staleness_max_ms": round(pipe_snap.staleness_max_ms, 2),
            "gateway_cores": cores,
            "gateway_workers": gateway_workers,
            "gateway_rps_single": round(gateway_single.rps, 1),
            "gateway_rps_mp": round(gateway_multi.rps, 1),
            "gateway_p50_ms": round(
                gateway_single.p50_latency * 1000.0, 2
            ),
            "gateway_mp_p99_ms": round(
                gateway_multi.p99_latency * 1000.0, 2
            ),
        },
    }


def run_grid200(repeats: int = 3) -> dict:
    """Run the 200x200 large-grid tier; returns the BENCH json document.

    A separate ``mode: "grid200"`` document, gated against
    ``benchmarks/baseline_200.json`` (``bench_gate`` refuses to compare
    documents of different modes).  The tier exists because its three
    headline wins are invisible at quick-suite scale: the batched numpy
    sweep amortizes per-node python overhead only when frontiers are
    wide, the nested overlay's supercell level only pays once the flat
    boundary graph is large, and mmap warm-up only matters when a
    rebuild costs seconds.  All speedups are measured with the two
    sides interleaved round by round, taking each side's best round —
    one quiet round per side recovers the truth on a noisy box.
    """
    import math
    import tempfile

    from repro.search.overlay import build_nested_overlay
    from repro.search.vectorized import (
        VecSharedTreeProcessor,
        numpy_available,
    )
    from repro.service.blob import read_overlay_blob, write_overlay_blob
    from repro.service.cache import network_fingerprint

    if not numpy_available():
        raise SystemExit(
            "FATAL: the grid200 tier gates the vectorized kernels and "
            "requires numpy; run the quick suite on numpy-less hosts"
        )
    side = 200
    net = grid_network(side, side, perturbation=0.1, seed=7)
    nodes = list(net.nodes())

    t0 = time.perf_counter()
    csr = csr_snapshot(net)
    t_snapshot = time.perf_counter() - t0

    # Batched MSMD: the scalar CSR shared trees vs the 2-D numpy sweep,
    # same sources/destinations, trees grown to the same frontier.  The
    # vec engine's contract is *bit*-identical results, so the parity
    # check compares distances and node sequences exactly.
    rng = random.Random(5)
    sources = rng.sample(nodes, 6)
    destinations = rng.sample(nodes, 6)
    csr_shared = CSRSharedTreeProcessor()
    vec_shared = VecSharedTreeProcessor()
    csr_shared.artifact_for(net)
    vec_shared.artifact_for(net)
    t_msmd_csr = t_msmd_vec = float("inf")
    ref_msmd = got_msmd = None
    for _ in range(repeats):
        start = time.perf_counter()
        ref_msmd = csr_shared.process(net, sources, destinations)
        t_msmd_csr = min(t_msmd_csr, time.perf_counter() - start)
        start = time.perf_counter()
        got_msmd = vec_shared.process(net, sources, destinations)
        t_msmd_vec = min(t_msmd_vec, time.perf_counter() - start)
    for pair, path in ref_msmd.paths.items():
        got_path = got_msmd.paths[pair]
        if got_path.distance != path.distance or got_path.nodes != path.nodes:
            raise SystemExit(
                "FATAL: dijkstra-vec MSMD diverges from the CSR shared trees"
            )

    # Nested vs flat overlay on far pairs (both endpoints >= 75% of the
    # grid diagonal apart) — the regime the supercell level targets; a
    # near pair's two-phase search never leaves one supercell, so a
    # uniform workload would dilute the win with queries the level
    # cannot help, and the win grows with distance (1.95x at 60% of the
    # diagonal, 2.5x at 80%).  Capacity 80 keeps cells small enough
    # that the flat boundary graph dominates flat query time.
    diagonal = math.hypot(side - 1, side - 1)
    far_rng = random.Random(1)
    far_pairs = []
    while len(far_pairs) < 10:
        s, t = far_rng.sample(nodes, 2)
        sr, sc = divmod(s, side)
        tr, tc = divmod(t, side)
        if math.hypot(sr - tr, sc - tc) >= 0.75 * diagonal:
            far_pairs.append((s, t))
    t0 = time.perf_counter()
    flat = build_overlay(net, kernel="csr", cell_capacity=80)
    t_flat_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    nested = build_nested_overlay(net, kernel="csr", cell_capacity=80)
    t_nested_build = time.perf_counter() - t0
    oracle = [
        csr_dijkstra_path(net, s, t, csr=csr).distance for s, t in far_pairs
    ]
    t_flat = t_nested = float("inf")
    got_flat = got_nested = []
    for _ in range(repeats):
        start = time.perf_counter()
        got_flat = [flat.route(s, t).distance for s, t in far_pairs]
        t_flat = min(t_flat, time.perf_counter() - start)
        start = time.perf_counter()
        got_nested = [nested.route(s, t).distance for s, t in far_pairs]
        t_nested = min(t_nested, time.perf_counter() - start)
    for ref, a, b in zip(oracle, got_flat, got_nested):
        if abs(a - ref) > 1e-9 or abs(b - ref) > 1e-9:
            raise SystemExit(
                "FATAL: overlay far-pair distances diverge from dijkstra-csr"
            )
    nested_stats = SearchStats()
    for s, t in far_pairs:
        nested.route(s, t, stats=nested_stats)

    # Process-parallel customization: the serial per-cell clique loop vs
    # a warmed 4-worker ParallelCustomizer over the same cells of the
    # capacity-80 partition.  Round 1 of the parallel side pays the CSR
    # blob spill (changed_edges=None); later rounds pass an empty delta
    # so they ride the mapped blob — the steady state a persistent
    # serving pool lives in.  Rounds are interleaved and each side takes
    # its best, the same noise shield as every ratio here.  The gated
    # value is normalized per usable core (gateway_mp_speedup_per_core
    # precedent): 0.625/core equals the 2.5x-at-4-workers target on a
    # >= 4-core host, while the absolute floor below holds on CI's
    # 2-core runners without demanding parallel speedup of a 1-CPU box.
    from repro.search.overlay import OverlayGraph
    from repro.search.parallel import ParallelCustomizer

    part = flat.partition
    customize_workers = 4
    customizer = ParallelCustomizer(customize_workers)
    pool_warm_s = customizer.warm()
    t_cust_serial = t_cust_par = float("inf")
    serial_cliques: dict = {}
    par_cliques: dict = {}
    try:
        for round_no in range(max(repeats, 2)):
            start = time.perf_counter()
            serial_cliques = {}
            sstats = SearchStats()
            for cell in range(part.num_cells):
                fcsr, _rcsr = OverlayGraph._cell_graphs(net, part, cell, "csr")
                serial_cliques[cell] = OverlayGraph._customize_cell(
                    net, part, cell, "csr", fcsr, sstats
                )
            t_cust_serial = min(t_cust_serial, time.perf_counter() - start)
            start = time.perf_counter()
            pstats = SearchStats()
            par_cliques = customizer.customize(
                net, part, "csr", range(part.num_cells), pstats,
                changed_edges=None if round_no == 0 else (),
            )
            t_cust_par = min(t_cust_par, time.perf_counter() - start)
            if pstats.settled_nodes != sstats.settled_nodes:
                raise SystemExit(
                    "FATAL: parallel customization settled-node totals "
                    "diverge from the serial loop"
                )
        if par_cliques != serial_cliques:
            raise SystemExit(
                "FATAL: parallel customization cliques diverge from the "
                "serial loop"
            )
        customize_spills = customizer.spills
    finally:
        customizer.close()
    cores = os.cpu_count() or 1
    customize_speedup = t_cust_serial / t_cust_par
    customize_per_core = customize_speedup / min(customize_workers, cores)

    # Cold shard warm-up: a fresh PreprocessingCache pointed at a spill
    # dir holding the CSR blob a sibling process force-spilled — exactly
    # the gateway's worker handoff (gateway engine, dijkstra-csr).  The
    # gate is an absolute ceiling: the point of the mmap format is that
    # this is milliseconds, not the seconds a rebuild costs, and a ratio
    # to a noisy committed number would let it creep back up.
    fingerprint = network_fingerprint(net)
    with tempfile.TemporaryDirectory(prefix="bench-spill-") as spill:
        spill_dir = pathlib.Path(spill)
        warm_cache = PreprocessingCache(spill_dir=spill_dir)
        warm_cache.get(net, "dijkstra-csr", fingerprint=fingerprint)
        if warm_cache.spill_now(fingerprint, "dijkstra-csr") is None:
            raise SystemExit("FATAL: the dijkstra-csr artifact did not spill")
        t_warm = float("inf")
        loaded = None
        for _ in range(max(repeats, 3)):
            cold_cache = PreprocessingCache(spill_dir=spill_dir)
            start = time.perf_counter()
            loaded = cold_cache.get(net, "dijkstra-csr", fingerprint=fingerprint)
            t_warm = min(t_warm, time.perf_counter() - start)
            if cold_cache.disk_loads != 1:
                raise SystemExit(
                    "FATAL: the cold cache rebuilt the CSR snapshot instead "
                    "of loading the spilled blob"
                )
        s0, t0_node = far_pairs[0]
        got = csr_dijkstra_path(net, s0, t0_node, csr=loaded).distance
        if abs(got - oracle[0]) > 1e-9:
            raise SystemExit(
                "FATAL: the blob-loaded CSR snapshot diverges from the "
                "in-memory one"
            )
        # Overlay blob round trip at the same capacity, for humans: the
        # overlay reload rebuilds per-cell kernels, so it is slower than
        # the CSR load but still far under an overlay build.
        t0 = time.perf_counter()
        write_overlay_blob(flat, spill_dir / "flat.ovlb")
        t_ovl_write = time.perf_counter() - t0
        t0 = time.perf_counter()
        read_overlay_blob(spill_dir / "flat.ovlb", net)
        t_ovl_read = time.perf_counter() - t0

    metrics = {
        "vec_union_speedup": {
            "value": round(t_msmd_csr / t_msmd_vec, 3),
            "direction": "higher",
            "min": 3.0,
            "desc": (
                "shared-SSMD-tree wall ratio, scalar CSR kernel vs the "
                "batched numpy sweep (gated absolutely at 3x)"
            ),
        },
        "nested_point_speedup": {
            "value": round(t_flat / t_nested, 3),
            "direction": "higher",
            "min": 2.0,
            "desc": (
                "far-pair point-query wall ratio, flat vs nested overlay "
                "at cell capacity 80 (gated absolutely at 2x)"
            ),
        },
        "shard_cold_warmup_ms": {
            "value": round(t_warm * 1000.0, 2),
            "direction": "lower",
            "max": 250.0,
            "desc": (
                "cold PreprocessingCache.get satisfied from the spilled "
                "CSR blob — the gateway worker handoff (gated absolutely "
                "at 250ms)"
            ),
        },
        "customize_parallel_speedup_per_core": {
            "value": round(customize_per_core, 3),
            "direction": "higher",
            "min": 0.35,
            "desc": (
                "4-worker parallel overlay customization over the serial "
                "cell loop, divided by min(4, cores) — 0.625/core is the "
                "2.5x-at-4-workers target on a >=4-core host; the "
                "absolute floor catches handoff pathologies without "
                "demanding parallel speedup of CI's 2-core runners"
            ),
        },
        "settled_point_nested": {
            "value": nested_stats.settled_nodes,
            "direction": "lower",
            "desc": (
                "nodes settled by the nested overlay over the far-pair "
                "workload (deterministic)"
            ),
        },
        "nested_top_arcs": {
            "value": len(nested.top_targets),
            "direction": "lower",
            "desc": (
                "arcs in the nested overlay's top search graph "
                "(deterministic layout output)"
            ),
        },
    }
    return {
        "schema": 1,
        "mode": "grid200",
        "grid": f"{side}x{side}",
        "metrics": metrics,
        "info": {
            "python": platform.python_version(),
            "csr_snapshot_ms": round(t_snapshot * 1000, 2),
            "msmd_csr_ms": round(t_msmd_csr * 1000, 2),
            "msmd_vec_ms": round(t_msmd_vec * 1000, 2),
            "flat_build_ms": round(t_flat_build * 1000, 2),
            "nested_build_ms": round(t_nested_build * 1000, 2),
            "flat_point_ms": round(t_flat * 1000, 2),
            "nested_point_ms": round(t_nested * 1000, 2),
            "flat_cells": flat.num_cells,
            "nested_cells": nested.num_cells,
            "shard_cold_warmup_ms": round(t_warm * 1000, 2),
            "overlay_blob_write_ms": round(t_ovl_write * 1000, 2),
            "overlay_blob_read_ms": round(t_ovl_read * 1000, 2),
            "customize_workers": customize_workers,
            "customize_cores": cores,
            "customize_serial_ms": round(t_cust_serial * 1000, 2),
            "customize_parallel_ms": round(t_cust_par * 1000, 2),
            "customize_parallel_speedup": round(customize_speedup, 3),
            "customize_pool_warm_ms": round(pool_warm_s * 1000, 2),
            "customize_cells_per_sec": round(
                part.num_cells / t_cust_par, 1
            ),
            "customize_spills": customize_spills,
        },
    }


def run_metro(
    num_nodes: int = 60_000,
    workers: int = 4,
    repeats: int = 1,
    cell_capacity: int | None = None,
) -> dict:
    """Run the metro-region build-time tier; returns the BENCH document.

    The ROADMAP item-4 scale proof: generate a :func:`metro_network`,
    build the partition overlay through a warmed
    :class:`~repro.search.parallel.ParallelCustomizer` pool, and report
    customization throughput (cells/sec), pool warm time and the
    zero-copy handoff health (spill count stays 1 — the graph crossed
    the process boundary as one mmapped blob, never as a pickle).  CI
    runs this at the default 60k nodes against
    ``benchmarks/baseline_metro.json``; the full 10⁶-node proof run is
    the same command with ``--metro-nodes 1000000`` to a scratch file
    (its deterministic shape counters differ from the 60k baseline, so
    it is not gate-comparable — by design).

    The parallel *speedup* is gated on the grid200 tier
    (``customize_parallel_speedup_per_core``); this tier gates absolute
    throughput floors so a handoff regression that only bites at scale
    (e.g. per-task payload bloat) still fails CI.
    """
    from repro.network.generators import metro_network
    from repro.network.io import read_dimacs, write_dimacs
    from repro.network.partition import default_cell_capacity
    from repro.search.parallel import ParallelCustomizer

    t0 = time.perf_counter()
    net = metro_network(num_nodes, seed=7)
    t_gen = time.perf_counter() - t0
    nodes = list(net.nodes())
    num_edges = sum(1 for _ in net.edges())
    avg_degree = 2.0 * num_edges / len(nodes)
    # n^(2/3) cells get expensive in wall time long before they pay off
    # at this scale; cap cell size so the tier finishes in CI minutes.
    capacity = (
        cell_capacity
        if cell_capacity is not None
        else min(192, default_cell_capacity(len(net)))
    )

    customizer = ParallelCustomizer(workers)
    try:
        pool_warm_s = customizer.warm()
        t0 = time.perf_counter()
        overlay = build_overlay(
            net, kernel="csr", cell_capacity=capacity, customizer=customizer
        )
        t_build = time.perf_counter() - t0
        cells_per_sec = customizer.last_cells_per_sec
        spills = customizer.spills
    finally:
        customizer.close()

    # Correctness spot check: overlay answers match flat Dijkstra.
    csr = csr_snapshot(net)
    rng = random.Random(3)
    for s, t in (tuple(rng.sample(nodes, 2)) for _ in range(2)):
        want = csr_dijkstra_path(net, s, t, csr=csr).distance
        got = overlay.route(s, t).distance
        if abs(want - got) > 1e-9:
            raise SystemExit(
                "FATAL: metro overlay distances diverge from dijkstra-csr"
            )

    # DIMACS interchange round trip at CI scale (the 10⁶ run skips it —
    # minutes of text parsing would dominate the tier's wall time).
    dimacs_ms = None
    if num_nodes <= 200_000:
        import tempfile

        ids = {u: i + 1 for i, u in enumerate(nodes)}
        from repro.network.graph import RoadNetwork

        renamed = RoadNetwork(directed=False)
        for u in nodes:
            p = net.position(u)
            renamed.add_node(ids[u], p.x, p.y)
        for u, v, w in net.edges():
            renamed.add_edge(ids[u], ids[v], w)
        with tempfile.TemporaryDirectory(prefix="bench-dimacs-") as tmp:
            gr = pathlib.Path(tmp) / "metro.gr"
            co = pathlib.Path(tmp) / "metro.co"
            t0 = time.perf_counter()
            write_dimacs(renamed, gr, co)
            back = read_dimacs(gr, co, directed=False)
            dimacs_ms = round((time.perf_counter() - t0) * 1000.0, 2)
        if len(back) != len(net):
            raise SystemExit("FATAL: DIMACS round trip changed the node set")

    metrics = {
        "metro_customize_cells_per_sec": {
            "value": round(cells_per_sec, 2),
            "direction": "higher",
            "min": 1.0,
            "desc": (
                "parallel pool throughput over the metro build's cell "
                "pass (absolute floor — catches per-task handoff bloat "
                "that only bites at scale)"
            ),
        },
        "metro_pool_warm_ms": {
            "value": round(pool_warm_s * 1000.0, 2),
            "direction": "lower",
            "max": 10_000.0,
            "desc": (
                "wall time to start the customization worker pool "
                "(gated absolutely at 10s)"
            ),
        },
        "metro_blob_spills": {
            "value": spills,
            "direction": "lower",
            "max": 1,
            "desc": (
                "CSR blob spills during the build — exactly one means "
                "the graph crossed the process boundary as a single "
                "mmapped blob (no pickling, no re-spills)"
            ),
        },
        "metro_avg_degree": {
            "value": round(avg_degree, 3),
            "direction": "lower",
            "desc": (
                "average degree of the generated metro network "
                "(deterministic at fixed node count and seed)"
            ),
        },
        "metro_overlay_cells": {
            "value": overlay.num_cells,
            "direction": "lower",
            "desc": (
                "partition cells of the metro overlay (deterministic "
                "at fixed node count and seed)"
            ),
        },
    }
    del repeats  # build tier: one cold build is the measurement
    return {
        "schema": 1,
        "mode": "metro",
        "grid": f"metro-{num_nodes}",
        "metrics": metrics,
        "info": {
            "python": platform.python_version(),
            "requested_nodes": num_nodes,
            "nodes": len(nodes),
            "edges": num_edges,
            "generate_s": round(t_gen, 2),
            "cell_capacity": capacity,
            "build_s": round(t_build, 2),
            "customize_workers": workers,
            "cores": os.cpu_count() or 1,
            "pool_warm_ms": round(pool_warm_s * 1000.0, 2),
            "cells_per_sec": round(cells_per_sec, 2),
            "blob_spills": spills,
            "dimacs_roundtrip_ms": dimacs_ms,
        },
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_PR.json", help="output JSON path"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="10k-node grid instead of the quick 1.6k-node one",
    )
    parser.add_argument(
        "--grid200",
        action="store_true",
        help=(
            "run the 40k-node tier gating the vectorized/nested/mmap "
            "wins (requires numpy; baseline_200.json)"
        ),
    )
    parser.add_argument(
        "--metro",
        action="store_true",
        help=(
            "run the metro-region build-time tier (parallel "
            "customization throughput; baseline_metro.json)"
        ),
    )
    parser.add_argument(
        "--metro-nodes",
        type=int,
        default=60_000,
        help=(
            "metro tier node count (CI keeps the 60k default; the full "
            "scale proof passes 1000000 to a scratch output)"
        ),
    )
    parser.add_argument(
        "--metro-workers",
        type=int,
        default=4,
        help="metro tier customization worker processes",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    args = parser.parse_args(argv)
    if args.metro:
        doc = run_metro(
            num_nodes=args.metro_nodes,
            workers=args.metro_workers,
            repeats=args.repeats,
        )
    elif args.grid200:
        doc = run_grid200(repeats=args.repeats)
    else:
        doc = run_suite(full=args.full, repeats=args.repeats)
    path = pathlib.Path(args.output)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"[bench-quick] mode={doc['mode']} grid={doc['grid']} -> {path}")
    for name, m in doc["metrics"].items():
        print(f"  {name:32s} {m['value']:>10}  ({m['direction']} is better)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
