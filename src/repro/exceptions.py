"""Exception hierarchy for the OPAQUE reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Structural problem with a road network (unknown node, bad edge...)."""


class UnknownNodeError(GraphError):
    """A node id was referenced that does not exist in the network."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node: {node_id!r}")
        self.node_id = node_id


class DuplicateNodeError(GraphError):
    """A node id was added twice to the same network."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"duplicate node: {node_id!r}")
        self.node_id = node_id


class EdgeError(GraphError):
    """An edge is invalid (negative weight, self loop, missing endpoint)."""


class NoPathError(ReproError):
    """No path exists between the requested source and destination."""

    def __init__(self, source: object, destination: object) -> None:
        super().__init__(f"no path from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination


class QueryError(ReproError):
    """A path query or obfuscated path query is malformed."""


class ObfuscationError(ReproError):
    """The obfuscator could not honor a protection setting."""


class ProtocolError(ReproError):
    """A message arrived out of order or referenced an unknown request."""


class StorageError(ReproError):
    """The page store or buffer pool was used incorrectly."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed."""
