"""Command-line interface: generate maps, route, protect queries, run experiments.

Usage (also via ``python -m repro``):

    repro generate grid --width 20 --height 20 -o city.txt
    repro summarize city.txt
    repro partition city.txt --cell-capacity 64 -o city.part
    repro route city.txt 21 352 --engine astar
    repro route city.txt 21 352 --engine dijkstra-csr   # flat CSR kernel
    repro route city.txt 21 352 --engine overlay-csr    # partition overlay
    repro route city.txt 21 352 --avoid-highways
    repro protect city.txt 21 352 --f-s 3 --f-t 3
    repro workload city.txt -o rush.txt --count 40 --kind hotspot
    repro scenario morning-rush city.txt -o traffic.txt --merge-workload rush.txt
    repro serve-replay city.txt rush.txt --engine ch --repeat 3
    repro serve-replay city.txt traffic.txt --engine overlay-csr
    repro serve-replay city.txt rush.txt --engine overlay-csr --churn-cells-per-min 120
    repro serve-replay city.txt rush.txt --engine ch-csr --coalesce-window 8
    repro serve-replay city.txt rush.txt --metrics-out m.json --trace-out t.jsonl
    repro serve city.txt --port 8080 --engine overlay-csr --workers 4
    repro loadgen city.txt rush.txt --host 127.0.0.1 --port 8080 --clients 4
    repro obs-report --metrics m.json --traces t.jsonl
    repro experiment E1 E4 --telemetry-dir telemetry/
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.privacy import breach_probability
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.exceptions import ReproError
from repro.network.generators import (
    grid_network,
    random_geometric_network,
    ring_radial_network,
    tiger_like_network,
)
from repro.network.io import read_network, write_network
from repro.network.metrics import summarize_network
from repro.network.views import avoid_fast_roads
from repro.search import get_engine, list_engines
from repro.search.result import SearchStats

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OPAQUE path-privacy reproduction toolkit (ICDE 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic road network")
    gen.add_argument(
        "topology", choices=["grid", "geometric", "ring-radial", "tiger"]
    )
    gen.add_argument("--width", type=int, default=20, help="grid width")
    gen.add_argument("--height", type=int, default=20, help="grid height")
    gen.add_argument("--nodes", type=int, default=500, help="geometric node count")
    gen.add_argument("--radius", type=float, default=0.08, help="geometric radius")
    gen.add_argument("--rings", type=int, default=6)
    gen.add_argument("--spokes", type=int, default=12)
    gen.add_argument("--blocks", type=int, default=4)
    gen.add_argument("--block-size", type=int, default=5)
    gen.add_argument("--perturbation", type=float, default=0.1)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="output map file")

    summ = sub.add_parser("summarize", help="print structure stats of a map file")
    summ.add_argument("network", help="map file from 'generate'")

    part = sub.add_parser(
        "partition",
        help="partition a map into bounded-size cells (overlay/shard layout)",
    )
    part.add_argument("network", help="map file from 'generate'")
    part.add_argument(
        "--cell-capacity",
        type=int,
        default=None,
        help="max nodes per cell (default: n^(2/3)/2 heuristic)",
    )
    part.add_argument(
        "--method",
        choices=["inertial", "bfs"],
        default="inertial",
        help="grow phase: coordinate bisection or BFS packing",
    )
    part.add_argument(
        "--refine-rounds",
        type=int,
        default=2,
        help="cut-reduction rounds after the grow phase",
    )
    part.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the partition to this file (text format)",
    )

    route = sub.add_parser("route", help="unprotected shortest-path query")
    route.add_argument("network")
    route.add_argument("source", type=int)
    route.add_argument("destination", type=int)
    route.add_argument(
        "--engine",
        choices=list_engines(),
        default="dijkstra",
        help="search engine (preprocessing engines build their index first)",
    )
    route.add_argument(
        "--avoid-highways",
        action="store_true",
        help="exclude roads faster than local streets",
    )

    protect = sub.add_parser("protect", help="OPAQUE-protected path query")
    protect.add_argument("network")
    protect.add_argument("source", type=int)
    protect.add_argument("destination", type=int)
    protect.add_argument("--f-s", type=int, default=3, help="source set size")
    protect.add_argument("--f-t", type=int, default=3, help="destination set size")
    protect.add_argument(
        "--engine",
        choices=list_engines(),
        default="dijkstra",
        help="server-side search engine answering the obfuscated query",
    )
    protect.add_argument("--seed", type=int, default=0)

    work = sub.add_parser(
        "workload", help="synthesize a replayable protected-query workload"
    )
    work.add_argument("network")
    work.add_argument("-o", "--output", required=True, help="output workload file")
    work.add_argument("--count", type=int, default=32, help="number of queries")
    work.add_argument(
        "--kind",
        choices=["hotspot", "uniform"],
        default="hotspot",
        help="endpoint mix (hotspot repeats popular destinations)",
    )
    work.add_argument("--f-s", type=int, default=3, help="source set size")
    work.add_argument("--f-t", type=int, default=3, help="destination set size")
    work.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve-replay",
        help="replay a workload through the caching serving stack",
    )
    serve.add_argument("network")
    serve.add_argument("workload", help="workload file from 'workload'")
    serve.add_argument(
        "--engine",
        choices=list_engines(),
        default="dijkstra",
        help="server-side search engine (preprocessing is cached)",
    )
    serve.add_argument(
        "--mode",
        choices=["independent", "shared"],
        default="independent",
        help="obfuscation variant applied to the workload",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="passes over the stream (pass 1 is cold, later ones warm)",
    )
    serve.add_argument(
        "--batch", type=int, default=8, help="queries per concurrent batch"
    )
    serve.add_argument(
        "--concurrency", type=int, default=4, help="dispatcher worker threads"
    )
    serve.add_argument(
        "--result-capacity", type=int, default=256, help="result-cache entries"
    )
    serve.add_argument(
        "--spill-dir",
        default=None,
        help="directory for evicted preprocessing artifacts (CH graphs)",
    )
    serve.add_argument(
        "--coalesce-window",
        type=int,
        default=0,
        help=(
            "coalesce up to N concurrent queries into one shared union "
            "kernel pass (0 disables coalescing)"
        ),
    )
    serve.add_argument(
        "--coalesce-wait-ms",
        type=float,
        default=2.0,
        help="max milliseconds a query waits for window-mates",
    )
    serve.add_argument(
        "--churn-cells-per-min",
        type=float,
        default=0.0,
        help=(
            "publish this many random edge re-weights per minute through "
            "the live traffic pipeline while the replay runs (0 disables)"
        ),
    )
    serve.add_argument(
        "--debounce-ms",
        type=float,
        default=5.0,
        help="pipeline debounce window for traffic events (milliseconds)",
    )
    serve.add_argument(
        "--customize-workers",
        type=int,
        default=0,
        help=(
            "worker processes for parallel overlay recustomization "
            "(0 = serial; results are byte-identical either way)"
        ),
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--metrics-out",
        default=None,
        help="write the stack's metrics registry to this JSON file",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        help="record per-query span trees and write them to this JSONL file",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help=(
            "log batches slower than this many milliseconds as JSON lines "
            "on stderr (implies tracing)"
        ),
    )

    scen = sub.add_parser(
        "scenario",
        help="synthesize a timed traffic-event stream (v2 workload file)",
    )
    scen.add_argument(
        "name",
        choices=["morning-rush", "evening-rush", "incident", "uniform"],
        help="traffic scenario shape",
    )
    scen.add_argument("network")
    scen.add_argument("-o", "--output", required=True, help="output file")
    scen.add_argument(
        "--duration-ms",
        type=int,
        default=60_000,
        help="scenario duration in milliseconds",
    )
    scen.add_argument(
        "--events", type=int, default=200, help="traffic events to emit"
    )
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument(
        "--merge-workload",
        default=None,
        help=(
            "interleave this workload file's queries evenly into the "
            "event stream (producing a mixed q/w v2 file)"
        ),
    )

    obs = sub.add_parser(
        "obs-report",
        help="summarize telemetry files written by serve-replay/experiment",
    )
    obs.add_argument(
        "--metrics",
        default=None,
        help="metrics JSON file (from --metrics-out)",
    )
    obs.add_argument(
        "--traces",
        default=None,
        help="trace JSONL file (from --trace-out)",
    )
    obs.add_argument(
        "--top",
        type=int,
        default=5,
        help="slowest root spans to list (0 disables)",
    )

    gw = sub.add_parser(
        "serve",
        help="serve a network over HTTP (the asyncio gateway)",
    )
    gw.add_argument("network")
    gw.add_argument("--host", default="127.0.0.1", help="bind address")
    gw.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = pick free)"
    )
    gw.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "shard worker processes (0 serves in-process; N spawns N "
            "warmed per-shard serving stacks)"
        ),
    )
    gw.add_argument(
        "--engine",
        choices=list_engines(),
        default="dijkstra-csr",
        help="server-side search engine in every shard",
    )
    gw.add_argument(
        "--concurrency", type=int, default=4, help="dispatcher threads/shard"
    )
    gw.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission ceiling before 429 + Retry-After",
    )
    gw.add_argument(
        "--window-ms",
        type=float,
        default=0.0,
        help="micro-batch admission window per shard (milliseconds)",
    )
    gw.add_argument(
        "--max-batch", type=int, default=8, help="queries per micro-batch"
    )
    gw.add_argument(
        "--coalesce-window",
        type=int,
        default=0,
        help="per-shard coalescer window size (0 disables coalescing)",
    )
    gw.add_argument(
        "--spill-dir",
        default=None,
        help=(
            "artifact spill/handoff directory shared with shard workers "
            "(a temporary one is created when workers > 0)"
        ),
    )

    lg = sub.add_parser(
        "loadgen",
        help="drive a running gateway with concurrent HTTP clients",
    )
    lg.add_argument("network", help="map file (for workload obfuscation)")
    lg.add_argument("workload", help="workload file from 'workload'")
    lg.add_argument("--host", default="127.0.0.1", help="gateway host")
    lg.add_argument("--port", type=int, required=True, help="gateway port")
    lg.add_argument(
        "--clients", type=int, default=4, help="concurrent connections"
    )
    lg.add_argument(
        "--repeats", type=int, default=1, help="passes over the stream"
    )
    lg.add_argument(
        "--mode",
        choices=["independent", "shared"],
        default="independent",
        help="obfuscation variant applied to the workload",
    )
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument(
        "--json-out",
        default=None,
        help="also write the load report (LoadReport.to_dict) to this file",
    )

    exp = sub.add_parser("experiment", help="run experiments (E1..E15)")
    exp.add_argument("ids", nargs="+", help="experiment ids, e.g. E1 E4")
    exp.add_argument(
        "--telemetry-dir",
        default=None,
        help=(
            "also write metrics.json and traces.jsonl for the run into "
            "this directory (created if missing)"
        ),
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.topology == "grid":
        net = grid_network(
            args.width, args.height, perturbation=args.perturbation, seed=args.seed
        )
    elif args.topology == "geometric":
        net = random_geometric_network(args.nodes, args.radius, seed=args.seed)
    elif args.topology == "ring-radial":
        net = ring_radial_network(args.rings, args.spokes, seed=args.seed)
    else:
        net = tiger_like_network(
            blocks=args.blocks,
            block_size=args.block_size,
            perturbation=args.perturbation,
            seed=args.seed,
        )
    write_network(net, args.output)
    print(f"wrote {net.num_nodes} nodes, {net.num_edges} edges to {args.output}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    net = read_network(args.network)
    summary = summarize_network(net)
    print(f"nodes:            {summary.num_nodes}")
    print(f"edges:            {summary.num_edges}")
    print(f"components:       {summary.num_components}")
    print(f"average degree:   {summary.average_degree:.2f}")
    print(f"max degree:       {summary.max_degree}")
    print(f"avg edge weight:  {summary.average_edge_weight:.3f}")
    print(f"road-like:        {'yes' if summary.is_road_like else 'no'}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.network.io import write_partition
    from repro.network.partition import partition_network

    # Argument bounds are enforced by partition_network (GraphError),
    # which main() already turns into "error: ..." + exit 1.
    net = read_network(args.network)
    partition = partition_network(
        net,
        cell_capacity=args.cell_capacity,
        refine_rounds=args.refine_rounds,
        method=args.method,
    )
    sizes = sorted(len(cell) for cell in partition.cells)
    cut_share = (
        partition.num_cut_edges / net.num_edges if net.num_edges else 0.0
    )
    print(f"cells:          {partition.num_cells}")
    print(f"cell capacity:  {partition.cell_capacity}")
    smallest, largest = (sizes[0], sizes[-1]) if sizes else (0, 0)
    print(f"cell sizes:     min {smallest}, max {largest}")
    print(f"boundary nodes: {partition.num_boundary_nodes}")
    print(f"cut edges:      {partition.num_cut_edges} ({cut_share:.1%} of edges)")
    if args.output:
        write_partition(partition, args.output)
        print(f"wrote partition to {args.output}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    net = read_network(args.network)
    searchable = avoid_fast_roads(net) if args.avoid_highways else net
    stats = SearchStats()
    engine = get_engine(args.engine)
    context = engine.prepare(searchable)
    path = engine.route(
        searchable, args.source, args.destination, context=context, stats=stats
    )
    print(f"distance: {path.distance:.4f} over {path.num_edges} segments")
    print(f"route: {' '.join(str(n) for n in path.nodes)}")
    print(f"settled nodes: {stats.settled_nodes}")
    return 0


def _cmd_protect(args: argparse.Namespace) -> int:
    net = read_network(args.network)
    system = OpaqueSystem(
        net, mode="independent", engine=args.engine, seed=args.seed
    )
    request = ClientRequest(
        "cli-user",
        PathQuery(args.source, args.destination),
        ProtectionSetting(args.f_s, args.f_t),
    )
    paths = system.submit([request])
    path = paths["cli-user"]
    report = system.last_report
    assert report is not None
    record = report.records[0]
    print(f"distance: {path.distance:.4f} over {path.num_edges} segments")
    print(f"route: {' '.join(str(n) for n in path.nodes)}")
    print(f"server saw S = {record.query.sources}")
    print(f"server saw T = {record.query.destinations}")
    print(f"breach probability: {breach_probability(record.query):.4f}")
    print(f"server settled nodes: {report.server_stats.settled_nodes}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads.replay import synthesize_workload, write_workload

    net = read_network(args.network)
    entries = synthesize_workload(
        net,
        args.count,
        f_s=args.f_s,
        f_t=args.f_t,
        kind=args.kind,
        seed=args.seed,
    )
    write_workload(entries, args.output)
    print(f"wrote {len(entries)} {args.kind} queries to {args.output}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.workloads.replay import read_workload, write_workload_items
    from repro.workloads.scenarios import scenario_events

    net = read_network(args.network)
    events = scenario_events(
        args.name,
        net,
        duration_ms=args.duration_ms,
        events=args.events,
        seed=args.seed,
    )
    items: list = list(events)
    queries = 0
    if args.merge_workload:
        entries = read_workload(args.merge_workload)
        queries = len(entries)
        # Spread queries evenly through the timed event stream: query j
        # lands at the fraction (j+1)/(q+1) of the scenario duration.
        merged: list = []
        duration = max((e.at_ms for e in events), default=0)
        qpos = [
            (j + 1) * duration / (queries + 1) for j in range(queries)
        ]
        ei = qi = 0
        while ei < len(events) or qi < queries:
            if qi >= queries or (
                ei < len(events) and events[ei].at_ms <= qpos[qi]
            ):
                merged.append(events[ei])
                ei += 1
            else:
                merged.append(entries[qi])
                qi += 1
        items = merged
    write_workload_items(items, args.output)
    print(
        f"wrote {len(events)} {args.name} traffic events"
        + (f" and {queries} queries" if queries else "")
        + f" to {args.output}"
    )
    return 0


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    import logging

    from repro.core.obfuscator import PathQueryObfuscator
    from repro.obs import (
        JSONLogFormatter,
        MetricsRecorder,
        MetricsRegistry,
        Tracer,
        recording,
    )
    from repro.obs.trace import SLOW_QUERY_LOGGER
    from repro.service.cache import ResultCache
    from repro.service.serving import (
        CoalesceConfig,
        ServingConfig,
        ServingStack,
        replay,
    )
    from repro.workloads.replay import (
        TrafficEvent,
        WorkloadEntry,
        read_workload_items,
    )

    if args.repeat < 1 or args.batch < 1 or args.concurrency < 1:
        print(
            "error: --repeat, --batch and --concurrency must be >= 1",
            file=sys.stderr,
        )
        return 1
    if args.result_capacity < 0:
        print("error: --result-capacity must be >= 0", file=sys.stderr)
        return 1
    if args.coalesce_window < 0 or args.coalesce_wait_ms < 0:
        print(
            "error: --coalesce-window and --coalesce-wait-ms must be >= 0",
            file=sys.stderr,
        )
        return 1
    if args.churn_cells_per_min < 0 or args.debounce_ms < 0:
        print(
            "error: --churn-cells-per-min and --debounce-ms must be >= 0",
            file=sys.stderr,
        )
        return 1
    net = read_network(args.network)
    items = read_workload_items(args.workload)
    entries = [item for item in items if isinstance(item, WorkloadEntry)]
    traffic = [item for item in items if isinstance(item, TrafficEvent)]
    if not entries:
        print("error: empty workload", file=sys.stderr)
        return 1
    # Obfuscate the workload once so the server-visible stream is fixed;
    # replaying it R times models the recurring traffic of a long-lived
    # deployment (same decoys, same Q(S, T)).
    obfuscator = PathQueryObfuscator(net, seed=args.seed)
    requests = [e.as_request(f"w-{i}") for i, e in enumerate(entries)]
    records = obfuscator.obfuscate_batch(requests, mode=args.mode)
    queries = [record.query for record in records]
    # The server-visible mixed stream: obfuscated queries where the q
    # lines sat, traffic events where the w lines sat.
    obfuscated = iter(queries)
    mixed = [
        item if isinstance(item, TrafficEvent) else next(obfuscated)
        for item in items
    ]
    live = bool(traffic) or args.churn_cells_per_min > 0

    coalesce = (
        CoalesceConfig(
            max_batch=args.coalesce_window,
            max_wait_s=args.coalesce_wait_ms / 1000.0,
        )
        if args.coalesce_window
        else None
    )
    tracer = None
    slow_handler = None
    if args.trace_out or args.slow_query_ms is not None:
        threshold = (
            args.slow_query_ms / 1000.0
            if args.slow_query_ms is not None
            else None
        )
        tracer = Tracer(slow_threshold_s=threshold)
        if threshold is not None:
            slow_handler = logging.StreamHandler(sys.stderr)
            slow_handler.setFormatter(JSONLogFormatter())
            logging.getLogger(SLOW_QUERY_LOGGER).addHandler(slow_handler)
    registry = MetricsRegistry()
    with ServingStack.from_config(
        net,
        ServingConfig(
            engine=args.engine,
            max_workers=args.concurrency,
            coalesce=coalesce,
            spill_dir=args.spill_dir,
            customize_workers=args.customize_workers,
        ),
        result_cache=ResultCache(
            capacity=args.result_capacity, metrics=registry
        ),
        metrics=registry,
        tracer=tracer,
    ) as stack:
        recorder = (
            MetricsRecorder(stack.metrics) if args.metrics_out else None
        )
        pipeline_snap = None
        try:
            with recording(recorder):
                if live:
                    report, pipeline_snap = _run_live_replay(
                        stack, net, mixed, args
                    )
                else:
                    report = replay(
                        stack,
                        queries,
                        repeats=args.repeat,
                        batch_size=args.batch,
                    )
        finally:
            if slow_handler is not None:
                logging.getLogger(SLOW_QUERY_LOGGER).removeHandler(
                    slow_handler
                )
        coalescing = stack.coalesce_snapshot()
        if args.metrics_out:
            from pathlib import Path

            Path(args.metrics_out).write_text(
                stack.metrics.to_json(), encoding="utf-8"
            )
            print(f"wrote metrics to {args.metrics_out}")
        if args.trace_out and tracer is not None:
            roots = tracer.write_jsonl(args.trace_out)
            print(f"wrote {roots} trace trees to {args.trace_out}")
    cache = report.cache
    print(
        f"replayed {report.queries} obfuscated queries "
        f"({len(queries)} unique x {args.repeat} passes, "
        f"engine={args.engine}, workers={args.concurrency}) "
        f"in {report.total_seconds:.3f}s"
    )
    print(
        f"latency p50/p95/p99: {report.p50_latency * 1e3:.2f} / "
        f"{report.p95_latency * 1e3:.2f} / {report.p99_latency * 1e3:.2f} ms"
    )
    print(
        f"result cache:        {cache.result_hits} hits, "
        f"{cache.result_misses} misses, {cache.result_evictions} evictions "
        f"(hit rate {cache.result_hit_rate:.0%})"
    )
    print(
        f"preprocessing cache: {cache.preprocessing_hits} hits, "
        f"{cache.preprocessing_misses} misses, "
        f"{cache.preprocessing_disk_loads} disk loads "
        f"(hit rate {cache.preprocessing_hit_rate:.0%})"
    )
    if coalescing is not None:
        print(
            f"coalescing:          {coalescing.windows} windows "
            f"(mean batch {coalescing.mean_window:.1f}, "
            f"max {coalescing.max_window}), "
            f"{coalescing.coalesced_queries} queries shared "
            f"{coalescing.shared_windows} union passes "
            f"({coalescing.union_pairs} union pairs)"
        )
    if pipeline_snap is not None:
        print(
            f"traffic pipeline:    {pipeline_snap.events} events -> "
            f"{pipeline_snap.installs} epoch installs "
            f"({pipeline_snap.edges_applied} edges, "
            f"{pipeline_snap.cells_recustomized} cells recustomized, "
            f"epoch {pipeline_snap.epoch})"
        )
        print(
            f"staleness p50/p95/max: {pipeline_snap.staleness_p50_ms:.2f} / "
            f"{pipeline_snap.staleness_p95_ms:.2f} / "
            f"{pipeline_snap.staleness_max_ms:.2f} ms"
        )
        if pipeline_snap.customize_workers:
            print(
                f"customize pool:      "
                f"{pipeline_snap.customize_workers} workers, "
                f"{pipeline_snap.customize_spills} blob spills"
            )
    return 0


def _run_live_replay(stack, net, mixed, args):
    """Replay a mixed stream with the traffic pipeline (and churn feeder)."""
    import random
    import threading

    from repro.service.pipeline import TrafficPipeline, replay_with_traffic
    from repro.workloads.replay import TrafficEvent

    # Warm before the first install: the worker recustomizes from the
    # current epoch's overlay, so without an artifact bound to epoch 0
    # a fast churn stream outruns query-time builds and every install
    # degrades to the full-rebuild path.
    stack.warm()
    pipeline = TrafficPipeline(stack, debounce_ms=args.debounce_ms)
    pipeline.start()
    stop_feeder = threading.Event()
    feeder = None
    if args.churn_cells_per_min > 0:
        interval = 60.0 / args.churn_cells_per_min

        def feed() -> None:
            rng = random.Random(args.seed + 1)
            edges = list(net.edges())
            while not stop_feeder.wait(interval):
                u, v, w = rng.choice(edges)
                pipeline.publish(
                    TrafficEvent(u, v, w * (0.5 + rng.random()), 0)
                )

        feeder = threading.Thread(
            target=feed, name="repro-churn", daemon=True
        )
        feeder.start()
    try:
        report = replay_with_traffic(
            stack,
            mixed,
            pipeline,
            repeats=args.repeat,
            batch_size=args.batch,
        )
    finally:
        stop_feeder.set()
        if feeder is not None:
            feeder.join()
        pipeline.stop()
    return report, pipeline.snapshot()


def _walk_span_dicts(doc: dict):
    """Yield ``doc`` and every descendant span dict (pre-order)."""
    yield doc
    for child in doc.get("children", ()):
        yield from _walk_span_dicts(child)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.service.stats import percentile

    if not args.metrics and not args.traces:
        print("error: pass --metrics and/or --traces", file=sys.stderr)
        return 1
    if args.metrics:
        doc = json.loads(Path(args.metrics).read_text(encoding="utf-8"))
        metrics = doc.get("metrics", {})
        print(f"metrics: {len(metrics)} instruments from {args.metrics}")
        for name in sorted(metrics):
            entry = metrics[name]
            if entry["type"] == "histogram":
                shown = f"count={entry['count']} sum={entry['sum']:.6f}"
            else:
                shown = f"value={entry['value']}"
            print(f"  {entry['type']:<9} {name} {shown}")
    if args.traces:
        roots = [
            json.loads(line)
            for line in Path(args.traces)
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip()
        ]
        durations: dict[str, list[float]] = {}
        for root in roots:
            for span in _walk_span_dicts(root):
                durations.setdefault(span["name"], []).append(
                    span["duration"]
                )
        print(f"traces: {len(roots)} root spans from {args.traces}")
        for name in sorted(durations):
            values = sorted(durations[name])
            p50 = percentile(values, 0.50) * 1e3
            p95 = percentile(values, 0.95) * 1e3
            print(
                f"  {name:<24} n={len(values):<6} "
                f"p50={p50:.3f}ms p95={p95:.3f}ms"
            )
        if args.top > 0 and roots:
            slowest = sorted(
                roots, key=lambda r: r["duration"], reverse=True
            )[: args.top]
            print(f"slowest {len(slowest)} roots:")
            for root in slowest:
                attrs = root.get("attrs", {})
                shown = " ".join(
                    f"{k}={attrs[k]}" for k in sorted(attrs)
                )
                print(
                    f"  {root['duration'] * 1e3:9.3f}ms "
                    f"{root['name']} {shown}"
                )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_all

    for result in run_all(
        [eid.upper() for eid in args.ids],
        telemetry_dir=args.telemetry_dir,
    ):
        print(result)
        print()
    if args.telemetry_dir:
        print(f"telemetry written to {args.telemetry_dir}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.gateway import GatewayConfig, run_gateway
    from repro.service.serving import CoalesceConfig, ServingConfig

    if args.workers < 0 or args.concurrency < 1:
        print(
            "error: --workers must be >= 0 and --concurrency >= 1",
            file=sys.stderr,
        )
        return 1
    net = read_network(args.network)
    serving = ServingConfig(
        engine=args.engine,
        max_workers=args.concurrency,
        coalesce=(
            CoalesceConfig(max_batch=args.coalesce_window)
            if args.coalesce_window
            else None
        ),
        spill_dir=args.spill_dir,
    )
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
    )
    run_gateway(net, serving=serving, config=config)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.core.obfuscator import PathQueryObfuscator
    from repro.service.wire import RouteRequest
    from repro.workloads.loadgen import run_load
    from repro.workloads.replay import WorkloadEntry, read_workload_items

    if args.clients < 1 or args.repeats < 1:
        print(
            "error: --clients and --repeats must be >= 1", file=sys.stderr
        )
        return 1
    net = read_network(args.network)
    entries = [
        item
        for item in read_workload_items(args.workload)
        if isinstance(item, WorkloadEntry)
    ]
    if not entries:
        print("error: empty workload", file=sys.stderr)
        return 1
    # Same one-time obfuscation as serve-replay: the gateway sees the
    # fixed server-visible stream, repeated --repeats times.
    obfuscator = PathQueryObfuscator(net, seed=args.seed)
    requests = [e.as_request(f"w-{i}") for i, e in enumerate(entries)]
    records = obfuscator.obfuscate_batch(requests, mode=args.mode)
    wire_requests = [
        RouteRequest.from_query(record.query) for record in records
    ]
    report = run_load(
        args.host,
        args.port,
        wire_requests,
        clients=args.clients,
        repeats=args.repeats,
    )
    print(
        f"sent {report.requests} requests over {args.clients} clients "
        f"in {report.total_seconds:.3f}s ({report.rps:.0f} rps)"
    )
    print(
        f"latency p50/p99: {report.p50_latency * 1e3:.2f} / "
        f"{report.p99_latency * 1e3:.2f} ms; errors: {report.errors}"
    )
    if args.json_out:
        from pathlib import Path
        import json as _json

        Path(args.json_out).write_text(
            _json.dumps(report.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"wrote load report to {args.json_out}")
    return 0 if report.errors == 0 else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "summarize": _cmd_summarize,
        "partition": _cmd_partition,
        "route": _cmd_route,
        "protect": _cmd_protect,
        "workload": _cmd_workload,
        "scenario": _cmd_scenario,
        "serve-replay": _cmd_serve_replay,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "obs-report": _cmd_obs_report,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
