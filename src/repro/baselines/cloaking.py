"""Spatial cloaking [5-7]: coarsen the endpoints to grid cells.

The client strips address detail, sending only the cell each endpoint
falls in.  "Existing directions search services may arbitrarily pick a
point for an imprecise address to perform the path search" (Section II),
so the server picks one node per cell — seeded here for reproducibility —
and routes between the picks.  The result likely has the wrong endpoints
(Figure 2(c)); privacy is the cell's k-anonymity.
"""

from __future__ import annotations

import random

from repro.baselines.base import MechanismOutcome, PrivacyMechanism
from repro.core.protocol import NODE_ID_BYTES, PATH_HEADER_BYTES
from repro.core.query import ClientRequest
from repro.network.graph import RoadNetwork
from repro.network.spatial import GridSpatialIndex
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats

__all__ = ["CloakingMechanism"]


class CloakingMechanism(PrivacyMechanism):
    """Cloak both endpoints into spatial-index cells.

    Parameters
    ----------
    network:
        The road network.
    cell_size:
        Side length of the cloaking cells; larger cells mean stronger
        privacy and worse results.  Defaults to the spatial index's
        automatic sizing.
    seed:
        Seed for the server's arbitrary pick inside each cell.
    """

    name = "cloaking"

    def __init__(
        self,
        network: RoadNetwork,
        cell_size: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(network)
        self._index = GridSpatialIndex(network, cell_size=cell_size)
        self._rng = random.Random(seed)

    @property
    def cell_size(self) -> float:
        """The cloaking cell side length."""
        return self._index.cell_size

    def answer(self, request: ClientRequest) -> MechanismOutcome:
        s_cell = self._index.snap(request.query.source)
        t_cell = self._index.snap(request.query.destination)
        s_members = self._index.cell_members(s_cell)
        t_members = self._index.cell_members(t_cell)
        # Server-side arbitrary pick inside each cloaked cell.
        s_pick = self._rng.choice(s_members)
        t_pick = self._rng.choice(t_members)
        stats = SearchStats()
        if s_pick == t_pick:
            path = None
        else:
            path = dijkstra_path(self._network, s_pick, t_pick, stats=stats)
        exact, displacement, distance_error = self._score(request, path)
        # The server knows the true endpoints lie somewhere in the cells:
        # its candidate set is the cross product of the cell memberships.
        candidate_pairs = max(len(s_members) * len(t_members), 1)
        traffic = 4 * NODE_ID_BYTES  # two cell coordinates ~ two node ids each
        if path is not None:
            traffic += PATH_HEADER_BYTES + NODE_ID_BYTES * len(path.nodes)
        return MechanismOutcome(
            mechanism=self.name,
            user_path=path,
            exact=exact,
            endpoint_displacement=displacement,
            distance_error=distance_error,
            breach=1.0 / candidate_pairs,
            server_stats=stats,
            candidate_paths=0 if path is None else 1,
            traffic_bytes=traffic,
        )
