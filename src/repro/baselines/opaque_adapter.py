"""Adapter putting OPAQUE behind the :class:`PrivacyMechanism` interface.

Lets experiment E3 compare OPAQUE row-for-row with the baselines.  Each
``answer()`` call runs one request through a private
:class:`~repro.core.system.OpaqueSystem` (independent mode — a single
request cannot share).  For shared-mode measurements use
:class:`~repro.core.system.OpaqueSystem` directly with a batch.
"""

from __future__ import annotations

from repro.baselines.base import MechanismOutcome, PrivacyMechanism
from repro.core.privacy import breach_probability
from repro.core.query import ClientRequest
from repro.core.system import OpaqueSystem
from repro.network.graph import RoadNetwork
from repro.search.multi import MultiSourceMultiDestProcessor

__all__ = ["OpaqueMechanism"]


class OpaqueMechanism(PrivacyMechanism):
    """OPAQUE (independent obfuscated path query) as a mechanism.

    Parameters
    ----------
    network:
        The road network.
    strategy:
        Fake endpoint strategy (default compact; see
        :mod:`repro.core.endpoints`).
    processor:
        Server-side MSMD strategy (default shared-tree).
    seed:
        Obfuscator seed.
    """

    name = "opaque"

    def __init__(
        self,
        network: RoadNetwork,
        strategy=None,
        processor: MultiSourceMultiDestProcessor | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(network)
        self._system = OpaqueSystem(
            network,
            mode="independent",
            strategy=strategy,
            processor=processor,
            seed=seed,
        )

    @property
    def system(self) -> OpaqueSystem:
        """The wrapped OPAQUE deployment."""
        return self._system

    def answer(self, request: ClientRequest) -> MechanismOutcome:
        results = self._system.submit([request])
        report = self._system.last_report
        assert report is not None  # submit always sets it
        path = results[request.user]
        exact, displacement, distance_error = self._score(request, path)
        record = report.records[0]
        return MechanismOutcome(
            mechanism=self.name,
            user_path=path,
            exact=exact,
            endpoint_displacement=displacement,
            distance_error=distance_error,
            breach=breach_probability(record.query),
            server_stats=report.server_stats,
            candidate_paths=report.candidate_paths,
            traffic_bytes=report.traffic.server_side_bytes,
        )
