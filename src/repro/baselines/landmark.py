"""Landmark approach [3, 4]: query between nearby public landmarks.

The true source and destination are replaced by the nearest members of a
public landmark set, so the server never sees the user's endpoints.  The
cost is result relevance: "the retrieved result path cannot connect s_A to
t_A" (Figure 2(b)) — the returned path links the two landmarks instead.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import MechanismOutcome, PrivacyMechanism
from repro.core.protocol import NODE_ID_BYTES, PATH_HEADER_BYTES
from repro.core.query import ClientRequest
from repro.exceptions import QueryError
from repro.network.graph import NodeId, RoadNetwork
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats

__all__ = ["LandmarkMechanism"]


class LandmarkMechanism(PrivacyMechanism):
    """Replace both endpoints by their nearest landmarks.

    Parameters
    ----------
    network:
        The road network.
    landmarks:
        Public landmark node ids (monuments, stations...).  Must be
        non-empty and all present in the network.
    """

    name = "landmark"

    def __init__(self, network: RoadNetwork, landmarks: Sequence[NodeId]) -> None:
        super().__init__(network)
        if not landmarks:
            raise QueryError("landmark mechanism needs at least one landmark")
        for node in landmarks:
            if node not in network:
                raise QueryError(f"landmark {node!r} is not in the network")
        self._landmarks = list(dict.fromkeys(landmarks))

    @property
    def landmarks(self) -> list[NodeId]:
        """The public landmark set."""
        return list(self._landmarks)

    def _nearest_landmark(self, node: NodeId) -> NodeId:
        return min(
            self._landmarks,
            key=lambda lm: (self._network.euclidean_distance(node, lm), repr(lm)),
        )

    def answer(self, request: ClientRequest) -> MechanismOutcome:
        s_prime = self._nearest_landmark(request.query.source)
        t_prime = self._nearest_landmark(request.query.destination)
        stats = SearchStats()
        if s_prime == t_prime:
            # Both endpoints snap to the same landmark; the server has
            # nothing to compute and the user gets nothing useful.
            path = None
        else:
            path = dijkstra_path(self._network, s_prime, t_prime, stats=stats)
        exact, displacement, distance_error = self._score(request, path)
        traffic = 2 * NODE_ID_BYTES
        if path is not None:
            traffic += PATH_HEADER_BYTES + NODE_ID_BYTES * len(path.nodes)
        # The server cannot see the true pair at all; exact-pair breach is
        # zero.  (It still learns the user is near the landmarks, a coarser
        # leak outside Definition 2's scope.)
        return MechanismOutcome(
            mechanism=self.name,
            user_path=path,
            exact=exact,
            endpoint_displacement=displacement,
            distance_error=distance_error,
            breach=0.0,
            server_stats=stats,
            candidate_paths=0 if path is None else 1,
            traffic_bytes=traffic,
        )
