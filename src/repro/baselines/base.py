"""Common interface and scoring for privacy mechanisms.

A :class:`PrivacyMechanism` answers one client request using some privacy
technique and reports a :class:`MechanismOutcome` with the three axes the
paper's Section II comparison turns on:

* **result quality** — is the returned path the user's true shortest path
  (``exact``), and if not, how far off are its endpoints
  (``endpoint_displacement``) and its cost (``distance_error``)?
* **privacy** — ``breach`` is the probability the server identifies the
  true ``(s, t)`` pair from what it observed;
* **overhead** — server search cost, number of candidate paths computed,
  and bytes across the server link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import ClientRequest
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra_path
from repro.search.result import PathResult, SearchStats

__all__ = ["MechanismOutcome", "PrivacyMechanism"]


@dataclass(slots=True)
class MechanismOutcome:
    """Scorecard of one mechanism answering one request."""

    mechanism: str
    user_path: PathResult | None
    exact: bool
    endpoint_displacement: float
    distance_error: float
    breach: float
    server_stats: SearchStats = field(default_factory=SearchStats)
    candidate_paths: int = 0
    traffic_bytes: int = 0


class PrivacyMechanism:
    """Interface every baseline (and the OPAQUE adapter) implements.

    Parameters
    ----------
    network:
        The road network both the user and the server operate on.
    """

    #: short identifier used in experiment tables
    name: str = "abstract"

    def __init__(self, network: RoadNetwork) -> None:
        self._network = network

    @property
    def network(self) -> RoadNetwork:
        """The road network in use."""
        return self._network

    def answer(self, request: ClientRequest) -> MechanismOutcome:
        """Answer ``request`` under this mechanism; see
        :class:`MechanismOutcome`."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared scoring helpers
    # ------------------------------------------------------------------
    def _true_path(self, request: ClientRequest) -> PathResult:
        """The ground-truth shortest path (scoring only; not server work)."""
        return dijkstra_path(
            self._network, request.query.source, request.query.destination
        )

    def _score(
        self, request: ClientRequest, returned: PathResult | None
    ) -> tuple[bool, float, float]:
        """Compute ``(exact, endpoint_displacement, distance_error)``.

        ``endpoint_displacement`` is the Euclidean gap between the true
        endpoints and the returned path's endpoints — the "irrelevant
        result" effect of Figure 2(b)/(c).  ``distance_error`` is the
        returned path's cost minus the true shortest distance (0 when
        exact; meaningless and reported as ``inf`` when the path does not
        even connect the right endpoints).
        """
        truth = self._true_path(request)
        if returned is None:
            return False, float("inf"), float("inf")
        displacement = self._network.euclidean_distance(
            request.query.source, returned.source
        ) + self._network.euclidean_distance(
            request.query.destination, returned.destination
        )
        connects = (
            returned.source == request.query.source
            and returned.destination == request.query.destination
        )
        if not connects:
            return False, displacement, float("inf")
        distance_error = returned.distance - truth.distance
        exact = abs(distance_error) <= 1e-9
        return exact, displacement, max(distance_error, 0.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
