"""Direct querying: no privacy protection at all.

The client sends ``Q(s, t)`` verbatim (Figure 1).  Exact result, minimal
cost, breach probability 1 — the lower-left corner of every
privacy/overhead trade-off plot.
"""

from __future__ import annotations

from repro.baselines.base import MechanismOutcome, PrivacyMechanism
from repro.core.protocol import NODE_ID_BYTES, PATH_HEADER_BYTES
from repro.core.query import ClientRequest
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats

__all__ = ["DirectMechanism"]


class DirectMechanism(PrivacyMechanism):
    """Send the true query to the server unchanged."""

    name = "direct"

    def answer(self, request: ClientRequest) -> MechanismOutcome:
        stats = SearchStats()
        path = dijkstra_path(
            self._network, request.query.source, request.query.destination,
            stats=stats,
        )
        exact, displacement, distance_error = self._score(request, path)
        traffic = 2 * NODE_ID_BYTES + PATH_HEADER_BYTES + NODE_ID_BYTES * len(path.nodes)
        return MechanismOutcome(
            mechanism=self.name,
            user_path=path,
            exact=exact,
            endpoint_displacement=displacement,
            distance_error=distance_error,
            breach=1.0,
            server_stats=stats,
            candidate_paths=1,
            traffic_bytes=traffic,
        )
