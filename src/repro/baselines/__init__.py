"""Location-privacy baselines the paper compares against (Section II).

Each baseline implements the common :class:`PrivacyMechanism` interface so
experiment E3 can put them all in one table: direct querying (no
protection), the landmark approach [3,4], spatial cloaking [5-7], and
plain fake-query obfuscation [8].  OPAQUE itself is adapted to the same
interface by :class:`OpaqueMechanism`.
"""

from repro.baselines.base import MechanismOutcome, PrivacyMechanism
from repro.baselines.direct import DirectMechanism
from repro.baselines.landmark import LandmarkMechanism
from repro.baselines.cloaking import CloakingMechanism
from repro.baselines.plain_obfuscation import PlainObfuscationMechanism
from repro.baselines.opaque_adapter import OpaqueMechanism

__all__ = [
    "PrivacyMechanism",
    "MechanismOutcome",
    "DirectMechanism",
    "LandmarkMechanism",
    "CloakingMechanism",
    "PlainObfuscationMechanism",
    "OpaqueMechanism",
]
