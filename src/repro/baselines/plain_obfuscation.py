"""Plain fake-query obfuscation [8]: mix whole fake path queries.

The client submits a *set* of complete path queries — its real one plus
``num_fakes`` fabricated ones (Figure 2(d)).  The server answers each
query independently with a point-to-point search, so the user gets an
exact result and breach probability ``1/(1 + num_fakes)``, but every fake
costs a full search and a full returned path: the "overconsumption of
server and network resources" OPAQUE is designed to avoid.
"""

from __future__ import annotations

import random

from repro.baselines.base import MechanismOutcome, PrivacyMechanism
from repro.core.protocol import NODE_ID_BYTES, PATH_HEADER_BYTES
from repro.core.query import ClientRequest
from repro.network.graph import NodeId, RoadNetwork
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats

__all__ = ["PlainObfuscationMechanism"]


class PlainObfuscationMechanism(PrivacyMechanism):
    """Mix the true query with fully fabricated path queries.

    Parameters
    ----------
    network:
        The road network.
    num_fakes:
        Number of fake path queries mixed with the real one.  The
        anonymity set has ``num_fakes + 1`` members.
    seed:
        Seed for fake query generation.
    """

    name = "plain-obfuscation"

    def __init__(self, network: RoadNetwork, num_fakes: int = 3, seed: int = 0) -> None:
        super().__init__(network)
        if num_fakes < 0:
            raise ValueError("num_fakes must be >= 0")
        self._num_fakes = num_fakes
        self._rng = random.Random(seed)
        self._nodes: list[NodeId] = list(network.nodes())

    @property
    def num_fakes(self) -> int:
        """Fake queries mixed per request."""
        return self._num_fakes

    def _fake_query(self, exclude: set[tuple[NodeId, NodeId]]) -> tuple[NodeId, NodeId]:
        while True:
            s = self._rng.choice(self._nodes)
            t = self._rng.choice(self._nodes)
            if s != t and (s, t) not in exclude:
                return (s, t)

    def answer(self, request: ClientRequest) -> MechanismOutcome:
        true_pair = request.query.as_pair()
        pairs: list[tuple[NodeId, NodeId]] = [true_pair]
        seen = {true_pair}
        for _ in range(self._num_fakes):
            pair = self._fake_query(seen)
            seen.add(pair)
            pairs.append(pair)
        self._rng.shuffle(pairs)

        stats = SearchStats()
        user_path = None
        traffic = 0
        for s, t in pairs:
            traffic += 2 * NODE_ID_BYTES
            path = dijkstra_path(self._network, s, t, stats=stats)
            traffic += PATH_HEADER_BYTES + NODE_ID_BYTES * len(path.nodes)
            if (s, t) == true_pair:
                user_path = path
        exact, displacement, distance_error = self._score(request, user_path)
        return MechanismOutcome(
            mechanism=self.name,
            user_path=user_path,
            exact=exact,
            endpoint_displacement=displacement,
            distance_error=distance_error,
            breach=1.0 / len(pairs),
            server_stats=stats,
            candidate_paths=len(pairs),
            traffic_bytes=traffic,
        )
