"""Protection planning: choosing (f_S, f_T) for a breach target.

Section III-B closes with: "we balance the power of path privacy
protection and the processing cost by setting appropriate |S| and |T|".
Lemma 1 makes the two sides asymmetric — each extra *source* costs a whole
spanning tree, while extra *destinations* are nearly free once the tree
must reach the furthest one.  So for a fixed anonymity product
``f_S x f_T`` (fixed breach), the cheapest split loads the destination
side.

:func:`plan_protection` enumerates the candidate splits meeting a breach
target, prices each with the Lemma 1 estimator over a trial obfuscation
(no graph searches — Euclidean radii only), and returns them cheapest
first.  Experiment E11 validates the predicted ordering against measured
server cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.endpoints import FakeEndpointStrategy
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import ObfuscationError, QueryError
from repro.network.graph import RoadNetwork
from repro.search.cost_model import lemma1_cost_estimate

__all__ = ["ProtectionPlan", "plan_protection", "candidate_splits"]


@dataclass(frozen=True, slots=True)
class ProtectionPlan:
    """One candidate (f_S, f_T) split with its predicted price.

    Attributes
    ----------
    setting:
        The protection setting this plan realizes.
    breach:
        ``1/(f_S * f_T)``.
    predicted_cost:
        Lemma 1 estimate (Euclidean proxy, area units) of evaluating the
        trial obfuscated query this split produced.
    """

    setting: ProtectionSetting
    breach: float
    predicted_cost: float


def candidate_splits(
    max_breach: float,
    min_f_s: int = 1,
    min_f_t: int = 1,
    max_side: int = 16,
) -> list[tuple[int, int]]:
    """All (f_s, f_t) pairs meeting ``1/(f_s*f_t) <= max_breach``.

    Only *minimal* products are returned: for each ``f_s`` the smallest
    ``f_t`` that reaches the target (larger products only cost more).

    Raises
    ------
    QueryError
        If the target is unreachable within ``max_side`` per side, or the
        arguments are out of range.
    """
    if not 0 < max_breach <= 1:
        raise QueryError("max_breach must be in (0, 1]")
    if min_f_s < 1 or min_f_t < 1:
        raise QueryError("minimum sizes must be >= 1")
    if max_side < max(min_f_s, min_f_t):
        raise QueryError("max_side is below the minimum sizes")
    needed = math.ceil(1.0 / max_breach - 1e-9)
    splits: list[tuple[int, int]] = []
    for f_s in range(min_f_s, max_side + 1):
        f_t = max(min_f_t, math.ceil(needed / f_s))
        if f_t <= max_side:
            splits.append((f_s, f_t))
    if not splits:
        raise QueryError(
            f"no (f_s, f_t) within max_side={max_side} reaches breach "
            f"{max_breach}"
        )
    return splits


def plan_protection(
    network: RoadNetwork,
    query: PathQuery,
    max_breach: float,
    strategy: FakeEndpointStrategy | None = None,
    min_f_s: int = 1,
    min_f_t: int = 1,
    max_side: int = 16,
    seed: int = 0,
) -> list[ProtectionPlan]:
    """Rank protection settings meeting ``max_breach``, cheapest first.

    Each candidate split is realized as a trial obfuscation of ``query``
    (using ``strategy``, default compact) and priced with the Lemma 1
    Euclidean-proxy estimator — no shortest-path searches are run, so
    planning is cheap enough to do per request.

    Returns
    -------
    list[ProtectionPlan]
        Sorted by predicted cost (ties: stronger protection first, then
        smaller ``f_s``).  ``plans[0].setting`` is the recommendation.

    Raises
    ------
    QueryError
        If no split can reach the target.
    ObfuscationError
        If the map is too small to realize some split (that split is
        skipped; raised only when *every* split fails).
    """
    splits = candidate_splits(
        max_breach, min_f_s=min_f_s, min_f_t=min_f_t, max_side=max_side
    )
    plans: list[ProtectionPlan] = []
    last_error: ObfuscationError | None = None
    for f_s, f_t in splits:
        setting = ProtectionSetting(f_s, f_t)
        obfuscator = PathQueryObfuscator(network, strategy=strategy, seed=seed)
        request = ClientRequest("planner", query, setting)
        try:
            record = obfuscator.obfuscate_independent(request)
        except ObfuscationError as exc:
            last_error = exc
            continue
        cost = lemma1_cost_estimate(
            network,
            list(record.query.sources),
            list(record.query.destinations),
            use_network_distance=False,
        )
        plans.append(
            ProtectionPlan(
                setting=setting,
                breach=setting.target_breach,
                predicted_cost=cost,
            )
        )
    if not plans:
        assert last_error is not None
        raise last_error
    plans.sort(key=lambda p: (p.predicted_cost, p.breach, p.setting.f_s))
    return plans
