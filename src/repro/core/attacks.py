"""Adversary models against obfuscated path queries.

Two attacks from the paper's threat discussion:

* :class:`ServerAdversary` — the semi-trusted server guessing the true
  ``(s, t)`` pair inside an observed ``Q(S, T)``, optionally armed with
  endpoint-popularity priors from public information.  Definition 2's
  breach probability is this adversary's success rate under uniform
  priors; :func:`empirical_breach_rate` verifies that equality empirically
  (experiment E1).

* :class:`CollusionAttack` — the server colluding with additional parties
  (Section III-C motivates shared queries "to enhance privacy protection
  against collusion attacks").  Two collusion channels are modelled:

  - *participant collusion*: hidden users of a shared query reveal their
    own true endpoints, shrinking everyone else's anonymity sets;
  - *fake-pool compromise*: the adversary learns which endpoints the
    obfuscator fabricated (e.g. by compromising its decoy dictionary or
    RNG state).  Against an *independent* query this is fatal — every
    non-true endpoint is a fake, so stripping them reveals ``(s, t)``
    exactly.  Against a *shared* query the other members' real endpoints
    survive the stripping and the victim still hides among them.  This
    asymmetry is the paper's argument for the shared variant.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.obfuscator import ObfuscationRecord
from repro.core.privacy import pair_posterior
from repro.core.query import ClientRequest, ObfuscatedPathQuery
from repro.exceptions import QueryError
from repro.network.graph import NodeId

__all__ = [
    "ServerAdversary",
    "CollusionAttack",
    "CollusionOutcome",
    "LinkageAttack",
    "LinkageOutcome",
    "empirical_breach_rate",
]


class ServerAdversary:
    """The semi-trusted server trying to identify the true path query.

    Parameters
    ----------
    source_prior, destination_prior:
        Optional endpoint-popularity priors (public-information side
        channel).  ``None`` means uniform — the Definition 2 adversary.
    seed:
        RNG seed for tie-breaking and sampling guesses.
    """

    def __init__(
        self,
        source_prior: Mapping[NodeId, float] | None = None,
        destination_prior: Mapping[NodeId, float] | None = None,
        seed: int = 0,
    ) -> None:
        self._source_prior = source_prior
        self._destination_prior = destination_prior
        self._rng = random.Random(seed)

    def posterior(
        self, observed: ObfuscatedPathQuery
    ) -> dict[tuple[NodeId, NodeId], float]:
        """Posterior over candidate pairs given the observation and priors."""
        return pair_posterior(observed, self._source_prior, self._destination_prior)

    def guess(self, observed: ObfuscatedPathQuery) -> tuple[NodeId, NodeId]:
        """Sample one guess from the posterior.

        Sampling (rather than arg-max) makes the long-run success rate
        equal the true pair's posterior mass, which is the quantity
        Definition 2 bounds.
        """
        posterior = self.posterior(observed)
        pairs = list(posterior)
        weights = [posterior[p] for p in pairs]
        return self._rng.choices(pairs, weights=weights)[0]

    def best_guess(self, observed: ObfuscatedPathQuery) -> tuple[NodeId, NodeId]:
        """Deterministic maximum-posterior guess (ties broken by pair order)."""
        posterior = self.posterior(observed)
        return max(posterior, key=lambda pair: (posterior[pair], pairs_key(pair)))


def pairs_key(pair: tuple[NodeId, NodeId]) -> tuple[str, str]:
    """Stable tie-break key for pairs with heterogeneous node id types."""
    return (repr(pair[0]), repr(pair[1]))


def empirical_breach_rate(
    records: Sequence[ObfuscationRecord],
    adversary: ServerAdversary | None = None,
    trials_per_record: int = 1,
) -> float:
    """Fraction of adversary guesses that hit a hidden true query.

    For each record the adversary observes only ``Q(S, T)`` and guesses;
    a guess counts as a breach when it equals the true ``(s, t)`` of *any*
    request hidden in the record.

    Parameters
    ----------
    records:
        Ground-truth obfuscation records (their ``query`` is the
        observation, their ``requests`` the secrets).
    adversary:
        Defaults to the uniform Definition 2 adversary.
    trials_per_record:
        Guesses per record; more trials tighten the estimate.
    """
    if not records:
        raise QueryError("need at least one record to measure breach rate")
    if trials_per_record < 1:
        raise ValueError("trials_per_record must be >= 1")
    if adversary is None:
        adversary = ServerAdversary()
    hits = 0
    total = 0
    for record in records:
        true_pairs = {r.query.as_pair() for r in record.requests}
        for _ in range(trials_per_record):
            total += 1
            if adversary.guess(record.query) in true_pairs:
                hits += 1
    return hits / total


@dataclass(frozen=True, slots=True)
class LinkageOutcome:
    """Result of intersecting a linked sequence of observations.

    Attributes
    ----------
    candidate_sources, candidate_destinations:
        Endpoints present in *every* linked observation.
    breach_probability:
        ``1 / (|cand_S| x |cand_T|)`` after the intersection.
    observations:
        How many linked queries were intersected.
    """

    candidate_sources: frozenset[NodeId]
    candidate_destinations: frozenset[NodeId]
    breach_probability: float
    observations: int

    @property
    def exposed(self) -> bool:
        """Whether the intersection isolated a single (s, t) pair."""
        return (
            len(self.candidate_sources) == 1
            and len(self.candidate_destinations) == 1
        )


class LinkageAttack:
    """Intersection attack over a user's repeated obfuscated queries.

    Section II: "the server can accumulate all the path queries received
    to learn where individuals travel".  If the server can *link* the
    obfuscated queries of one recurring trip (by timing, session, or
    network metadata), the true endpoints appear in every observation
    while independently re-drawn fakes churn — intersecting the source
    sets and destination sets across observations rapidly isolates the
    true pair.

    The countermeasure is deterministic decoys:
    ``PathQueryObfuscator.obfuscate_independent(request, sticky_key=...)``
    re-issues the *same* fakes for the same query, making the intersection
    a fixpoint at the Definition 2 anonymity.
    """

    def intersect(
        self, observations: Sequence[ObfuscatedPathQuery]
    ) -> LinkageOutcome:
        """Intersect candidate sets across linked observations.

        Raises
        ------
        QueryError
            On an empty sequence, or if the intersection is empty (the
            observations cannot belong to one recurring query).
        """
        if not observations:
            raise QueryError("linkage attack needs at least one observation")
        sources = set(observations[0].source_set)
        destinations = set(observations[0].destination_set)
        for observed in observations[1:]:
            sources &= observed.source_set
            destinations &= observed.destination_set
        if not sources or not destinations:
            raise QueryError(
                "intersection is empty; observations are not one recurring query"
            )
        return LinkageOutcome(
            candidate_sources=frozenset(sources),
            candidate_destinations=frozenset(destinations),
            breach_probability=1.0 / (len(sources) * len(destinations)),
            observations=len(observations),
        )


@dataclass(frozen=True, slots=True)
class CollusionOutcome:
    """Result of a collusion attack against one victim.

    Attributes
    ----------
    candidate_sources, candidate_destinations:
        Endpoints the adversary could not eliminate.
    breach_probability:
        Chance a uniform guess over the surviving pairs hits the victim's
        true query: ``1 / (|cand_S| x |cand_T|)``.
    exposed:
        ``True`` when the surviving sets are singletons — the victim's
        query is fully revealed.
    """

    candidate_sources: frozenset[NodeId]
    candidate_destinations: frozenset[NodeId]
    breach_probability: float
    exposed: bool


class CollusionAttack:
    """Server + colluding parties against one victim request.

    Parameters
    ----------
    colluding_users:
        User ids (hidden participants of the same shared query) who share
        their own true endpoints with the server.
    knows_fake_pool:
        Whether the adversary can recognize the obfuscator's fabricated
        endpoints (compromised decoy dictionary / RNG state).
    """

    def __init__(
        self,
        colluding_users: Sequence[str] = (),
        knows_fake_pool: bool = False,
    ) -> None:
        self._colluders = frozenset(colluding_users)
        self._knows_fake_pool = knows_fake_pool

    @property
    def colluding_users(self) -> frozenset[str]:
        """Ids of the colluding participants."""
        return self._colluders

    def attack(
        self, record: ObfuscationRecord, victim: ClientRequest
    ) -> CollusionOutcome:
        """Eliminate endpoints the collusion exposes; score what survives.

        Elimination rules:

        * every colluder reveals its own true source and destination —
          those leave the victim's anonymity sets *unless* the victim
          shares the endpoint (a shared node still hides the victim);
        * with ``knows_fake_pool`` all fabricated endpoints are removed.

        The victim's own endpoints always survive (they are real and not
        the colluders').

        Raises
        ------
        QueryError
            If ``victim`` is not hidden inside ``record`` or is itself a
            colluder (a colluder has no privacy left to measure).
        """
        if victim not in record.requests:
            raise QueryError("victim request is not part of this record")
        if victim.user in self._colluders:
            raise QueryError("victim cannot be one of the colluders")

        sources = set(record.query.sources)
        destinations = set(record.query.destinations)
        if self._knows_fake_pool:
            sources -= record.fake_sources
            destinations -= record.fake_destinations
        victim_s = victim.query.source
        victim_t = victim.query.destination
        for request in record.requests:
            if request.user not in self._colluders:
                continue
            if request.query.source != victim_s:
                sources.discard(request.query.source)
            if request.query.destination != victim_t:
                destinations.discard(request.query.destination)
        # The victim's endpoints are real; they can never be eliminated.
        sources.add(victim_s)
        destinations.add(victim_t)
        breach = 1.0 / (len(sources) * len(destinations))
        return CollusionOutcome(
            candidate_sources=frozenset(sources),
            candidate_destinations=frozenset(destinations),
            breach_probability=breach,
            exposed=len(sources) == 1 and len(destinations) == 1,
        )
