"""Path queries and obfuscated path queries (Definitions 1 of the paper).

A :class:`PathQuery` is the user's true intent ``Q(s, t)``.  An
:class:`ObfuscatedPathQuery` is the server-visible ``Q(S, T)`` with
``s in S`` and ``t in T``; it stands for the whole cross product of path
queries, which is what makes it private.  :class:`ProtectionSetting`
carries a user's requested obfuscation power ``(f_S, f_T)`` and
:class:`ClientRequest` is the tuple ``<u, (s, t), f_S, f_T>`` each client
sends to the obfuscator (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.network.graph import NodeId

__all__ = ["PathQuery", "ProtectionSetting", "ClientRequest", "ObfuscatedPathQuery"]


@dataclass(frozen=True, slots=True)
class PathQuery:
    """A true path query ``Q(s, t)``.

    Raises
    ------
    QueryError
        If the source equals the destination (there is nothing to route).
    """

    source: NodeId
    destination: NodeId

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise QueryError(
                f"source and destination coincide: {self.source!r}"
            )

    def as_pair(self) -> tuple[NodeId, NodeId]:
        """The ``(s, t)`` tuple."""
        return (self.source, self.destination)


@dataclass(frozen=True, slots=True)
class ProtectionSetting:
    """A user's desired obfuscation power ``(f_S, f_T)``.

    ``f_s`` and ``f_t`` are the requested sizes of the server-visible
    source and destination sets.  ``(1, 1)`` means no protection.
    """

    f_s: int = 2
    f_t: int = 2

    def __post_init__(self) -> None:
        if self.f_s < 1 or self.f_t < 1:
            raise QueryError(f"protection sizes must be >= 1, got {self}")

    @property
    def target_breach(self) -> float:
        """Breach probability this setting is asking for: ``1/(f_S * f_T)``."""
        return 1.0 / (self.f_s * self.f_t)


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """The request tuple ``<u, (s, t), f_S, f_T>`` sent to the obfuscator."""

    user: str
    query: PathQuery
    setting: ProtectionSetting = field(default_factory=ProtectionSetting)

    def __post_init__(self) -> None:
        if not self.user:
            raise QueryError("request needs a non-empty user id")


@dataclass(frozen=True, slots=True)
class ObfuscatedPathQuery:
    """The server-visible query ``Q(S, T)`` (Definition 1).

    Invariants: both sets are non-empty and duplicate-free.  Endpoints are
    stored as tuples to keep a deterministic wire order; membership tests
    use precomputed frozensets.
    """

    sources: tuple[NodeId, ...]
    destinations: tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if not self.sources or not self.destinations:
            raise QueryError("obfuscated query needs non-empty S and T")
        if len(set(self.sources)) != len(self.sources):
            raise QueryError("duplicate entries in S")
        if len(set(self.destinations)) != len(self.destinations):
            raise QueryError("duplicate entries in T")

    @property
    def source_set(self) -> frozenset[NodeId]:
        """``S`` as a frozenset."""
        return frozenset(self.sources)

    @property
    def destination_set(self) -> frozenset[NodeId]:
        """``T`` as a frozenset."""
        return frozenset(self.destinations)

    @property
    def num_pairs(self) -> int:
        """``|S| x |T|`` — how many path queries this stands for."""
        return len(self.sources) * len(self.destinations)

    def covers(self, query: PathQuery) -> bool:
        """Whether ``query`` is one of the represented path queries."""
        return (
            query.source in self.source_set
            and query.destination in self.destination_set
        )

    def pairs(self) -> list[tuple[NodeId, NodeId]]:
        """All ``(s, t)`` pairs in deterministic order."""
        return [(s, t) for s in self.sources for t in self.destinations]

    def expand(self) -> list[PathQuery]:
        """The represented path queries, skipping degenerate ``s == t`` pairs.

        A pair whose source equals its destination can arise when the same
        node appears in both S and T (allowed — it is just another decoy);
        the server still returns a trivial path for it, but it is not a
        meaningful :class:`PathQuery`.
        """
        out: list[PathQuery] = []
        for s, t in self.pairs():
            if s != t:
                out.append(PathQuery(s, t))
        return out

    def satisfies(self, setting: ProtectionSetting) -> bool:
        """Whether the set sizes meet a protection setting's ``(f_S, f_T)``."""
        return len(self.sources) >= setting.f_s and len(self.destinations) >= setting.f_t

    def __repr__(self) -> str:
        return (
            f"ObfuscatedPathQuery(|S|={len(self.sources)}, "
            f"|T|={len(self.destinations)})"
        )
