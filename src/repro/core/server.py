"""The directions search server with its obfuscated path query processor.

The server is semi-trusted: it answers queries honestly but may analyze
everything it sees.  Accordingly :class:`DirectionsServer` does two things:

* evaluates obfuscated path queries with a pluggable MSMD strategy over a
  (optionally paged) road network, returning every candidate path, and
* logs every query it observes (``observed_queries``), which is exactly
  the adversary's view used by :mod:`repro.core.attacks`.

When a :class:`~repro.service.serving.ServingStack` fronts the server,
some responses are served from the result cache without a fresh search;
those responses carry ``from_cache=True`` and are recorded through
:meth:`DirectionsServer.record` so the adversary's view and the load
counters stay complete while the search-cost counters only reflect work
actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import ObfuscatedPathQuery
from repro.network.graph import RoadNetwork
from repro.network.storage import PagedNetwork
from repro.obs.metrics import MetricsRegistry
from repro.search.multi import (
    MSMDResult,
    MultiSourceMultiDestProcessor,
    SharedTreeProcessor,
)
from repro.search.result import SearchStats

__all__ = ["ServerResponse", "DirectionsServer"]


@dataclass(frozen=True, slots=True)
class ServerResponse:
    """What the server returns for one obfuscated path query.

    Attributes
    ----------
    query:
        The obfuscated query that was answered.
    candidates:
        Every candidate result path (the |S| x |T| table).
    from_cache:
        ``True`` when the serving layer supplied the table without
        fresh search work (result-cache hit, or a duplicate query in
        the same batch); ``candidates.stats`` then describes the
        *original* computation, not work done for this response.
    coalesced:
        ``True`` when the table was sliced out of a shared union kernel
        pass that merged >= 2 concurrent queries
        (:class:`~repro.service.serving.QueryCoalescer`).  The pass's
        total search work is attributed to the first sliced table, so
        the other coalesced responses carry zero stats and counters
        never double-count shared work.
    """

    query: ObfuscatedPathQuery
    candidates: MSMDResult
    from_cache: bool = False
    coalesced: bool = False

    @property
    def num_paths(self) -> int:
        """Number of candidate result paths (|S| x |T|)."""
        return self.candidates.num_paths


@dataclass(slots=True)
class ServerCounters:
    """Cumulative server-side load counters.

    ``coalesced_queries`` counts responses sliced from shared union
    kernel passes (queries that were answered together with concurrent
    queries of other sessions instead of paying their own pass).

    Since the telemetry subsystem landed this is a *view*: the live
    values are registry instruments (``repro_server_*`` metrics on the
    server's :class:`~repro.obs.metrics.MetricsRegistry`) and
    :attr:`DirectionsServer.counters` assembles them on read, so the
    public shape is unchanged while exposition formats get the same
    numbers.
    """

    queries_served: int = 0
    paths_returned: int = 0
    coalesced_queries: int = 0
    stats: SearchStats = field(default_factory=SearchStats)


class DirectionsServer:
    """Directions search server running an MSMD processor.

    Parameters
    ----------
    network:
        The server's sophisticated road map.
    processor:
        MSMD evaluation strategy (defaults to the paper's
        :class:`~repro.search.multi.SharedTreeProcessor`).
    engine:
        Name from the :data:`repro.search.ENGINES` registry (e.g.
        ``"ch"``); resolved to that engine's MSMD processor.  Mutually
        exclusive with ``processor``.
    paged:
        When ``True`` the map is wrapped in a
        :class:`~repro.network.storage.PagedNetwork` so responses carry
        page-fault counts (the paper's I/O cost).
    page_capacity, buffer_capacity:
        Storage-simulator knobs, used only when ``paged``.
    """

    def __init__(
        self,
        network: RoadNetwork,
        processor: MultiSourceMultiDestProcessor | None = None,
        engine: str | None = None,
        paged: bool = False,
        page_capacity: int = 64,
        buffer_capacity: int = 32,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._base_network = network
        if paged:
            self._network = PagedNetwork(
                network,
                page_capacity=page_capacity,
                buffer_capacity=buffer_capacity,
            )
        else:
            self._network = network
        if processor is not None and engine is not None:
            raise ValueError("pass either processor or engine, not both")
        if processor is None and engine is not None:
            from repro.search import get_engine

            processor = get_engine(engine).make_processor()
        self._processor = (
            processor if processor is not None else SharedTreeProcessor()
        )
        #: the adversary's view: every Q(S, T) this server ever saw
        self.observed_queries: list[ObfuscatedPathQuery] = []
        #: registry holding the live load counters (``repro_server_*``)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        reg = self.metrics
        self._m_queries = reg.counter(
            "repro_server_queries_served_total",
            desc="obfuscated queries answered (cache hits included)",
        )
        self._m_paths = reg.counter(
            "repro_server_paths_returned_total",
            desc="candidate paths returned across all responses",
        )
        self._m_coalesced = reg.counter(
            "repro_server_coalesced_queries_total",
            desc="responses sliced from shared union kernel passes",
        )
        self._m_settled = reg.counter(
            "repro_server_settled_nodes_total",
            desc="nodes settled by fresh (non-cached) search work",
        )
        self._m_relaxed = reg.counter(
            "repro_server_relaxed_edges_total",
            desc="edge relaxations by fresh search work",
        )
        self._m_pushes = reg.counter(
            "repro_server_heap_pushes_total",
            desc="priority-queue insertions by fresh search work",
        )
        self._m_faults = reg.counter(
            "repro_server_page_faults_total",
            desc="physical page reads (paged networks only)",
        )
        self._m_pages = reg.counter(
            "repro_server_pages_touched_total",
            desc="distinct pages accessed (paged networks only)",
        )
        self._m_max_dist = reg.gauge(
            "repro_server_max_settled_distance",
            desc="largest search-tree radius seen (paper cost bound)",
        )

    @property
    def processor(self) -> MultiSourceMultiDestProcessor:
        """The MSMD strategy in use."""
        return self._processor

    @property
    def network(self):
        """The (possibly paged) network queries run against."""
        return self._network

    def answer(self, query: ObfuscatedPathQuery) -> ServerResponse:
        """Evaluate ``Q(S, T)`` and return all candidate result paths.

        Each call resets the paged network's buffer pool first (when
        paging is on) so per-query page-fault counts are comparable.
        """
        # Observe before evaluating: the adversary sees every query it
        # receives, including ones whose evaluation fails.
        self.observed_queries.append(query)
        if isinstance(self._network, PagedNetwork):
            self._network.reset_io()
        result = self._processor.process(
            self._network, list(query.sources), list(query.destinations)
        )
        response = ServerResponse(query=query, candidates=result)
        self._account(response)
        return response

    def record(self, response: ServerResponse) -> None:
        """Account for one response the serving layer produced on our behalf.

        Appends the query to the adversary's view and updates the load
        counters; search-cost counters are only merged for responses
        that performed fresh work (``from_cache=False``).
        """
        self.observed_queries.append(response.query)
        self._account(response)

    @property
    def counters(self) -> ServerCounters:
        """Cumulative load counters, assembled from the metrics registry.

        Returns a fresh :class:`ServerCounters` snapshot on every
        access; mutate the server (answer/record), not the snapshot.
        """
        return ServerCounters(
            queries_served=self._m_queries.value,
            paths_returned=self._m_paths.value,
            coalesced_queries=self._m_coalesced.value,
            stats=SearchStats(
                settled_nodes=self._m_settled.value,
                relaxed_edges=self._m_relaxed.value,
                heap_pushes=self._m_pushes.value,
                page_faults=self._m_faults.value,
                pages_touched=self._m_pages.value,
                max_settled_distance=self._m_max_dist.value,
            ),
        )

    def _account(self, response: ServerResponse) -> None:
        self._m_queries.inc()
        self._m_paths.inc(response.num_paths)
        if response.coalesced:
            self._m_coalesced.inc()
        if not response.from_cache:
            stats = response.candidates.stats
            self._m_settled.inc(stats.settled_nodes)
            self._m_relaxed.inc(stats.relaxed_edges)
            self._m_pushes.inc(stats.heap_pushes)
            if stats.page_faults:
                self._m_faults.inc(stats.page_faults)
            if stats.pages_touched:
                self._m_pages.inc(stats.pages_touched)
            if stats.max_settled_distance:
                self._m_max_dist.set_max(stats.max_settled_distance)

    def reset_counters(self) -> None:
        """Zero the cumulative counters and forget observed queries."""
        self.observed_queries.clear()
        for instrument in (
            self._m_queries, self._m_paths, self._m_coalesced,
            self._m_settled, self._m_relaxed, self._m_pushes,
            self._m_faults, self._m_pages, self._m_max_dist,
        ):
            instrument.reset()

    def __repr__(self) -> str:
        return (
            f"DirectionsServer(processor={self._processor.name!r}, "
            f"network={self._network!r})"
        )
