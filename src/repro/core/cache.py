"""Obfuscator-side result path cache.

Every obfuscated query makes the server compute |S| x |T| candidate
paths; all but a handful answer nobody.  But the obfuscator *sees* them
all — and may legitimately retain them, because candidate paths contain no
user attribution.  Caching them means a later request whose (s, t) pair
was already computed as somebody's decoy can be answered without
contacting the server at all: zero marginal server cost and zero marginal
exposure (the server never learns the query happened).

:class:`PathCache` is a bounded LRU over (source, destination) pairs; an
undirected network lets a hit on (t, s) serve (s, t) reversed.
:class:`CachingOpaqueSystem` drops it in front of
:class:`~repro.core.system.OpaqueSystem`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

from repro.core.query import ClientRequest
from repro.core.system import OpaqueSystem
from repro.network.graph import NodeId
from repro.search.result import PathResult

__all__ = ["PathCache", "CachingOpaqueSystem"]


class PathCache:
    """Bounded LRU cache of shortest paths keyed by (source, destination).

    Parameters
    ----------
    capacity:
        Maximum cached paths; 0 disables caching.
    symmetric:
        When ``True`` (undirected networks) a stored path also answers the
        reversed pair, returned reversed.
    """

    def __init__(self, capacity: int = 4096, symmetric: bool = True) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._capacity = capacity
        self._symmetric = symmetric
        self._paths: OrderedDict[tuple[NodeId, NodeId], PathResult] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._paths)

    @property
    def capacity(self) -> int:
        """Maximum number of cached paths."""
        return self._capacity

    def get(self, source: NodeId, destination: NodeId) -> PathResult | None:
        """Return the cached path for the pair, or ``None``.

        Counts a hit/miss and refreshes LRU recency on hit.
        """
        key = (source, destination)
        path = self._paths.get(key)
        if path is not None:
            self._paths.move_to_end(key)
            self.hits += 1
            return path
        if self._symmetric:
            reverse = self._paths.get((destination, source))
            if reverse is not None:
                self._paths.move_to_end((destination, source))
                self.hits += 1
                return PathResult(
                    source=source,
                    destination=destination,
                    nodes=tuple(reversed(reverse.nodes)),
                    distance=reverse.distance,
                )
        self.misses += 1
        return None

    def put(self, path: PathResult) -> None:
        """Insert ``path`` (evicting the LRU entry when full)."""
        if self._capacity == 0:
            return
        key = (path.source, path.destination)
        if key in self._paths:
            self._paths.move_to_end(key)
        self._paths[key] = path
        if len(self._paths) > self._capacity:
            self._paths.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._paths.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingOpaqueSystem:
    """OPAQUE deployment with a candidate-path cache at the obfuscator.

    Wraps an :class:`OpaqueSystem`: requests whose true pair is cached are
    answered locally; the rest go through the normal pipeline, after which
    *every* returned candidate path (decoys included) is ingested into the
    cache.

    Parameters
    ----------
    system:
        The wrapped deployment.
    cache:
        Optional preconfigured :class:`PathCache`; defaults to a symmetric
        4096-entry cache (matching the system's undirected default).
    """

    def __init__(self, system: OpaqueSystem, cache: PathCache | None = None) -> None:
        self.system = system
        self.cache = cache if cache is not None else PathCache()
        #: requests answered without contacting the server, cumulative
        self.locally_answered = 0

    def submit(self, requests: Sequence[ClientRequest]) -> dict[str, PathResult]:
        """Answer a batch, serving cached pairs locally.

        Returns the same ``{user: PathResult}`` mapping as
        :meth:`OpaqueSystem.submit`.
        """
        results: dict[str, PathResult] = {}
        remaining: list[ClientRequest] = []
        for request in requests:
            cached = self.cache.get(request.query.source, request.query.destination)
            if cached is not None:
                results[request.user] = cached
                self.locally_answered += 1
            else:
                remaining.append(request)
        if remaining:
            results.update(self.system.submit(remaining))
            report = self.system.last_report
            if report is not None:
                # The obfuscator legitimately holds every candidate path
                # (they carry no user attribution); keep them all so later
                # requests matching a decoy pair never reach the server.
                for path in report.candidate_results:
                    if path.num_edges > 0:
                        self.cache.put(path)
        return results
