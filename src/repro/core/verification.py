"""Candidate result path verification against a malicious server.

The paper's server is semi-trusted ("honest but curious"): it answers
correctly but analyzes what it sees.  A deployed obfuscator should not
even rely on the honesty half blindly — it holds its own simple road map
(Section IV), which is enough to *verify* every candidate result path:

* endpoints must match the (s, t) pair the path claims to answer;
* every hop must be an existing road segment;
* the claimed distance must equal the edge-weight sum (within a relative
  tolerance, because the obfuscator's map lacks the server's real-time
  traffic weights).

:class:`CandidatePathVerifier` implements those checks and plugs into
:class:`~repro.core.filter.CandidateResultPathFilter`, turning silent
result corruption into a :class:`~repro.exceptions.ProtocolError`.
"""

from __future__ import annotations

from repro.core.server import ServerResponse
from repro.exceptions import ProtocolError
from repro.search.result import PathResult

__all__ = ["CandidatePathVerifier"]


class CandidatePathVerifier:
    """Checks server-returned candidate paths against a road map.

    Parameters
    ----------
    network:
        The obfuscator's map (read interface; a plain
        :class:`~repro.network.graph.RoadNetwork`).
    relative_tolerance:
        Allowed relative gap between the claimed distance and the
        edge-weight sum on this map.  0 demands exact agreement (same map
        on both sides); a deployment whose server applies live traffic
        weights would set this to the plausible traffic factor.
    check_distances:
        Disable to verify topology only (endpoints + walkability), e.g.
        when the server's weights are congestion-based and incomparable.
    """

    def __init__(
        self,
        network,
        relative_tolerance: float = 1e-9,
        check_distances: bool = True,
    ) -> None:
        if relative_tolerance < 0:
            raise ValueError("relative_tolerance must be >= 0")
        self._network = network
        self._tolerance = relative_tolerance
        self._check_distances = check_distances

    def verify_path(self, claimed_pair, path: PathResult) -> None:
        """Verify one candidate path; raise :class:`ProtocolError` if bad."""
        s, t = claimed_pair
        if path.source != s or path.destination != t:
            raise ProtocolError(
                f"candidate for pair {claimed_pair!r} has endpoints "
                f"({path.source!r}, {path.destination!r})"
            )
        if path.nodes[0] != s or path.nodes[-1] != t:
            raise ProtocolError(
                f"candidate for pair {claimed_pair!r} starts/ends elsewhere"
            )
        total = 0.0
        for u, v in path.edges():
            if u not in self._network or v not in self._network:
                raise ProtocolError(
                    f"candidate for {claimed_pair!r} visits unknown node"
                )
            neighbors = self._network.neighbors(u)
            if v not in neighbors:
                raise ProtocolError(
                    f"candidate for {claimed_pair!r} uses non-existent road "
                    f"({u!r}, {v!r})"
                )
            total += neighbors[v]
        if self._check_distances and path.num_edges > 0:
            scale = max(abs(total), abs(path.distance), 1e-12)
            if abs(total - path.distance) > self._tolerance * scale + 1e-12:
                raise ProtocolError(
                    f"candidate for {claimed_pair!r} claims distance "
                    f"{path.distance} but its edges sum to {total}"
                )

    def verify_response(self, response: ServerResponse) -> None:
        """Verify every candidate in a server response.

        Also checks coverage: the response must contain exactly one path
        per (s, t) pair of the obfuscated query.
        """
        expected = set(response.query.pairs())
        got = set(response.candidates.paths)
        if expected != got:
            missing = expected - got
            extra = got - expected
            raise ProtocolError(
                f"response pair coverage mismatch: missing={sorted(map(repr, missing))}, "
                f"unexpected={sorted(map(repr, extra))}"
            )
        for pair, path in response.candidates.paths.items():
            self.verify_path(pair, path)
