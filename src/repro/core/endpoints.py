"""Fake endpoint selection strategies for the obfuscator.

"Determining fake sources and destinations ... needs knowledge of the
underlying networks" (Section IV) — this module is that knowledge.  Each
strategy picks decoy nodes for one side (sources or destinations) of an
obfuscated query.  Strategies trade off two pressures the paper
identifies:

* **cost** — Lemma 1 charges ``max_t ||s,t||^2`` per source, so fakes far
  from the true endpoints inflate server work;
* **plausibility** — fakes that are implausible endpoints (empty fields,
  dead-end alleys) are discounted by a prior-aware adversary, weakening
  the protection below ``1/(|S| x |T|)``.

:class:`CompactEndpointStrategy` optimizes the first,
:class:`PopularityWeightedStrategy` the second,
:class:`RingEndpointStrategy` balances both, and
:class:`UniformEndpointStrategy` is the naive baseline.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import ObfuscationError
from repro.network.graph import NodeId, RoadNetwork
from repro.network.spatial import GridSpatialIndex

__all__ = [
    "SelectionContext",
    "FakeEndpointStrategy",
    "UniformEndpointStrategy",
    "RingEndpointStrategy",
    "CompactEndpointStrategy",
    "PopularityWeightedStrategy",
    "get_strategy",
]


@dataclass(slots=True)
class SelectionContext:
    """Everything a strategy may consult when picking fakes.

    Attributes
    ----------
    network, index:
        The obfuscator's simple road map and its spatial index.
    rng:
        Seeded generator owned by the obfuscator (strategies never seed
        their own).
    anchors:
        The true endpoints on the side being obfuscated (e.g. real sources
        when picking fake sources).
    counterparts:
        The true endpoints of the *other* side; compact selection uses them
        to bound the query's geometry.
    exclude:
        Nodes that must not be chosen (already-used endpoints).
    """

    network: RoadNetwork
    index: GridSpatialIndex
    rng: random.Random
    anchors: Sequence[NodeId]
    counterparts: Sequence[NodeId]
    exclude: frozenset[NodeId]


class FakeEndpointStrategy:
    """Interface: produce ``count`` distinct decoy nodes for one side."""

    #: short identifier used by configs and :func:`get_strategy`
    name: str = "abstract"

    def select(self, context: SelectionContext, count: int) -> list[NodeId]:
        """Return ``count`` distinct nodes outside ``context.exclude``.

        Raises
        ------
        ObfuscationError
            If the network cannot supply enough distinct decoys.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _draw_unique(
        candidates: Sequence[NodeId],
        count: int,
        rng: random.Random,
        exclude: frozenset[NodeId],
    ) -> list[NodeId]:
        pool = [n for n in candidates if n not in exclude]
        # Dedup while preserving order so sampling stays unbiased over
        # distinct nodes.
        seen: set[NodeId] = set()
        unique = [n for n in pool if not (n in seen or seen.add(n))]
        if len(unique) < count:
            raise ObfuscationError(
                f"need {count} fake endpoints but only {len(unique)} candidates"
            )
        return rng.sample(unique, count)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformEndpointStrategy(FakeEndpointStrategy):
    """Decoys drawn uniformly from the whole network.

    Maximal geographic spread: strongest naive anonymity, worst Lemma 1
    cost inflation (fakes can be at the far corner of the map).
    """

    name = "uniform"

    def select(self, context: SelectionContext, count: int) -> list[NodeId]:
        all_nodes = list(context.network.nodes())
        return self._draw_unique(all_nodes, count, context.rng, context.exclude)


class RingEndpointStrategy(FakeEndpointStrategy):
    """Decoys at roughly the same distance scale as the true query.

    Each fake is drawn from an annulus centred on a true anchor, with
    radius between ``inner_factor`` and ``outer_factor`` times the true
    query's source-destination extent.  Mimicking the true geometry keeps
    the fakes plausible as origins/destinations of a similar trip while
    bounding how much they stretch ``max_t ||s,t||``.
    """

    name = "ring"

    def __init__(self, inner_factor: float = 0.25, outer_factor: float = 1.0) -> None:
        if not 0.0 <= inner_factor <= outer_factor:
            raise ValueError("need 0 <= inner_factor <= outer_factor")
        self._inner = inner_factor
        self._outer = outer_factor

    def select(self, context: SelectionContext, count: int) -> list[NodeId]:
        extent = _query_extent(context)
        candidates: list[NodeId] = []
        for anchor in context.anchors:
            p = context.network.position(anchor)
            candidates.extend(
                context.index.nodes_in_ring(
                    p.x, p.y, self._inner * extent, self._outer * extent
                )
            )
        try:
            return self._draw_unique(candidates, count, context.rng, context.exclude)
        except ObfuscationError:
            # Small maps may not populate the annulus; widen to everything.
            all_nodes = list(context.network.nodes())
            return self._draw_unique(all_nodes, count, context.rng, context.exclude)


class CompactEndpointStrategy(FakeEndpointStrategy):
    """Decoys inside the bounding box of the true endpoints.

    Keeps every fake within the geometry the query already spans (plus a
    ``margin`` fraction), so ``max_t ||s,t||`` barely grows and the shared
    SSMD tree the server builds covers almost no extra area — the paper's
    "difference between ||s,t|| and max ||s,t'|| is not significant" regime.
    """

    name = "compact"

    def __init__(self, margin: float = 0.25) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self._margin = margin

    def select(self, context: SelectionContext, count: int) -> list[NodeId]:
        points = [
            context.network.position(n)
            for n in list(context.anchors) + list(context.counterparts)
        ]
        min_x = min(p.x for p in points)
        max_x = max(p.x for p in points)
        min_y = min(p.y for p in points)
        max_y = max(p.y for p in points)
        pad_x = (max_x - min_x) * self._margin + 1e-9
        pad_y = (max_y - min_y) * self._margin + 1e-9
        # Degenerate boxes (co-located endpoints) get a pad from the extent.
        extent = _query_extent(context)
        pad_x = max(pad_x, 0.1 * extent)
        pad_y = max(pad_y, 0.1 * extent)
        candidates = context.index.nodes_in_box(
            min_x - pad_x, min_y - pad_y, max_x + pad_x, max_y + pad_y
        )
        try:
            return self._draw_unique(candidates, count, context.rng, context.exclude)
        except ObfuscationError:
            all_nodes = list(context.network.nodes())
            return self._draw_unique(all_nodes, count, context.rng, context.exclude)


class PopularityWeightedStrategy(FakeEndpointStrategy):
    """Decoys sampled proportionally to an endpoint-popularity prior.

    ``popularity`` maps nodes to non-negative weights (e.g. how often each
    address appears as a trip endpoint).  Sampling fakes from the same
    distribution the adversary believes real endpoints follow makes the
    posterior over candidates flat, restoring Definition 2's breach bound
    even against a prior-aware adversary (experiment E7).
    """

    name = "popularity"

    def __init__(self, popularity: Mapping[NodeId, float]) -> None:
        if not popularity:
            raise ValueError("popularity map must be non-empty")
        if any(w < 0 for w in popularity.values()):
            raise ValueError("popularity weights must be non-negative")
        self._popularity = dict(popularity)

    def select(self, context: SelectionContext, count: int) -> list[NodeId]:
        pool = [
            (n, w)
            for n, w in self._popularity.items()
            if w > 0 and n not in context.exclude and n in context.network
        ]
        if len(pool) < count:
            raise ObfuscationError(
                f"need {count} fake endpoints but only {len(pool)} weighted candidates"
            )
        chosen: list[NodeId] = []
        pool_nodes = [n for n, _w in pool]
        pool_weights = [w for _n, w in pool]
        for _ in range(count):
            pick = context.rng.choices(range(len(pool_nodes)), weights=pool_weights)[0]
            chosen.append(pool_nodes.pop(pick))
            pool_weights.pop(pick)
        return chosen


def _query_extent(context: SelectionContext) -> float:
    """Characteristic scale of the true query: max anchor-counterpart gap.

    Falls back to a tenth of the map diagonal when one side is empty or
    everything coincides.
    """
    best = 0.0
    for a in context.anchors:
        for b in context.counterparts:
            best = max(best, context.network.euclidean_distance(a, b))
    if best <= 0.0:
        min_x, min_y, max_x, max_y = context.network.bounding_box()
        best = 0.1 * max(max_x - min_x, max_y - min_y, 1e-9)
    return best


def get_strategy(name: str, **kwargs) -> FakeEndpointStrategy:
    """Instantiate a strategy by name (``popularity`` needs its mapping).

    Raises
    ------
    KeyError
        For unknown names; the message lists valid ones.
    """
    strategies: dict[str, type[FakeEndpointStrategy]] = {
        UniformEndpointStrategy.name: UniformEndpointStrategy,
        RingEndpointStrategy.name: RingEndpointStrategy,
        CompactEndpointStrategy.name: CompactEndpointStrategy,
        PopularityWeightedStrategy.name: PopularityWeightedStrategy,
    }
    try:
        cls = strategies[name]
    except KeyError:
        valid = ", ".join(sorted(strategies))
        raise KeyError(f"unknown strategy {name!r}; valid: {valid}") from None
    return cls(**kwargs)
