"""JSON wire format for protocol payloads.

The client-obfuscator and obfuscator-server links of Figure 5 carry four
payload kinds: client requests, obfuscated path queries, result paths,
and candidate-path batches.  This module gives each a stable JSON
encoding so the components can actually be deployed across processes,
and so tests can inject corrupted messages.

Node ids must be JSON-representable scalars (int or str); the encoder
rejects anything else rather than silently coercing.
"""

from __future__ import annotations

import json

from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.exceptions import ProtocolError
from repro.search.result import PathResult

__all__ = [
    "encode_request",
    "decode_request",
    "encode_obfuscated_query",
    "decode_obfuscated_query",
    "encode_path",
    "decode_path",
    "encode_candidate_batch",
    "decode_candidate_batch",
]

_SCALARS = (int, str)


def _check_node(node) -> None:
    if isinstance(node, bool) or not isinstance(node, _SCALARS):
        raise ProtocolError(
            f"node id {node!r} is not JSON-wire-safe (need int or str)"
        )


def encode_request(request: ClientRequest) -> str:
    """Serialize a client request to a JSON string."""
    _check_node(request.query.source)
    _check_node(request.query.destination)
    return json.dumps(
        {
            "kind": "request",
            "user": request.user,
            "source": request.query.source,
            "destination": request.query.destination,
            "f_s": request.setting.f_s,
            "f_t": request.setting.f_t,
        }
    )


def decode_request(text: str) -> ClientRequest:
    """Parse a client request; raises :class:`ProtocolError` on bad input."""
    payload = _load(text, "request")
    try:
        return ClientRequest(
            user=payload["user"],
            query=PathQuery(payload["source"], payload["destination"]),
            setting=ProtectionSetting(payload["f_s"], payload["f_t"]),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed request payload: {exc}") from exc


def encode_obfuscated_query(query: ObfuscatedPathQuery) -> str:
    """Serialize an obfuscated path query to a JSON string."""
    for node in query.sources + query.destinations:
        _check_node(node)
    return json.dumps(
        {
            "kind": "obfuscated_query",
            "sources": list(query.sources),
            "destinations": list(query.destinations),
        }
    )


def decode_obfuscated_query(text: str) -> ObfuscatedPathQuery:
    """Parse an obfuscated path query."""
    payload = _load(text, "obfuscated_query")
    try:
        return ObfuscatedPathQuery(
            tuple(payload["sources"]), tuple(payload["destinations"])
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed obfuscated query payload: {exc}") from exc


def encode_path(path: PathResult) -> str:
    """Serialize a result path to a JSON string."""
    for node in path.nodes:
        _check_node(node)
    return json.dumps(
        {
            "kind": "path",
            "nodes": list(path.nodes),
            "distance": path.distance,
        }
    )


def decode_path(text: str) -> PathResult:
    """Parse a result path."""
    payload = _load(text, "path")
    try:
        nodes = tuple(payload["nodes"])
        return PathResult(
            source=nodes[0],
            destination=nodes[-1],
            nodes=nodes,
            distance=float(payload["distance"]),
        )
    except (KeyError, TypeError, IndexError, ValueError) as exc:
        raise ProtocolError(f"malformed path payload: {exc}") from exc


def encode_candidate_batch(paths: list[PathResult]) -> str:
    """Serialize the server's candidate-path batch."""
    return json.dumps(
        {
            "kind": "candidates",
            "paths": [json.loads(encode_path(p)) for p in paths],
        }
    )


def decode_candidate_batch(text: str) -> list[PathResult]:
    """Parse a candidate-path batch."""
    payload = _load(text, "candidates")
    try:
        return [decode_path(json.dumps(item)) for item in payload["paths"]]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed candidate batch payload: {exc}") from exc


def _load(text: str, expected_kind: str) -> dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("payload must be a JSON object")
    kind = payload.get("kind")
    if kind != expected_kind:
        raise ProtocolError(
            f"expected payload kind {expected_kind!r}, got {kind!r}"
        )
    return payload
