"""Message-level accounting for the client-obfuscator-server protocol.

The paper's efficiency concern is two-sided: server processing *and*
network resources ("clients retrieve additional paths for the fake
queries, which are redundant, resulting in overconsumption of server and
network resources", Section II).  This module prices each protocol message
with a simple byte model so experiments can report traffic alongside
search cost:

* node id — 8 bytes;
* request header (user id, protection setting) — 16 bytes;
* a path — 8 bytes per node plus an 8-byte length/distance header.

Absolute numbers are nominal; comparisons between mechanisms are what the
experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import ClientRequest, ObfuscatedPathQuery
from repro.search.result import PathResult

__all__ = [
    "NODE_ID_BYTES",
    "REQUEST_HEADER_BYTES",
    "PATH_HEADER_BYTES",
    "estimate_message_bytes",
    "TrafficLog",
]

NODE_ID_BYTES = 8
REQUEST_HEADER_BYTES = 16
PATH_HEADER_BYTES = 8


def estimate_message_bytes(payload) -> int:
    """Nominal wire size of one protocol payload.

    Accepts a :class:`ClientRequest`, :class:`ObfuscatedPathQuery`,
    :class:`PathResult`, or a list of any of these.

    Raises
    ------
    TypeError
        For unpriceable payload types.
    """
    if isinstance(payload, list):
        return sum(estimate_message_bytes(item) for item in payload)
    if isinstance(payload, ClientRequest):
        return REQUEST_HEADER_BYTES + 2 * NODE_ID_BYTES
    if isinstance(payload, ObfuscatedPathQuery):
        return NODE_ID_BYTES * (len(payload.sources) + len(payload.destinations))
    if isinstance(payload, PathResult):
        return PATH_HEADER_BYTES + NODE_ID_BYTES * len(payload.nodes)
    raise TypeError(f"cannot price payload of type {type(payload).__name__}")


@dataclass(slots=True)
class TrafficLog:
    """Byte totals per protocol leg, accumulated over a session.

    Legs follow Figure 6: client -> obfuscator (requests), obfuscator ->
    server (obfuscated queries), server -> obfuscator (candidate paths),
    obfuscator -> client (final results).
    """

    client_to_obfuscator: int = 0
    obfuscator_to_server: int = 0
    server_to_obfuscator: int = 0
    obfuscator_to_client: int = 0
    messages: int = 0

    def record(self, leg: str, payload) -> int:
        """Price ``payload`` and add it to ``leg``; returns the byte count.

        ``leg`` is one of ``"request"``, ``"query"``, ``"candidates"``,
        ``"result"``.
        """
        size = estimate_message_bytes(payload)
        if leg == "request":
            self.client_to_obfuscator += size
        elif leg == "query":
            self.obfuscator_to_server += size
        elif leg == "candidates":
            self.server_to_obfuscator += size
        elif leg == "result":
            self.obfuscator_to_client += size
        else:
            raise ValueError(f"unknown protocol leg {leg!r}")
        self.messages += 1
        return size

    @property
    def total_bytes(self) -> int:
        """All bytes across all four legs."""
        return (
            self.client_to_obfuscator
            + self.obfuscator_to_server
            + self.server_to_obfuscator
            + self.obfuscator_to_client
        )

    @property
    def server_side_bytes(self) -> int:
        """Bytes crossing the obfuscator-server link (the expensive WAN leg)."""
        return self.obfuscator_to_server + self.server_to_obfuscator
