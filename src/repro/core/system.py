"""The OPAQUE system facade (Figure 5's full client-obfuscator-server loop).

:class:`OpaqueSystem` wires a :class:`PathQueryObfuscator`, a
:class:`DirectionsServer` and a :class:`CandidateResultPathFilter` together
and runs whole request batches through them, producing per-user result
paths plus a :class:`SessionReport` with every cost and privacy number the
experiments need.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.filter import CandidateResultPathFilter
from repro.core.obfuscator import ObfuscationRecord, PathQueryObfuscator
from repro.core.privacy import breach_probability
from repro.core.protocol import TrafficLog
from repro.core.query import ClientRequest
from repro.core.server import DirectionsServer
from repro.exceptions import QueryError
from repro.network.graph import RoadNetwork
from repro.search.multi import MultiSourceMultiDestProcessor
from repro.search.result import PathResult, SearchStats

__all__ = ["OpaqueSystem", "SessionReport"]


@dataclass(slots=True)
class SessionReport:
    """Everything measurable about one batch of requests.

    Attributes
    ----------
    records:
        Obfuscation records produced for the batch (ground truth for
        attack evaluation).
    server_stats:
        Aggregate search cost across all obfuscated queries.
    traffic:
        Byte accounting across the four protocol legs.
    breach_by_user:
        Definition 2 breach probability of each user's query.
    candidate_paths:
        Total candidate result paths the server computed.
    discarded_paths:
        Candidates that answered no real request (wasted work, the
        privacy overhead).
    candidate_results:
        The candidate paths themselves, in server-return order.  They
        carry no user attribution, so the obfuscator may retain them
        (e.g. for the :class:`repro.core.cache.PathCache`).
    cached_queries:
        Obfuscated queries of this batch answered from the serving
        layer's result cache (0 without a serving stack).
    coalesced_queries:
        Obfuscated queries of this batch answered by a shared union
        kernel pass merged with concurrent queries
        (:class:`~repro.service.serving.QueryCoalescer`; 0 without a
        coalescing serving stack).  ``server_stats`` still totals the
        work exactly once: a shared pass's cost rides on its first
        sliced response.
    serving_caches:
        Cumulative :class:`~repro.service.cache.CacheSnapshot` of the
        serving stack's hit/miss/eviction counters, or ``None`` when the
        batch ran without a serving stack.
    """

    records: list[ObfuscationRecord] = field(default_factory=list)
    server_stats: SearchStats = field(default_factory=SearchStats)
    traffic: TrafficLog = field(default_factory=TrafficLog)
    breach_by_user: dict[str, float] = field(default_factory=dict)
    candidate_paths: int = 0
    discarded_paths: int = 0
    candidate_results: list[PathResult] = field(default_factory=list)
    cached_queries: int = 0
    coalesced_queries: int = 0
    serving_caches: object | None = None

    @property
    def mean_breach(self) -> float:
        """Average breach probability across users in the session."""
        if not self.breach_by_user:
            return 1.0
        return sum(self.breach_by_user.values()) / len(self.breach_by_user)


class OpaqueSystem:
    """End-to-end OPAQUE deployment over one road network.

    Parameters
    ----------
    network:
        Road map shared by obfuscator and server.  (The paper gives the
        obfuscator a *simpler* map; using one map is equivalent here
        because the obfuscator only reads node geometry.)
    mode:
        ``"independent"`` or ``"shared"`` — which obfuscated query variant
        :meth:`submit` builds.
    strategy:
        Fake endpoint strategy for the obfuscator (default compact).
    processor:
        Server-side MSMD strategy (default shared-tree).
    engine:
        Search-engine name from :data:`repro.search.ENGINES` (e.g.
        ``"ch"``), resolved to its MSMD processor.  Mutually exclusive
        with ``processor``.
    serving:
        A :class:`~repro.service.serving.ServingStack` over the same
        network.  When given, the stack's server handles every batch
        (result cache, shared preprocessing artifacts, concurrent
        dispatch) and :attr:`SessionReport.serving_caches` is filled in.
        Mutually exclusive with ``processor``/``engine``/``paged``.
    paged:
        Run the server over the paged storage simulator to collect I/O.
    max_source_diameter, max_destination_diameter, max_cluster_size:
        Clustering knobs for shared mode.
    verify_responses:
        When ``True`` the filter verifies every server response against
        the obfuscator's map (endpoints, walkability, distances) before
        any path reaches a client — tampering raises
        :class:`~repro.exceptions.ProtocolError`.
    seed:
        Obfuscator RNG seed.
    """

    def __init__(
        self,
        network: RoadNetwork,
        mode: str = "shared",
        strategy=None,
        processor: MultiSourceMultiDestProcessor | None = None,
        engine: str | None = None,
        serving=None,
        paged: bool = False,
        page_capacity: int = 64,
        buffer_capacity: int = 32,
        max_source_diameter: float = float("inf"),
        max_destination_diameter: float = float("inf"),
        max_cluster_size: int | None = None,
        verify_responses: bool = False,
        seed: int = 0,
    ) -> None:
        if mode not in ("independent", "shared"):
            raise QueryError(f"unknown mode {mode!r}")
        self._mode = mode
        self._cluster_knobs = {
            "max_source_diameter": max_source_diameter,
            "max_destination_diameter": max_destination_diameter,
            "max_cluster_size": max_cluster_size,
        }
        self.obfuscator = PathQueryObfuscator(network, strategy=strategy, seed=seed)
        #: serving stack answering batches, or None for the plain server
        self.serving = serving
        if serving is not None:
            if processor is not None or engine is not None or paged:
                raise ValueError(
                    "pass serving or processor/engine/paged, not both"
                )
            if serving.network is not network:
                raise ValueError(
                    "serving stack must be built over the system's network"
                )
            self.server = serving.server
        else:
            self.server = DirectionsServer(
                network,
                processor=processor,
                engine=engine,
                paged=paged,
                page_capacity=page_capacity,
                buffer_capacity=buffer_capacity,
            )
        verifier = None
        if verify_responses:
            from repro.core.verification import CandidatePathVerifier

            verifier = CandidatePathVerifier(network)
        self.filter = CandidateResultPathFilter(self.obfuscator, verifier=verifier)
        #: report of the most recent :meth:`submit` call
        self.last_report: SessionReport | None = None

    @property
    def mode(self) -> str:
        """The obfuscation variant this system builds."""
        return self._mode

    def submit(
        self, requests: Sequence[ClientRequest]
    ) -> dict[str, PathResult]:
        """Run a batch of client requests through the full pipeline.

        Returns
        -------
        dict
            ``{user: PathResult}`` — each user's true shortest path.

        Raises
        ------
        QueryError
            On an empty batch or duplicate user ids (users are the result
            routing key, so they must be unique within a batch).
        """
        if not requests:
            raise QueryError("empty request batch")
        users = [r.user for r in requests]
        if len(set(users)) != len(users):
            raise QueryError("duplicate user ids in batch")

        report = SessionReport()
        for request in requests:
            report.traffic.record("request", request)

        records = self.obfuscator.obfuscate_batch(
            requests, mode=self._mode, **self._cluster_knobs
        )
        report.records = records

        if self.serving is not None:
            responses = self.serving.answer_batch([r.query for r in records])
        else:
            responses = [self.server.answer(r.query) for r in records]

        results: dict[str, PathResult] = {}
        for record, response in zip(records, responses):
            report.traffic.record("query", record.query)
            if response.from_cache:
                report.cached_queries += 1
            else:
                report.server_stats.merge(response.candidates.stats)
            if getattr(response, "coalesced", False):
                report.coalesced_queries += 1
            report.candidate_paths += response.num_paths
            report.candidate_results.extend(response.candidates.paths.values())
            report.traffic.record(
                "candidates", list(response.candidates.paths.values())
            )
            filtered = self.filter.extract(record, response)
            report.discarded_paths += filtered.discarded_paths
            for user, path in filtered.paths_by_user.items():
                report.traffic.record("result", path)
                results[user] = path
            breach = breach_probability(record.query)
            for request in record.requests:
                report.breach_by_user[request.user] = breach

        if self.serving is not None:
            report.serving_caches = self.serving.snapshot()
        self.last_report = report
        return results
