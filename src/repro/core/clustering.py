"""Path query clustering for shared obfuscation (Section IV).

The obfuscator's first step "partitions the received queries into disjoint
query sets"; each cluster then becomes one shared obfuscated path query.
Good clusters group queries whose sources are geographically close *and*
whose destinations are close: the union endpoint sets then span a small
area, keeping the shared SSMD trees cheap (Lemma 1) while every member
hides among the others' real endpoints.

We implement greedy diameter-bounded clustering: requests are scanned in
arrival order and joined to the first cluster whose source-side and
destination-side Euclidean diameters stay within the bounds; otherwise a
new cluster opens.  Greedy is O(n * clusters), deterministic, and — because
the obfuscator is an online component — respects arrival order, unlike
k-means-style passes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.query import ClientRequest
from repro.network.graph import NodeId, RoadNetwork

__all__ = ["QueryCluster", "cluster_requests"]


@dataclass(slots=True)
class QueryCluster:
    """A group of requests destined for one shared obfuscated query."""

    requests: list[ClientRequest] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of member requests."""
        return len(self.requests)

    @property
    def source_nodes(self) -> list[NodeId]:
        """Distinct true sources in arrival order."""
        seen: set[NodeId] = set()
        out: list[NodeId] = []
        for r in self.requests:
            s = r.query.source
            if s not in seen:
                seen.add(s)
                out.append(s)
        return out

    @property
    def destination_nodes(self) -> list[NodeId]:
        """Distinct true destinations in arrival order."""
        seen: set[NodeId] = set()
        out: list[NodeId] = []
        for r in self.requests:
            t = r.query.destination
            if t not in seen:
                seen.add(t)
                out.append(t)
        return out

    @property
    def max_f_s(self) -> int:
        """Strongest source-side protection requested by any member."""
        return max(r.setting.f_s for r in self.requests)

    @property
    def max_f_t(self) -> int:
        """Strongest destination-side protection requested by any member."""
        return max(r.setting.f_t for r in self.requests)

    def source_diameter(self, network: RoadNetwork) -> float:
        """Largest Euclidean gap between member sources."""
        return _diameter(self.source_nodes, network)

    def destination_diameter(self, network: RoadNetwork) -> float:
        """Largest Euclidean gap between member destinations."""
        return _diameter(self.destination_nodes, network)


def _diameter(nodes: Sequence[NodeId], network: RoadNetwork) -> float:
    best = 0.0
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            best = max(best, network.euclidean_distance(u, v))
    return best


def cluster_requests(
    requests: Sequence[ClientRequest],
    network: RoadNetwork,
    max_source_diameter: float,
    max_destination_diameter: float,
    max_cluster_size: int | None = None,
) -> list[QueryCluster]:
    """Greedy diameter-bounded clustering of requests.

    Parameters
    ----------
    requests:
        Requests in arrival order (preserved inside clusters).
    max_source_diameter, max_destination_diameter:
        Euclidean bounds a cluster's true sources / destinations must fit
        in.  ``float('inf')`` puts everything in one cluster.
    max_cluster_size:
        Optional cap on members per cluster (server-side fairness knob).

    Returns
    -------
    list[QueryCluster]
        Disjoint clusters covering all requests; at least one cluster per
        request in the worst case.
    """
    if max_source_diameter < 0 or max_destination_diameter < 0:
        raise ValueError("diameter bounds must be non-negative")
    if max_cluster_size is not None and max_cluster_size < 1:
        raise ValueError("max_cluster_size must be >= 1")
    clusters: list[QueryCluster] = []
    for request in requests:
        placed = False
        for cluster in clusters:
            if max_cluster_size is not None and cluster.size >= max_cluster_size:
                continue
            if _fits(cluster, request, network, max_source_diameter,
                     max_destination_diameter):
                cluster.requests.append(request)
                placed = True
                break
        if not placed:
            clusters.append(QueryCluster(requests=[request]))
    return clusters


def _fits(
    cluster: QueryCluster,
    request: ClientRequest,
    network: RoadNetwork,
    max_source_diameter: float,
    max_destination_diameter: float,
) -> bool:
    s = request.query.source
    t = request.query.destination
    for member in cluster.requests:
        if network.euclidean_distance(member.query.source, s) > max_source_diameter:
            return False
        if (
            network.euclidean_distance(member.query.destination, t)
            > max_destination_diameter
        ):
            return False
    return True
