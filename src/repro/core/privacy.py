"""Privacy metrics: breach probability and prior-aware refinements.

Definition 2 of the paper sets the breach probability of ``Q(S, T)`` at
``1 / (|S| x |T|)`` — the chance a uniformly guessing server picks the true
pair.  Real adversaries are rarely uniform: with public information (voter
lists, yellow pages) they hold priors over which endpoints are plausible
sources/destinations.  :func:`pair_posterior` and :func:`posterior_breach`
quantify protection against such adversaries, and
:func:`posterior_entropy_bits` gives the information-theoretic view used in
experiment E7.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.query import ObfuscatedPathQuery, PathQuery
from repro.exceptions import QueryError
from repro.network.graph import NodeId

__all__ = [
    "breach_probability",
    "pair_posterior",
    "posterior_breach",
    "posterior_entropy_bits",
    "PrivacyReport",
    "route_exposure",
]


def breach_probability(query: ObfuscatedPathQuery) -> float:
    """Definition 2: ``1 / (|S| x |T|)`` for a uniform-guessing adversary."""
    return 1.0 / query.num_pairs


def pair_posterior(
    query: ObfuscatedPathQuery,
    source_prior: Mapping[NodeId, float] | None = None,
    destination_prior: Mapping[NodeId, float] | None = None,
) -> dict[tuple[NodeId, NodeId], float]:
    """Adversary's posterior over the candidate ``(s, t)`` pairs.

    The adversary assumes the true source and destination were drawn
    independently from its priors, so the posterior of each candidate pair
    is proportional to ``source_prior[s] * destination_prior[t]``.  Missing
    or ``None`` priors default to uniform weight 1.  All-zero weight sets
    fall back to uniform (the adversary has ruled everything out, which
    contradicts observing the query; uniform is the sane recovery).

    Returns
    -------
    dict
        ``{(s, t): probability}`` summing to 1.
    """
    weights: dict[tuple[NodeId, NodeId], float] = {}
    for s in query.sources:
        ws = 1.0 if source_prior is None else max(float(source_prior.get(s, 0.0)), 0.0)
        for t in query.destinations:
            wt = (
                1.0
                if destination_prior is None
                else max(float(destination_prior.get(t, 0.0)), 0.0)
            )
            weights[(s, t)] = ws * wt
    total = sum(weights.values())
    if total <= 0.0:
        uniform = 1.0 / len(weights)
        return {pair: uniform for pair in weights}
    return {pair: w / total for pair, w in weights.items()}


def posterior_breach(
    query: ObfuscatedPathQuery,
    true_query: PathQuery,
    source_prior: Mapping[NodeId, float] | None = None,
    destination_prior: Mapping[NodeId, float] | None = None,
) -> float:
    """Posterior probability the adversary assigns to the *true* pair.

    This is the prior-aware generalization of Definition 2: with uniform
    priors it equals ``1/(|S| x |T|)``; with skewed priors it exposes how
    implausible fakes weaken the obfuscation.

    Raises
    ------
    QueryError
        If ``true_query`` is not covered by ``query`` (the obfuscation
        would be broken outright).
    """
    if not query.covers(true_query):
        raise QueryError("true query is not covered by the obfuscated query")
    posterior = pair_posterior(query, source_prior, destination_prior)
    return posterior[true_query.as_pair()]


def posterior_entropy_bits(
    query: ObfuscatedPathQuery,
    source_prior: Mapping[NodeId, float] | None = None,
    destination_prior: Mapping[NodeId, float] | None = None,
) -> float:
    """Shannon entropy (bits) of the adversary's pair posterior.

    ``log2(|S| x |T|)`` under uniform priors; lower values mean the
    adversary can concentrate its guesses.
    """
    posterior = pair_posterior(query, source_prior, destination_prior)
    entropy = 0.0
    for p in posterior.values():
        if p > 0.0:
            entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True, slots=True)
class PrivacyReport:
    """Bundle of privacy metrics for one protected query.

    Attributes
    ----------
    uniform_breach:
        Definition 2 value ``1/(|S| x |T|)``.
    posterior_breach:
        True-pair posterior under the adversary's priors (equals
        ``uniform_breach`` when priors are uniform).
    max_posterior:
        The adversary's best single-guess confidence over all candidate
        pairs — an upper bound on any guessing attack's success rate.
    entropy_bits:
        Posterior entropy.
    anonymity_pairs:
        ``|S| x |T|``.
    """

    uniform_breach: float
    posterior_breach: float
    max_posterior: float
    entropy_bits: float
    anonymity_pairs: int


def route_exposure(true_path, candidate_paths) -> float:
    """Fraction of the true route's edges the adversary would bet on.

    Endpoint anonymity is not the whole story: "a user is very likely to
    take the returned path" (Section III-B), so a server can attack the
    *route* instead of the endpoints.  Each edge of the true path is
    scored by the fraction of candidate result paths containing it (either
    direction) — the adversary's confidence that a traveller drawn from
    the candidate set traverses that road segment.  The exposure is the
    mean over the true path's edges:

    * 1.0 — every candidate shares the whole true route (obfuscation
      hides the endpoints but not the journey);
    * 1/(number of candidates) — the true route is shared with no decoy
      (the endpoint anonymity carries over to the route).

    Parameters
    ----------
    true_path:
        The user's :class:`~repro.search.result.PathResult`.
    candidate_paths:
        All candidate result paths of the obfuscated query (including the
        true one).

    Raises
    ------
    QueryError
        If either input is empty or the true path has no edges.
    """
    candidates = list(candidate_paths)
    if not candidates:
        raise QueryError("route exposure needs at least one candidate path")
    true_edges = [frozenset(edge) for edge in true_path.edges()]
    if not true_edges:
        raise QueryError("route exposure of a zero-edge path is undefined")
    candidate_edge_sets = [
        {frozenset(edge) for edge in path.edges()} for path in candidates
    ]
    total = 0.0
    for edge in true_edges:
        total += sum(edge in edges for edges in candidate_edge_sets) / len(
            candidate_edge_sets
        )
    return total / len(true_edges)


def privacy_report(
    query: ObfuscatedPathQuery,
    true_query: PathQuery,
    source_prior: Mapping[NodeId, float] | None = None,
    destination_prior: Mapping[NodeId, float] | None = None,
) -> PrivacyReport:
    """Compute the full :class:`PrivacyReport` for a protected query."""
    posterior = pair_posterior(query, source_prior, destination_prior)
    if not query.covers(true_query):
        raise QueryError("true query is not covered by the obfuscated query")
    return PrivacyReport(
        uniform_breach=breach_probability(query),
        posterior_breach=posterior[true_query.as_pair()],
        max_posterior=max(posterior.values()),
        entropy_bits=posterior_entropy_bits(query, source_prior, destination_prior),
        anonymity_pairs=query.num_pairs,
    )
