"""Candidate result path filter (the obfuscator's second half, Figure 6).

The server returns |S| x |T| candidate paths; the filter screens them,
hands each client exactly the path answering its true query, and discards
the satisfied request from the obfuscator's pending table "for sake of
security" (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.obfuscator import ObfuscationRecord, PathQueryObfuscator
from repro.core.server import ServerResponse
from repro.exceptions import ProtocolError
from repro.search.result import PathResult

__all__ = ["FilteredResults", "CandidateResultPathFilter"]


@dataclass(frozen=True, slots=True)
class FilteredResults:
    """Per-user results extracted from one server response.

    Attributes
    ----------
    paths_by_user:
        ``{user: PathResult}`` — each user's true path.
    discarded_paths:
        Candidate paths that answered no real request (pure decoy work).
    """

    paths_by_user: dict[str, PathResult]
    discarded_paths: int


class CandidateResultPathFilter:
    """Maps candidate result paths back to the hidden client requests.

    Parameters
    ----------
    obfuscator:
        The obfuscator owning the pending-record table; satisfied records
        are discarded from it after filtering.
    verifier:
        Optional :class:`~repro.core.verification.CandidatePathVerifier`;
        when set, every response is verified against the obfuscator's map
        before any path reaches a client (malicious-server defense).
    """

    def __init__(self, obfuscator: PathQueryObfuscator, verifier=None) -> None:
        self._obfuscator = obfuscator
        self._verifier = verifier

    def extract(
        self, record: ObfuscationRecord, response: ServerResponse
    ) -> FilteredResults:
        """Screen ``response`` for the requests hidden in ``record``.

        Raises
        ------
        ProtocolError
            If the response answers a different query than the record's,
            is missing the candidate path for some hidden request, or
            fails verification — each indicates a corrupted, mismatched
            or tampered exchange.
        """
        if response.query != record.query:
            raise ProtocolError(
                f"response answers a different query than record "
                f"{record.record_id}"
            )
        if self._verifier is not None:
            self._verifier.verify_response(response)
        paths_by_user: dict[str, PathResult] = {}
        for request in record.requests:
            pair = request.query.as_pair()
            try:
                path = response.candidates.paths[pair]
            except KeyError:
                raise ProtocolError(
                    f"server response is missing candidate path for pair {pair!r}"
                ) from None
            paths_by_user[request.user] = path
        self._obfuscator.discard(record.record_id)
        discarded = response.num_paths - len(
            {r.query.as_pair() for r in record.requests}
        )
        return FilteredResults(
            paths_by_user=paths_by_user, discarded_paths=discarded
        )
