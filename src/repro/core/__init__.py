"""OPAQUE core: obfuscated path queries, the obfuscator, server and filter.

This package implements the paper's contribution proper: the obfuscated
path query abstraction (Definition 1), breach probability (Definition 2),
the independent/shared query variants (Section III-C), and the three system
components of Figure 6 — path query obfuscator, obfuscated path query
processor (server side), and candidate result path filter — plus the
adversary models used to measure how well the protection works.
"""

from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.core.privacy import (
    PrivacyReport,
    breach_probability,
    pair_posterior,
    posterior_breach,
    posterior_entropy_bits,
    privacy_report,
)
from repro.core.endpoints import (
    CompactEndpointStrategy,
    FakeEndpointStrategy,
    PopularityWeightedStrategy,
    RingEndpointStrategy,
    SelectionContext,
    UniformEndpointStrategy,
    get_strategy,
)
from repro.core.clustering import QueryCluster, cluster_requests
from repro.core.obfuscator import ObfuscationRecord, PathQueryObfuscator
from repro.core.server import DirectionsServer, ServerResponse
from repro.core.filter import CandidateResultPathFilter
from repro.core.attacks import (
    CollusionAttack,
    LinkageAttack,
    ServerAdversary,
    empirical_breach_rate,
)
from repro.core.protocol import TrafficLog, estimate_message_bytes
from repro.core.system import OpaqueSystem, SessionReport
from repro.core.cache import CachingOpaqueSystem, PathCache
from repro.core.planner import ProtectionPlan, candidate_splits, plan_protection
from repro.core.verification import CandidatePathVerifier
from repro.core.privacy import route_exposure
from repro.core.serialization import (
    decode_candidate_batch,
    decode_obfuscated_query,
    decode_path,
    decode_request,
    encode_candidate_batch,
    encode_obfuscated_query,
    encode_path,
    encode_request,
)

__all__ = [
    "PathQuery",
    "ObfuscatedPathQuery",
    "ProtectionSetting",
    "ClientRequest",
    "breach_probability",
    "pair_posterior",
    "posterior_breach",
    "posterior_entropy_bits",
    "privacy_report",
    "PrivacyReport",
    "FakeEndpointStrategy",
    "SelectionContext",
    "UniformEndpointStrategy",
    "RingEndpointStrategy",
    "CompactEndpointStrategy",
    "PopularityWeightedStrategy",
    "get_strategy",
    "QueryCluster",
    "cluster_requests",
    "PathQueryObfuscator",
    "ObfuscationRecord",
    "DirectionsServer",
    "ServerResponse",
    "CandidateResultPathFilter",
    "ServerAdversary",
    "CollusionAttack",
    "LinkageAttack",
    "empirical_breach_rate",
    "TrafficLog",
    "estimate_message_bytes",
    "OpaqueSystem",
    "SessionReport",
    "PathCache",
    "CachingOpaqueSystem",
    "ProtectionPlan",
    "plan_protection",
    "candidate_splits",
    "CandidatePathVerifier",
    "route_exposure",
    "encode_request",
    "decode_request",
    "encode_obfuscated_query",
    "decode_obfuscated_query",
    "encode_path",
    "decode_path",
    "encode_candidate_batch",
    "decode_candidate_batch",
]
