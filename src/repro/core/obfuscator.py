"""The path query obfuscator (the trusted middle tier of Figure 5).

Turns client requests into obfuscated path queries by mixing true
endpoints with strategy-chosen fakes:

* :meth:`PathQueryObfuscator.obfuscate_independent` builds one
  ``Q(S_i, T_i)`` per request with ``|S_i| = f_Si`` and ``|T_i| = f_Ti``;
* :meth:`PathQueryObfuscator.obfuscate_shared` merges a group of requests
  into one ``Q(S, T)`` whose S/T contain every member's true endpoints,
  topped up with fakes until ``|S| >= max f_Si`` and ``|T| >= max f_Ti``;
* :meth:`PathQueryObfuscator.obfuscate_batch` is the full Section IV
  pipeline — cluster, then obfuscate each cluster.

Every product is an :class:`ObfuscationRecord`, which remembers which
endpoints were fake and which requests are hiding inside the query; the
candidate result path filter needs it, and the attack models in
:mod:`repro.core.attacks` treat it as the ground truth an adversary tries
to recover.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.clustering import QueryCluster, cluster_requests
from repro.core.endpoints import (
    CompactEndpointStrategy,
    FakeEndpointStrategy,
    SelectionContext,
)
from repro.core.query import ClientRequest, ObfuscatedPathQuery
from repro.exceptions import ObfuscationError
from repro.network.graph import NodeId, RoadNetwork
from repro.network.spatial import GridSpatialIndex

__all__ = ["ObfuscationRecord", "PathQueryObfuscator"]

_record_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ObfuscationRecord:
    """One obfuscated query plus the secret bookkeeping behind it.

    Attributes
    ----------
    record_id:
        Unique id used as the correlation token between obfuscator and
        filter (never contains user information).
    query:
        The server-visible ``Q(S, T)``.
    requests:
        The client requests hidden inside the query.
    fake_sources, fake_destinations:
        Which members of S/T are decoys.  This never leaves the
        obfuscator; attack models receive it only to *score* attacks.
    kind:
        ``"independent"`` or ``"shared"``.
    """

    record_id: int
    query: ObfuscatedPathQuery
    requests: tuple[ClientRequest, ...]
    fake_sources: frozenset[NodeId]
    fake_destinations: frozenset[NodeId]
    kind: str

    @property
    def true_sources(self) -> frozenset[NodeId]:
        """Real sources hidden in S."""
        return frozenset(r.query.source for r in self.requests)

    @property
    def true_destinations(self) -> frozenset[NodeId]:
        """Real destinations hidden in T."""
        return frozenset(r.query.destination for r in self.requests)


class PathQueryObfuscator:
    """Builds obfuscated path queries over a simple road map.

    Parameters
    ----------
    network:
        The obfuscator's own map — "different from [the] sophisticated one
        maintained in the directions search server" (Section IV); only node
        geometry is consulted.
    strategy:
        Fake endpoint selection strategy; defaults to
        :class:`CompactEndpointStrategy` (cheapest server cost).
    seed:
        Seed for all randomness (fake choice, endpoint order shuffling).
    index:
        Optional prebuilt spatial index; built lazily otherwise.
    """

    def __init__(
        self,
        network: RoadNetwork,
        strategy: FakeEndpointStrategy | None = None,
        seed: int = 0,
        index: GridSpatialIndex | None = None,
    ) -> None:
        if network.num_nodes < 2:
            raise ObfuscationError("obfuscator needs a map with at least 2 nodes")
        self._network = network
        self._strategy = strategy if strategy is not None else CompactEndpointStrategy()
        self._base_seed = seed
        self._rng = random.Random(seed)
        self._index = index if index is not None else GridSpatialIndex(network)
        #: records awaiting results, keyed by record id (Figure 6's
        #: "requests are kept for later result path filtering")
        self.pending: dict[int, ObfuscationRecord] = {}

    @property
    def network(self) -> RoadNetwork:
        """The obfuscator's road map."""
        return self._network

    @property
    def strategy(self) -> FakeEndpointStrategy:
        """The fake endpoint strategy in use."""
        return self._strategy

    # ------------------------------------------------------------------
    # Independent obfuscation
    # ------------------------------------------------------------------
    def obfuscate_independent(
        self, request: ClientRequest, sticky_key: str | None = None
    ) -> ObfuscationRecord:
        """Build ``Q(S, T)`` for one request with ``|S|=f_S`` and ``|T|=f_T``.

        Parameters
        ----------
        sticky_key:
            When given, fakes and endpoint order are derived
            deterministically from ``(seed, sticky_key, query, setting)``
            instead of the obfuscator's running RNG, so *repeating the
            same query yields the identical obfuscated query*.  This is
            the defense against the linkage attack of
            :class:`repro.core.attacks.LinkageAttack` — with fresh fakes,
            a server that can link a user's repeated observations
            intersects the candidate sets and isolates the true pair;
            sticky decoys make the intersection a fixpoint.

        Raises
        ------
        ObfuscationError
            If the map cannot supply enough distinct fakes.
        """
        true_s = request.query.source
        true_t = request.query.destination
        rng: random.Random | None = None
        if sticky_key is not None:
            rng = random.Random(
                f"{self._base_seed}:{sticky_key}:{true_s!r}->{true_t!r}"
                f":{request.setting.f_s}x{request.setting.f_t}"
            )
        fake_sources = self._pick_fakes(
            anchors=[true_s],
            counterparts=[true_t],
            count=request.setting.f_s - 1,
            exclude=frozenset({true_s, true_t}),
            rng=rng,
        )
        exclude_t = frozenset({true_s, true_t}) | frozenset(fake_sources)
        fake_destinations = self._pick_fakes(
            anchors=[true_t],
            counterparts=[true_s],
            count=request.setting.f_t - 1,
            exclude=exclude_t,
            rng=rng,
        )
        sources = self._shuffled([true_s] + fake_sources, rng=rng)
        destinations = self._shuffled([true_t] + fake_destinations, rng=rng)
        record = ObfuscationRecord(
            record_id=next(_record_counter),
            query=ObfuscatedPathQuery(tuple(sources), tuple(destinations)),
            requests=(request,),
            fake_sources=frozenset(fake_sources),
            fake_destinations=frozenset(fake_destinations),
            kind="independent",
        )
        self.pending[record.record_id] = record
        return record

    # ------------------------------------------------------------------
    # Shared obfuscation
    # ------------------------------------------------------------------
    def obfuscate_shared(
        self, requests: Sequence[ClientRequest]
    ) -> ObfuscationRecord:
        """Merge ``requests`` into one shared ``Q(S, T)``.

        S holds every member's true source; fakes are added until
        ``|S| >= max_i f_Si`` (destinations symmetrically), matching
        Section III-C's definition of the shared obfuscated path query.

        Raises
        ------
        ObfuscationError
            If ``requests`` is empty or fakes run out.
        """
        if not requests:
            raise ObfuscationError("shared obfuscation needs at least one request")
        cluster = QueryCluster(requests=list(requests))
        true_sources = cluster.source_nodes
        true_destinations = cluster.destination_nodes
        need_s = max(cluster.max_f_s - len(true_sources), 0)
        need_t = max(cluster.max_f_t - len(true_destinations), 0)
        used = frozenset(true_sources) | frozenset(true_destinations)
        fake_sources = self._pick_fakes(
            anchors=true_sources,
            counterparts=true_destinations,
            count=need_s,
            exclude=used,
        )
        fake_destinations = self._pick_fakes(
            anchors=true_destinations,
            counterparts=true_sources,
            count=need_t,
            exclude=used | frozenset(fake_sources),
        )
        sources = self._shuffled(true_sources + fake_sources)
        destinations = self._shuffled(true_destinations + fake_destinations)
        record = ObfuscationRecord(
            record_id=next(_record_counter),
            query=ObfuscatedPathQuery(tuple(sources), tuple(destinations)),
            requests=tuple(requests),
            fake_sources=frozenset(fake_sources),
            fake_destinations=frozenset(fake_destinations),
            kind="shared",
        )
        self.pending[record.record_id] = record
        return record

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def obfuscate_batch(
        self,
        requests: Sequence[ClientRequest],
        mode: str = "shared",
        max_source_diameter: float = float("inf"),
        max_destination_diameter: float = float("inf"),
        max_cluster_size: int | None = None,
    ) -> list[ObfuscationRecord]:
        """Section IV pipeline: cluster the batch, obfuscate each cluster.

        Parameters
        ----------
        mode:
            ``"shared"`` (cluster, then one shared query per cluster) or
            ``"independent"`` (one query per request; clustering skipped).
        max_source_diameter, max_destination_diameter, max_cluster_size:
            Clustering knobs, see :func:`repro.core.clustering.cluster_requests`.
        """
        if mode == "independent":
            return [self.obfuscate_independent(r) for r in requests]
        if mode != "shared":
            raise ValueError(f"unknown mode {mode!r}; use 'independent' or 'shared'")
        clusters = cluster_requests(
            requests,
            self._network,
            max_source_diameter=max_source_diameter,
            max_destination_diameter=max_destination_diameter,
            max_cluster_size=max_cluster_size,
        )
        return [self.obfuscate_shared(c.requests) for c in clusters]

    def discard(self, record_id: int) -> None:
        """Forget a satisfied record ("immediately discarded ... for sake of
        security", Section IV).  Unknown ids are ignored (idempotent)."""
        self.pending.pop(record_id, None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pick_fakes(
        self,
        anchors: Sequence[NodeId],
        counterparts: Sequence[NodeId],
        count: int,
        exclude: frozenset[NodeId],
        rng: random.Random | None = None,
    ) -> list[NodeId]:
        if count <= 0:
            return []
        context = SelectionContext(
            network=self._network,
            index=self._index,
            rng=rng if rng is not None else self._rng,
            anchors=anchors,
            counterparts=counterparts,
            exclude=exclude,
        )
        return self._strategy.select(context, count)

    def _shuffled(
        self, nodes: list[NodeId], rng: random.Random | None = None
    ) -> list[NodeId]:
        out = list(nodes)
        (rng if rng is not None else self._rng).shuffle(out)
        return out
