"""Seeded traffic-event scenario generators for the live pipeline.

Where :mod:`repro.workloads.queries` synthesizes the *query* side of a
replay, this module synthesizes the *traffic* side: timed streams of
:class:`~repro.workloads.replay.TrafficEvent` edge re-weights shaped
like the situations a city's feed actually produces —

* :func:`morning_rush` / :func:`evening_rush`: a congestion wave that
  ramps edge weights up toward a peak multiplier and back down, biased
  toward one half of the map (inbound in the morning, outbound in the
  evening);
* :func:`incident_spike`: a localized incident that multiplies the
  weights of every edge around a random center for a bounded window,
  then restores them;
* :func:`uniform_churn`: a steady background drizzle re-weighting
  random edges at a constant rate — the knob behind
  ``repro serve-replay --churn-cells-per-min`` and the soak/bench
  gates.

Every generator is seeded and pure (same arguments, same event list),
emits events sorted by ``at_ms``, and only ever re-weights edges that
exist — so a stream can be written to a v2 workload file
(:func:`~repro.workloads.replay.write_workload_items`), replayed
through :meth:`~repro.service.pipeline.TrafficPipeline.publish`, or
applied directly via
:meth:`~repro.service.serving.ServingStack.reweight`.
"""

from __future__ import annotations

import random

from repro.exceptions import ExperimentError
from repro.network.graph import RoadNetwork
from repro.workloads.replay import TrafficEvent

__all__ = [
    "SCENARIOS",
    "morning_rush",
    "evening_rush",
    "incident_spike",
    "uniform_churn",
    "scenario_events",
]


def _edge_list(network: RoadNetwork) -> list[tuple]:
    """All edges as ``(u, v, weight)``, in deterministic iteration order."""
    edges = list(network.edges())
    if not edges:
        raise ExperimentError("network has no edges to re-weight")
    return edges


def _wave(
    network: RoadNetwork,
    *,
    inbound: bool,
    duration_ms: int,
    peak_factor: float,
    events: int,
    seed: int,
) -> list[TrafficEvent]:
    """A rush-hour congestion wave over one half of the map.

    Weights ramp linearly up to ``peak_factor`` at mid-wave and back
    down to baseline at the end; each event re-weights one random edge
    whose midpoint lies in the rush half (left half for ``inbound``,
    right half for outbound), so the wave churns a spatially coherent
    set of overlay cells rather than the whole map.
    """
    if duration_ms <= 0 or events <= 0:
        raise ExperimentError("duration_ms and events must be positive")
    if peak_factor < 1.0:
        raise ExperimentError("peak_factor must be >= 1.0")
    rng = random.Random(seed)
    min_x, _, max_x, _ = network.bounding_box()
    mid_x = (min_x + max_x) / 2.0
    candidates = []
    for u, v, w in _edge_list(network):
        x = (network.position(u).x + network.position(v).x) / 2.0
        if (x <= mid_x) == inbound:
            candidates.append((u, v, w))
    if not candidates:  # degenerate map: rush over everything
        candidates = _edge_list(network)
    stream: list[TrafficEvent] = []
    for i in range(events):
        at_ms = round(i * duration_ms / events)
        # triangle profile: 0 at the edges of the wave, 1 at its middle
        phase = i / max(events - 1, 1)
        ramp = 1.0 - abs(2.0 * phase - 1.0)
        factor = 1.0 + (peak_factor - 1.0) * ramp
        u, v, w = rng.choice(candidates)
        stream.append(TrafficEvent(u, v, w * factor, at_ms))
    return stream


def morning_rush(
    network: RoadNetwork,
    duration_ms: int = 60_000,
    peak_factor: float = 3.0,
    events: int = 200,
    seed: int = 0,
) -> list[TrafficEvent]:
    """An inbound (left-half) congestion wave; see :func:`_wave`."""
    return _wave(
        network,
        inbound=True,
        duration_ms=duration_ms,
        peak_factor=peak_factor,
        events=events,
        seed=seed,
    )


def evening_rush(
    network: RoadNetwork,
    duration_ms: int = 60_000,
    peak_factor: float = 3.0,
    events: int = 200,
    seed: int = 0,
) -> list[TrafficEvent]:
    """An outbound (right-half) congestion wave; see :func:`_wave`."""
    return _wave(
        network,
        inbound=False,
        duration_ms=duration_ms,
        peak_factor=peak_factor,
        events=events,
        seed=seed,
    )


def incident_spike(
    network: RoadNetwork,
    duration_ms: int = 30_000,
    spike_factor: float = 8.0,
    radius: float | None = None,
    seed: int = 0,
) -> list[TrafficEvent]:
    """A localized incident: spike a neighborhood's edges, then recover.

    Picks a random center node, multiplies the weight of every edge
    with an endpoint within ``radius`` of it (default: 10% of the map
    diagonal) at ``t=0``, and emits the restoring re-weights at
    ``duration_ms`` — a burst shape that stresses the pipeline's
    debounce window with two dense cell-local batches.
    """
    if duration_ms <= 0:
        raise ExperimentError("duration_ms must be positive")
    if spike_factor <= 0:
        raise ExperimentError("spike_factor must be positive")
    rng = random.Random(seed)
    min_x, min_y, max_x, max_y = network.bounding_box()
    if radius is None:
        diagonal = ((max_x - min_x) ** 2 + (max_y - min_y) ** 2) ** 0.5
        radius = 0.10 * max(diagonal, 1e-9)
    center = rng.choice(list(network.nodes()))
    cp = network.position(center)
    stream: list[TrafficEvent] = []
    for u, v, w in _edge_list(network):
        pu, pv = network.position(u), network.position(v)
        near = min(
            ((pu.x - cp.x) ** 2 + (pu.y - cp.y) ** 2) ** 0.5,
            ((pv.x - cp.x) ** 2 + (pv.y - cp.y) ** 2) ** 0.5,
        )
        if near <= radius:
            stream.append(TrafficEvent(u, v, w * spike_factor, 0))
            stream.append(TrafficEvent(u, v, w, duration_ms))
    if not stream:  # radius missed every edge: spike the center's own
        u, v, w = _edge_list(network)[0]
        stream = [
            TrafficEvent(u, v, w * spike_factor, 0),
            TrafficEvent(u, v, w, duration_ms),
        ]
    stream.sort(key=lambda e: e.at_ms)
    return stream


def uniform_churn(
    network: RoadNetwork,
    duration_ms: int = 60_000,
    events: int = 200,
    jitter: float = 0.5,
    seed: int = 0,
) -> list[TrafficEvent]:
    """Steady background churn: random edges drift around baseline.

    Each event multiplies one uniformly random edge's baseline weight
    by a factor in ``[1 - jitter, 1 + jitter]``; events are spread
    evenly over ``duration_ms``.  This is the constant-rate stream the
    throughput-under-churn bench and the soak test drive.
    """
    if duration_ms <= 0 or events <= 0:
        raise ExperimentError("duration_ms and events must be positive")
    if not 0 <= jitter < 1:
        raise ExperimentError("jitter must be within [0, 1)")
    rng = random.Random(seed)
    edges = _edge_list(network)
    stream: list[TrafficEvent] = []
    for i in range(events):
        at_ms = round(i * duration_ms / events)
        u, v, w = rng.choice(edges)
        factor = 1.0 + jitter * (2.0 * rng.random() - 1.0)
        stream.append(TrafficEvent(u, v, w * factor, at_ms))
    return stream


#: scenario name -> generator, the registry behind ``repro scenario``
SCENARIOS = {
    "morning-rush": morning_rush,
    "evening-rush": evening_rush,
    "incident": incident_spike,
    "uniform": uniform_churn,
}


def scenario_events(
    name: str,
    network: RoadNetwork,
    duration_ms: int = 60_000,
    events: int = 200,
    seed: int = 0,
) -> list[TrafficEvent]:
    """Generate the named scenario's event stream with shared knobs.

    The uniform entry point the CLI uses: every scenario accepts the
    same ``(network, duration, seed)`` surface; scenario-specific
    parameters keep their defaults (call the generator directly for
    full control).  ``events`` is advisory for :func:`incident_spike`,
    whose event count is set by the incident radius.

    Raises
    ------
    ExperimentError
        For an unknown scenario name.
    """
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ExperimentError(f"unknown scenario {name!r}; one of: {known}")
    if name == "incident":
        return incident_spike(network, duration_ms=duration_ms, seed=seed)
    return SCENARIOS[name](
        network, duration_ms=duration_ms, events=events, seed=seed
    )
