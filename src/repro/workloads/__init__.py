"""Query workload generators for the experiments.

Seeded generators producing the path-query mixes the paper's scenarios
imply: uniform trips, distance-bounded trips, and the motivating
"residents visiting a few sensitive destinations" hotspot workload, plus
an endpoint-popularity map for prior-aware adversaries.  The replay
module adds the on-disk workload formats (protected queries, and v2's
interleaved traffic events); :mod:`repro.workloads.scenarios` generates
the timed traffic-event waves (rush hours, incidents, uniform churn)
the live pipeline replays.
"""

from repro.workloads.queries import (
    distance_bounded_queries,
    hotspot_queries,
    popularity_map,
    popularity_weighted_queries,
    requests_from_queries,
    uniform_queries,
)
from repro.workloads.replay import (
    TrafficEvent,
    WorkloadEntry,
    read_workload,
    read_workload_items,
    synthesize_workload,
    write_workload,
    write_workload_items,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    evening_rush,
    incident_spike,
    morning_rush,
    scenario_events,
    uniform_churn,
)

__all__ = [
    "uniform_queries",
    "distance_bounded_queries",
    "hotspot_queries",
    "popularity_map",
    "popularity_weighted_queries",
    "requests_from_queries",
    "WorkloadEntry",
    "TrafficEvent",
    "read_workload",
    "read_workload_items",
    "write_workload",
    "write_workload_items",
    "synthesize_workload",
    "SCENARIOS",
    "morning_rush",
    "evening_rush",
    "incident_spike",
    "uniform_churn",
    "scenario_events",
]
