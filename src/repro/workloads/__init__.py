"""Query workload generators for the experiments.

Seeded generators producing the path-query mixes the paper's scenarios
imply: uniform trips, distance-bounded trips, and the motivating
"residents visiting a few sensitive destinations" hotspot workload, plus
an endpoint-popularity map for prior-aware adversaries.
"""

from repro.workloads.queries import (
    distance_bounded_queries,
    hotspot_queries,
    popularity_map,
    popularity_weighted_queries,
    requests_from_queries,
    uniform_queries,
)
from repro.workloads.replay import (
    WorkloadEntry,
    read_workload,
    synthesize_workload,
    write_workload,
)

__all__ = [
    "uniform_queries",
    "distance_bounded_queries",
    "hotspot_queries",
    "popularity_map",
    "popularity_weighted_queries",
    "requests_from_queries",
    "WorkloadEntry",
    "read_workload",
    "write_workload",
    "synthesize_workload",
]
