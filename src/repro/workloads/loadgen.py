"""Async HTTP load generator for the network gateway.

A zero-dependency client for :mod:`repro.service.gateway`: N concurrent
clients, each holding one keep-alive HTTP/1.1 connection, replay a
fixed stream of wire-schema route requests and record per-request
latency, status and (optionally) the raw response payloads — the
byte-identity evidence the bench gate compares against in-process
answers.

The request stream is split round-robin across clients, so the gateway
sees genuinely concurrent traffic with a deterministic overall request
multiset regardless of client count.

Use programmatically (:func:`run_load`) from benchmarks and tests, or
from the command line via ``repro loadgen`` / ``tools/loadgen.py``.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.service.stats import percentile
from repro.service.wire import RouteRequest

__all__ = ["LoadReport", "parse_retry_after", "run_load", "run_load_async"]

# 429 backoff policy: how many times one request is retried before the
# final 429 is recorded as an error, and the longest single sleep the
# server hint is clamped to (keeps a misconfigured hint from stalling a
# bench run).
_MAX_RETRIES_429 = 2
_MAX_BACKOFF_S = 1.0


def parse_retry_after(header: str | None, payload: bytes) -> float | None:
    """Backoff hint (seconds) from a 429 response, or ``None``.

    The gateway sends the hint twice: a precise float ``retry_after_s``
    field in the JSON error body, and an RFC 9110 integer delta-seconds
    ``Retry-After`` header (which must round up, so it overstates).  The
    body wins when both parse; the header is the fallback for any
    RFC-compliant server.
    """
    try:
        hint = json.loads(payload.decode("utf-8")).get("retry_after_s")
        if isinstance(hint, (int, float)) and hint >= 0:
            return float(hint)
    except (ValueError, AttributeError):
        pass
    if header is not None:
        try:
            value = float(header.strip())
        except ValueError:
            return None
        if value >= 0:
            return value
    return None


@dataclass(slots=True)
class LoadReport:
    """Outcome of one load-generation run.

    Attributes
    ----------
    requests:
        HTTP requests completed (any status).
    errors:
        Responses with a non-200 status.
    total_seconds:
        Wall-clock duration of the whole run.
    latencies:
        Per-request wall latency in seconds, completion order.
    status_counts:
        ``{status code: count}`` over every response.
    payloads:
        Raw response bodies (capture order), only when the run was
        started with ``capture_payloads=True``; empty otherwise.
    """

    requests: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    status_counts: Counter = field(default_factory=Counter)
    payloads: list[bytes] = field(default_factory=list)

    @property
    def rps(self) -> float:
        """Completed requests per second (0 when the run was empty)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.requests / self.total_seconds

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile of per-request latency (0 when empty)."""
        return percentile(sorted(self.latencies), q)

    @property
    def p50_latency(self) -> float:
        """Median per-request latency in seconds."""
        return self.latency_percentile(0.50)

    @property
    def p99_latency(self) -> float:
        """99th-percentile per-request latency in seconds."""
        return self.latency_percentile(0.99)

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``)."""
        return {
            "schema": 1,
            "kind": "load_report",
            "requests": self.requests,
            "errors": self.errors,
            "total_seconds": self.total_seconds,
            "rps": self.rps,
            "p50_latency_s": self.p50_latency,
            "p99_latency_s": self.p99_latency,
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
        }


async def _http_post(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    host: str,
    path: str,
    body: bytes,
) -> tuple[int, bytes, str | None]:
    """One keep-alive POST round-trip.

    Returns ``(status, body, retry_after)`` where ``retry_after`` is the
    raw ``Retry-After`` header value when the server sent one.
    """
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    header_block = await reader.readuntil(b"\r\n\r\n")
    lines = header_block.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    length = 0
    retry_after: str | None = None
    for line in lines[1:]:
        lowered = line.lower()
        if lowered.startswith("content-length:"):
            length = int(line.split(":", 1)[1].strip())
        elif lowered.startswith("retry-after:"):
            retry_after = line.split(":", 1)[1].strip()
    payload = await reader.readexactly(length) if length else b""
    return status, payload, retry_after


async def _client(
    host: str,
    port: int,
    path: str,
    bodies: list[bytes],
    report: LoadReport,
    capture_payloads: bool,
) -> None:
    """One load client: a single connection replaying its body slice.

    Honors 429 admission refusals: the request is retried up to
    ``_MAX_RETRIES_429`` times after sleeping for the server's
    ``Retry-After`` hint (float JSON body or integer header, via
    :func:`parse_retry_after`).  Every attempt is recorded in the
    report; only a 429 that exhausts its retries counts as an error.
    """
    if not bodies:
        return
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for body in bodies:
            attempts_left = _MAX_RETRIES_429
            while True:
                t0 = time.perf_counter()
                status, payload, retry_after = await _http_post(
                    reader, writer, host, path, body
                )
                elapsed = time.perf_counter() - t0
                report.latencies.append(elapsed)
                report.requests += 1
                report.status_counts[status] += 1
                if status == 429 and attempts_left > 0:
                    attempts_left -= 1
                    hint = parse_retry_after(retry_after, payload)
                    delay = 0.05 if hint is None else hint
                    await asyncio.sleep(min(delay, _MAX_BACKOFF_S))
                    continue
                if status != 200:
                    report.errors += 1
                if capture_payloads:
                    report.payloads.append(payload)
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_load_async(
    host: str,
    port: int,
    requests: Sequence[RouteRequest],
    clients: int = 4,
    repeats: int = 1,
    path: str = "/v1/route",
    capture_payloads: bool = False,
) -> LoadReport:
    """Drive the gateway with ``clients`` concurrent connections.

    The request stream (``requests`` repeated ``repeats`` times) is
    split round-robin across clients.  With ``capture_payloads=True``
    every raw response body is kept on the report for byte-identity
    comparison (memory scales with the stream — leave off for pure
    throughput runs).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    stream = [request.to_json().encode("utf-8") for request in requests]
    stream = stream * repeats
    slices: list[list[bytes]] = [stream[i::clients] for i in range(clients)]
    report = LoadReport()
    t0 = time.perf_counter()
    await asyncio.gather(*[
        _client(host, port, path, bodies, report, capture_payloads)
        for bodies in slices
    ])
    report.total_seconds = time.perf_counter() - t0
    return report


def run_load(
    host: str,
    port: int,
    requests: Sequence[RouteRequest],
    clients: int = 4,
    repeats: int = 1,
    path: str = "/v1/route",
    capture_payloads: bool = False,
) -> LoadReport:
    """Blocking wrapper around :func:`run_load_async`."""
    return asyncio.run(run_load_async(
        host, port, requests,
        clients=clients,
        repeats=repeats,
        path=path,
        capture_payloads=capture_payloads,
    ))
