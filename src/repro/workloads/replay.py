"""Workload files for ``repro serve-replay``.

A workload file is the client-side traffic a serving stack is replayed
against, in the plain-text idiom of :mod:`repro.network.io`.  Format v1
is one protected path query per line:

```
# repro workload v1
q <source> <destination> <f_s> <f_t>
```

Format v2 additionally interleaves traffic events — edge re-weights the
live pipeline (:mod:`repro.service.pipeline`) applies while the query
stream is served:

```
# repro workload v2
q <source> <destination> <f_s> <f_t>
w <u> <v> <weight> <at_ms>
```

``q`` lines carry the true endpoints plus the requested protection
sizes; ``w`` lines carry an existing edge's new weight and the event's
timestamp in milliseconds since replay start.  Lines replay in file
order, so a ``w`` line conceptually lands between the queries around
it.  :func:`read_workload` / :func:`write_workload` round-trip queries
only (v1 compatible); :func:`read_workload_items` /
:func:`write_workload_items` round-trip the full mixed stream.
:func:`synthesize_workload` generates queries from the seeded
generators in :mod:`repro.workloads.queries`; traffic-event waves come
from :mod:`repro.workloads.scenarios`.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import ExperimentError
from repro.network.graph import NodeId, RoadNetwork

__all__ = [
    "WorkloadEntry",
    "TrafficEvent",
    "read_workload",
    "read_workload_items",
    "write_workload",
    "write_workload_items",
    "synthesize_workload",
]


@dataclass(frozen=True, slots=True)
class WorkloadEntry:
    """One protected path query of a replayable workload."""

    query: PathQuery
    setting: ProtectionSetting

    def as_request(self, user: str) -> ClientRequest:
        """Wrap the entry into a :class:`ClientRequest` for ``user``."""
        return ClientRequest(user, self.query, self.setting)


@dataclass(frozen=True, slots=True)
class TrafficEvent:
    """One edge re-weight of a live traffic stream (a v2 ``w`` line).

    Attributes
    ----------
    u, v:
        Endpoints of an *existing* edge (re-weighting never creates
        roads; :meth:`~repro.service.serving.ServingStack.reweight`
        enforces this at apply time).
    weight:
        The edge's new non-negative weight.
    at_ms:
        Event timestamp in milliseconds since stream start — the moment
        the update became known, from which the pipeline measures
        staleness (event to installed-epoch latency).
    """

    u: NodeId
    v: NodeId
    weight: float
    at_ms: int = 0

    def as_change(self) -> tuple[NodeId, NodeId, float]:
        """The ``(u, v, weight)`` tuple ``ServingStack.reweight`` takes."""
        return (self.u, self.v, self.weight)


def write_workload(
    entries: Sequence[WorkloadEntry], path: str | os.PathLike[str]
) -> None:
    """Write query-only ``entries`` to ``path`` (format v1)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro workload v1\n")
        for entry in entries:
            fh.write(_format_item(entry))


def write_workload_items(
    items: Sequence[WorkloadEntry | TrafficEvent],
    path: str | os.PathLike[str],
) -> None:
    """Write a mixed query/traffic stream to ``path`` (format v2).

    Items keep file order, so interleavings round-trip exactly through
    :func:`read_workload_items`.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro workload v2\n")
        for item in items:
            fh.write(_format_item(item))


def _format_item(item: WorkloadEntry | TrafficEvent) -> str:
    """The one-line wire form of a workload item."""
    if isinstance(item, TrafficEvent):
        return f"w {item.u} {item.v} {item.weight!r} {item.at_ms}\n"
    if isinstance(item, WorkloadEntry):
        return (
            f"q {item.query.source} {item.query.destination} "
            f"{item.setting.f_s} {item.setting.f_t}\n"
        )
    raise ExperimentError(f"unsupported workload item {item!r}")


def read_workload(path: str | os.PathLike[str]) -> list[WorkloadEntry]:
    """Read only the protected queries of a workload file.

    Accepts both formats: v1 files are returned whole; in a v2 file the
    ``w`` traffic lines are skipped (callers that replay traffic too use
    :func:`read_workload_items`).  Node ids are parsed as integers (the
    id type every generator in this package produces).

    Raises
    ------
    ExperimentError
        On malformed lines or unknown record kinds.
    """
    return [
        item
        for item in read_workload_items(path)
        if isinstance(item, WorkloadEntry)
    ]


def read_workload_items(
    path: str | os.PathLike[str],
) -> list[WorkloadEntry | TrafficEvent]:
    """Read a workload file as its full mixed item stream, in file order.

    v1 files yield only :class:`WorkloadEntry`; v2 files interleave
    :class:`TrafficEvent` items where their ``w`` lines sit.

    Raises
    ------
    ExperimentError
        On malformed lines or unknown record kinds.
    """
    items: list[WorkloadEntry | TrafficEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            try:
                if fields[0] == "q" and len(fields) == 5:
                    source, destination, f_s, f_t = (
                        int(f) for f in fields[1:]
                    )
                    items.append(
                        WorkloadEntry(
                            query=PathQuery(source, destination),
                            setting=ProtectionSetting(f_s, f_t),
                        )
                    )
                    continue
                if fields[0] == "w" and len(fields) == 5:
                    weight = float(fields[3])
                    items.append(
                        TrafficEvent(
                            u=int(fields[1]),
                            v=int(fields[2]),
                            weight=weight,
                            at_ms=int(fields[4]),
                        )
                    )
                    continue
            except ValueError as exc:
                raise ExperimentError(
                    f"malformed workload line {line_no}: {line!r}"
                ) from exc
            raise ExperimentError(
                f"malformed workload line {line_no}: {line!r}"
            )
    return items


def synthesize_workload(
    network: RoadNetwork,
    count: int,
    f_s: int = 3,
    f_t: int = 3,
    kind: str = "hotspot",
    seed: int = 0,
) -> list[WorkloadEntry]:
    """Generate a seeded workload over ``network``.

    Parameters
    ----------
    network:
        Road network the endpoints are drawn from.
    count:
        Number of entries.
    f_s, f_t:
        Protection sizes applied to every entry.
    kind:
        ``"hotspot"`` (the paper's motivating mix; repeated popular
        destinations make caches earn their keep) or ``"uniform"``.
    seed:
        Generator seed.

    Raises
    ------
    ExperimentError
        For an unknown ``kind``.
    """
    from repro.workloads.queries import hotspot_queries, uniform_queries

    if kind == "hotspot":
        queries = hotspot_queries(network, count, seed=seed)
    elif kind == "uniform":
        queries = uniform_queries(network, count, seed=seed)
    else:
        raise ExperimentError(
            f"unknown workload kind {kind!r}; use 'hotspot' or 'uniform'"
        )
    setting = ProtectionSetting(f_s, f_t)
    return [WorkloadEntry(query=q, setting=setting) for q in queries]
