"""Workload files for ``repro serve-replay``.

A workload file is the client-side traffic a serving stack is replayed
against: one protected path query per line, in the plain-text idiom of
:mod:`repro.network.io`:

```
# repro workload v1
q <source> <destination> <f_s> <f_t>
```

``q`` lines carry the true endpoints plus the requested protection
sizes.  :func:`read_workload` / :func:`write_workload` round-trip the
format; :func:`synthesize_workload` generates one from the seeded query
generators in :mod:`repro.workloads.queries`.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.exceptions import ExperimentError
from repro.network.graph import RoadNetwork

__all__ = [
    "WorkloadEntry",
    "read_workload",
    "write_workload",
    "synthesize_workload",
]


@dataclass(frozen=True, slots=True)
class WorkloadEntry:
    """One protected path query of a replayable workload."""

    query: PathQuery
    setting: ProtectionSetting

    def as_request(self, user: str) -> ClientRequest:
        """Wrap the entry into a :class:`ClientRequest` for ``user``."""
        return ClientRequest(user, self.query, self.setting)


def write_workload(
    entries: Sequence[WorkloadEntry], path: str | os.PathLike[str]
) -> None:
    """Write ``entries`` to ``path`` in the text format described above."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro workload v1\n")
        for entry in entries:
            fh.write(
                f"q {entry.query.source} {entry.query.destination} "
                f"{entry.setting.f_s} {entry.setting.f_t}\n"
            )


def read_workload(path: str | os.PathLike[str]) -> list[WorkloadEntry]:
    """Read a workload previously written by :func:`write_workload`.

    Node ids are parsed as integers (the id type every generator in this
    package produces).

    Raises
    ------
    ExperimentError
        On malformed lines or unknown record kinds.
    """
    entries: list[WorkloadEntry] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if fields[0] != "q" or len(fields) != 5:
                raise ExperimentError(
                    f"malformed workload line {line_no}: {line!r}"
                )
            try:
                source, destination, f_s, f_t = (int(f) for f in fields[1:])
            except ValueError as exc:
                raise ExperimentError(
                    f"malformed workload line {line_no}: {line!r}"
                ) from exc
            entries.append(
                WorkloadEntry(
                    query=PathQuery(source, destination),
                    setting=ProtectionSetting(f_s, f_t),
                )
            )
    return entries


def synthesize_workload(
    network: RoadNetwork,
    count: int,
    f_s: int = 3,
    f_t: int = 3,
    kind: str = "hotspot",
    seed: int = 0,
) -> list[WorkloadEntry]:
    """Generate a seeded workload over ``network``.

    Parameters
    ----------
    network:
        Road network the endpoints are drawn from.
    count:
        Number of entries.
    f_s, f_t:
        Protection sizes applied to every entry.
    kind:
        ``"hotspot"`` (the paper's motivating mix; repeated popular
        destinations make caches earn their keep) or ``"uniform"``.
    seed:
        Generator seed.

    Raises
    ------
    ExperimentError
        For an unknown ``kind``.
    """
    from repro.workloads.queries import hotspot_queries, uniform_queries

    if kind == "hotspot":
        queries = hotspot_queries(network, count, seed=seed)
    elif kind == "uniform":
        queries = uniform_queries(network, count, seed=seed)
    else:
        raise ExperimentError(
            f"unknown workload kind {kind!r}; use 'hotspot' or 'uniform'"
        )
    setting = ProtectionSetting(f_s, f_t)
    return [WorkloadEntry(query=q, setting=setting) for q in queries]
