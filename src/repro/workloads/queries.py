"""Seeded path-query workload generators."""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.exceptions import ExperimentError
from repro.network.graph import NodeId, RoadNetwork
from repro.network.spatial import GridSpatialIndex

__all__ = [
    "uniform_queries",
    "distance_bounded_queries",
    "hotspot_queries",
    "overlapping_session_queries",
    "popularity_map",
    "requests_from_queries",
]

_MAX_REJECTION_ROUNDS = 10_000


def uniform_queries(
    network: RoadNetwork, count: int, seed: int = 0
) -> list[PathQuery]:
    """``count`` queries with both endpoints uniform over the network."""
    if count < 0:
        raise ExperimentError("count must be >= 0")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    if len(nodes) < 2 and count > 0:
        raise ExperimentError("need at least 2 nodes to build queries")
    queries: list[PathQuery] = []
    while len(queries) < count:
        s = rng.choice(nodes)
        t = rng.choice(nodes)
        if s != t:
            queries.append(PathQuery(s, t))
    return queries


def distance_bounded_queries(
    network: RoadNetwork,
    count: int,
    min_distance: float,
    max_distance: float,
    seed: int = 0,
) -> list[PathQuery]:
    """Queries whose Euclidean endpoint gap lies in ``[min, max]``.

    Uses rejection sampling; raises :class:`ExperimentError` when the
    network cannot supply enough pairs in the band (e.g. the band exceeds
    the map diagonal).
    """
    if count < 0:
        raise ExperimentError("count must be >= 0")
    if not 0 <= min_distance <= max_distance:
        raise ExperimentError("need 0 <= min_distance <= max_distance")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    queries: list[PathQuery] = []
    rounds = 0
    while len(queries) < count:
        rounds += 1
        if rounds > _MAX_REJECTION_ROUNDS * max(count, 1):
            raise ExperimentError(
                f"could not sample {count} queries with Euclidean distance in "
                f"[{min_distance}, {max_distance}]"
            )
        s = rng.choice(nodes)
        t = rng.choice(nodes)
        if s == t:
            continue
        d = network.euclidean_distance(s, t)
        if min_distance <= d <= max_distance:
            queries.append(PathQuery(s, t))
    return queries


def hotspot_queries(
    network: RoadNetwork,
    count: int,
    num_hotspots: int = 3,
    hotspot_radius: float | None = None,
    seed: int = 0,
    index: GridSpatialIndex | None = None,
) -> list[PathQuery]:
    """The paper's motivating workload: homes anywhere, destinations at
    a few sensitive hotspots (clinics, specialists...).

    Sources are uniform; each destination is a node within
    ``hotspot_radius`` of one of ``num_hotspots`` randomly placed hotspot
    centers (default radius: 5% of the map diagonal).
    """
    if count < 0:
        raise ExperimentError("count must be >= 0")
    if num_hotspots < 1:
        raise ExperimentError("need at least one hotspot")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    if index is None:
        index = GridSpatialIndex(network)
    min_x, min_y, max_x, max_y = network.bounding_box()
    if hotspot_radius is None:
        diagonal = ((max_x - min_x) ** 2 + (max_y - min_y) ** 2) ** 0.5
        hotspot_radius = 0.05 * max(diagonal, 1e-9)
    hotspot_centers = [rng.choice(nodes) for _ in range(num_hotspots)]

    queries: list[PathQuery] = []
    rounds = 0
    while len(queries) < count:
        rounds += 1
        if rounds > _MAX_REJECTION_ROUNDS * max(count, 1):
            raise ExperimentError("could not sample hotspot queries")
        s = rng.choice(nodes)
        center = rng.choice(hotspot_centers)
        p = network.position(center)
        t = index.random_node_near(p.x, p.y, hotspot_radius, rng, exclude={s})
        if t is None or t == s:
            continue
        queries.append(PathQuery(s, t))
    return queries


def popularity_weighted_queries(
    network: RoadNetwork,
    count: int,
    popularity: dict[NodeId, float],
    seed: int = 0,
) -> list[PathQuery]:
    """Queries whose endpoints follow an endpoint-popularity distribution.

    Models real traffic: trips start and end at popular addresses.  Used
    with :func:`popularity_map` so the E7 adversary's prior matches how
    true queries are actually drawn.
    """
    if count < 0:
        raise ExperimentError("count must be >= 0")
    nodes = [n for n, w in popularity.items() if w > 0 and n in network]
    if len(nodes) < 2 and count > 0:
        raise ExperimentError("popularity map must cover at least 2 network nodes")
    weights = [popularity[n] for n in nodes]
    rng = random.Random(seed)
    queries: list[PathQuery] = []
    while len(queries) < count:
        s, t = rng.choices(nodes, weights=weights, k=2)
        if s != t:
            queries.append(PathQuery(s, t))
    return queries


def overlapping_session_queries(
    network: RoadNetwork,
    sessions: int = 8,
    queries_per_session: int = 6,
    num_origins: int = 20,
    num_hotspots: int = 10,
    set_size: int = 3,
    seed: int = 0,
) -> list[list[ObfuscatedPathQuery]]:
    """Concurrent-session obfuscated workloads with hot endpoint pools.

    Every session draws its obfuscated queries' source sets from one
    shared pool of ``num_origins`` origins and its destination sets from
    ``num_hotspots`` hotspots — the recurring-traffic shape (commuter
    origins, popular destinations, sticky decoys; see E12) that makes
    cross-session endpoint unions far smaller than the sum of the
    per-session sets.  This is the canonical workload of the coalescing
    benchmarks (`benchmarks/bench_coalescing.py`) and the CI perf gate
    (`tools/bench_quick.py`), shared so both measure the same scenario.
    """
    if sessions < 1 or queries_per_session < 1:
        raise ExperimentError("sessions and queries_per_session must be >= 1")
    if set_size < 1:
        raise ExperimentError("set_size must be >= 1")
    if num_origins < set_size or num_hotspots < set_size:
        raise ExperimentError("endpoint pools must hold at least set_size nodes")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    if len(nodes) < num_origins + num_hotspots:
        raise ExperimentError("network too small for the requested pools")
    origins = rng.sample(nodes, num_origins)
    taken = set(origins)
    hotspots = rng.sample([n for n in nodes if n not in taken], num_hotspots)
    return [
        [
            ObfuscatedPathQuery(
                sources=tuple(rng.sample(origins, set_size)),
                destinations=tuple(rng.sample(hotspots, set_size)),
            )
            for _ in range(queries_per_session)
        ]
        for _ in range(sessions)
    ]


def popularity_map(
    network: RoadNetwork, seed: int = 0, skew: float = 1.0
) -> dict[NodeId, float]:
    """Zipf-like endpoint-popularity weights over all nodes.

    Nodes get ranks in a seeded random order; node at rank ``r`` has
    weight ``1 / r**skew``.  ``skew=0`` is uniform; larger skews model a
    city where few addresses account for most trips — the adversary's
    public-information prior in experiment E7.
    """
    if skew < 0:
        raise ExperimentError("skew must be >= 0")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    rng.shuffle(nodes)
    return {node: 1.0 / (rank**skew) for rank, node in enumerate(nodes, start=1)}


def requests_from_queries(
    queries: Sequence[PathQuery],
    setting: ProtectionSetting | Sequence[ProtectionSetting] = ProtectionSetting(),
    user_prefix: str = "user",
) -> list[ClientRequest]:
    """Wrap queries into client requests with sequential user ids.

    ``setting`` may be a single :class:`ProtectionSetting` applied to all,
    or one per query.
    """
    if isinstance(setting, ProtectionSetting):
        settings = [setting] * len(queries)
    else:
        settings = list(setting)
        if len(settings) != len(queries):
            raise ExperimentError(
                f"{len(queries)} queries but {len(settings)} protection settings"
            )
    return [
        ClientRequest(f"{user_prefix}-{i}", query, s)
        for i, (query, s) in enumerate(zip(queries, settings))
    ]
