"""Bidirectional Dijkstra for point-to-point queries.

Used as the fast point-to-point engine inside the naive pairwise processor
ablation: when the server refuses to share spanning trees, bidirectional
search is the best it can do per pair.  Directed networks are supported:
the backward frontier expands over the reverse adjacency
(:class:`~repro.network.views.ReverseView`).
"""

from __future__ import annotations

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.graph import NodeId
from repro.search.heap import AddressableHeap
from repro.search.result import PathResult, SearchStats

__all__ = ["bidirectional_dijkstra_path"]


def bidirectional_dijkstra_path(
    network,
    source: NodeId,
    destination: NodeId,
    stats: SearchStats | None = None,
) -> PathResult:
    """Shortest path via simultaneous forward and backward Dijkstra.

    The two frontiers alternate expansions; the search stops when the sum
    of the two frontier minima reaches the best connecting distance seen,
    the classic stopping rule that guarantees optimality.  On directed
    networks the backward frontier follows edges in reverse.

    Raises
    ------
    NoPathError
        If no path exists.
    """
    if source not in network:
        raise UnknownNodeError(source)
    if destination not in network:
        raise UnknownNodeError(destination)
    if stats is None:
        stats = SearchStats()
    io = getattr(network, "io", None)
    io_before = (io.page_faults, io.distinct_pages) if io is not None else (0, 0)

    if source == destination:
        return PathResult(source, destination, (source,), 0.0)

    if getattr(network, "directed", False):
        from repro.network.views import ReverseView

        sides = (network, ReverseView(network))
    else:
        sides = (network, network)

    # Index 0 = forward from source, 1 = backward from destination.
    dist: list[dict[NodeId, float]] = [{source: 0.0}, {destination: 0.0}]
    pred: list[dict[NodeId, NodeId]] = [{}, {}]
    settled: list[set[NodeId]] = [set(), set()]
    heaps: list[AddressableHeap[NodeId]] = [AddressableHeap(), AddressableHeap()]
    heaps[0].push(source, 0.0)
    heaps[1].push(destination, 0.0)
    stats.heap_pushes += 2

    best_total = float("inf")
    meeting_node: NodeId | None = None

    while heaps[0] and heaps[1]:
        _key0, min0 = heaps[0].peek()
        _key1, min1 = heaps[1].peek()
        if min0 + min1 >= best_total:
            break
        side = 0 if min0 <= min1 else 1
        node, d = heaps[side].pop()
        settled[side].add(node)
        stats.settled_nodes += 1
        stats.max_settled_distance = max(stats.max_settled_distance, d)
        for neighbor, weight in sides[side].neighbors(node).items():
            if neighbor in settled[side]:
                continue
            stats.relaxed_edges += 1
            candidate = d + weight
            if candidate < dist[side].get(neighbor, float("inf")):
                dist[side][neighbor] = candidate
                pred[side][neighbor] = node
                if heaps[side].push_or_decrease(neighbor, candidate):
                    stats.heap_pushes += 1
            other = 1 - side
            if neighbor in dist[other]:
                total = dist[side][neighbor] + dist[other][neighbor]
                if total < best_total:
                    best_total = total
                    meeting_node = neighbor

    if io is not None:
        stats.page_faults += io.page_faults - io_before[0]
        stats.pages_touched += io.distinct_pages - io_before[1]
    if meeting_node is None:
        raise NoPathError(source, destination)

    forward_half: list[NodeId] = [meeting_node]
    node = meeting_node
    while node != source:
        node = pred[0][node]
        forward_half.append(node)
    forward_half.reverse()
    node = meeting_node
    while node != destination:
        node = pred[1][node]
        forward_half.append(node)
    return PathResult(
        source=source,
        destination=destination,
        nodes=tuple(forward_half),
        distance=best_total,
    )
