"""Process-parallel overlay customization over shared-memory CSR blobs.

Overlay customization — one pruned boundary-clique computation per cell
(:meth:`~repro.search.overlay.OverlayGraph._customize_cell`) — is
embarrassingly parallel: cells share nothing but read-only access to the
network.  The serial loops in :mod:`repro.search.overlay` are therefore
GIL-bound to one core, which is what separates "keeps up with churn"
from "bounded by cores" at metro scale (ROADMAP items 3-4).

:class:`ParallelCustomizer` fans per-cell clique construction out to a
persistent :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Blob handoff, no graph pickling.**  The network is spilled *once*
  per pool lifetime as a page-aligned ``.csrb`` blob
  (:func:`~repro.service.blob.write_csr_blob`) plus a partition-layout
  blob; every worker memory-maps both on first use and serves all
  subsequent tasks from the mapping.  Task payloads are cell indices,
  blob paths and small weight-delta dicts — a graph or partition object
  never crosses the process boundary (pickling either raises in the
  tests that pin this down).
* **Byte-identical results.**  Workers run literally the same
  customization code path as the serial build —
  ``OverlayGraph._customize_cell`` over a :class:`_BlobNetwork` read
  adapter whose ``neighbors()`` dicts reproduce the original adjacency
  order (CSR arc order *is* dict insertion order, by
  :meth:`~repro.network.csr.CSRGraph.from_network`) — and return
  compact clique arrays (``array('d')`` distances, ``array('q')`` path
  nodes) that the parent reassembles into the exact ``PathResult``
  tables the serial loop would have produced.  ``dumps_overlay`` of a
  parallel build is byte-identical to the serial build, which the
  property suite checks for arbitrary networks and worker counts.
* **Pool survival across re-weights.**  Traffic re-weights do not
  re-spill the blob: the parent keeps a cumulative ``(u, v) -> weight``
  delta map (re-read from the target network every call), ships it with
  each task, and workers overlay it on the mapped base weights.  A
  fresh spill happens only when the caller cannot name its changed
  edges, the network shape changed, or the delta map outgrew its
  budget — all counted in :attr:`ParallelCustomizer.spills` (pool
  health, surfaced by the pipeline snapshot).

The customizer also parallelizes the nested overlay's supercell pass
(:meth:`ParallelCustomizer.customize_super`) by spilling the level-1
overlay arrays the same way.

Telemetry follows the PR 6 redaction invariant: the
``repro_customize_*`` metrics and the ``customize.parallel`` trace span
carry worker counts, cell counts, spill counts and throughput — never
node identifiers.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from array import array
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.exceptions import GraphError, UnknownNodeError
from repro.network.graph import Point
from repro.search.result import PathResult, SearchStats

__all__ = ["ParallelCustomizer", "default_start_method"]


def default_start_method() -> str:
    """The safest available multiprocessing start method.

    ``forkserver`` when the platform offers it (immune to the
    fork-with-threads hazards of a serving process), else ``spawn``.
    Tests pass ``fork`` explicitly for speed.
    """
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


# ----------------------------------------------------------------------
# Worker side: blob attachment and per-cell customization
# ----------------------------------------------------------------------
class _LazyRows:
    """Per-cell node tuples sliced lazily out of blob sections.

    ``rows[i]`` materializes only the ``i``-th row (a cell's members or
    boundary) from the flat ``offsets``/``nodes`` pair, so a worker that
    customizes a handful of cells never touches — or faults in — the
    rest of the layout blob.
    """

    __slots__ = ("_offsets", "_nodes")

    def __init__(self, offsets, nodes) -> None:
        self._offsets = offsets
        self._nodes = nodes

    def __getitem__(self, i: int) -> tuple:
        return tuple(self._nodes[self._offsets[i]:self._offsets[i + 1]])

    def __len__(self) -> int:
        return len(self._offsets) - 1


class _BlobPartition:
    """The two partition views customization reads, blob-backed."""

    __slots__ = ("cells", "boundary")

    def __init__(self, cells: _LazyRows, boundary: _LazyRows) -> None:
        self.cells = cells
        self.boundary = boundary


class _BlobNetwork:
    """Read-only ``RoadNetwork`` adapter over a memory-mapped CSR blob.

    Serves exactly the read interface cell customization uses —
    ``nodes``/``position``/``neighbors``/``directed`` — straight from
    the mapping, with an optional ``(u, v) -> weight`` delta overlay so
    a pool can follow traffic re-weights without a fresh spill.
    ``neighbors()`` rebuilds each adjacency dict in CSR arc order, which
    equals the source network's dict insertion order
    (:meth:`~repro.network.csr.CSRGraph.from_network` preserves it), so
    everything downstream — cell CSR snapshots, Dijkstra relaxation
    order, kept-arc insertion order — matches the serial build exactly.
    """

    __slots__ = ("_csr", "deltas", "directed")

    def __init__(self, csr) -> None:
        self._csr = csr
        self.directed = bool(csr.directed)
        self.deltas: dict = {}

    def __len__(self) -> int:
        return len(self._csr.node_ids)

    def __contains__(self, node) -> bool:
        return node in self._csr.index_of

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the mapped snapshot."""
        return len(self._csr.node_ids)

    def nodes(self):
        """Iterate node ids in the source network's insertion order."""
        return iter(self._csr.node_ids)

    def position(self, node) -> Point:
        """Coordinates of ``node`` (for per-cell CSR snapshots)."""
        csr = self._csr
        i = csr.index_of[node]
        return Point(csr.xs[i], csr.ys[i])

    def neighbors(self, node) -> dict:
        """Out-adjacency of ``node`` in original insertion order."""
        csr = self._csr
        i = csr.index_of[node]
        ids = csr.node_ids
        targets = csr.targets
        weights = csr.weights
        deltas = self.deltas
        out = {}
        for e in range(csr.offsets[i], csr.offsets[i + 1]):
            v = ids[targets[e]]
            w = deltas.get((node, v))
            out[v] = weights[e] if w is None else w
        return out


#: per-worker attachment cache: spec *kind* -> (spec, attached state).
#: One generation per kind — a new spec of the same kind replaces only
#: that kind's mappings, so a nested overlay's alternating cell/super
#: passes never evict each other's graph+layout mappings (the whole
#: point of mapping once per pool lifetime).
_ATTACHED: dict = {}


def _attach_cells(spec: tuple):
    """Attach (mmap) the graph + layout blobs named by ``spec``, cached."""
    cached = _ATTACHED.get(spec[0])
    if cached is not None and cached[0] == spec:
        return cached[1]
    from repro.service.blob import read_blob, read_csr_blob

    graph_path, layout_path = spec[1], spec[2]
    net = _BlobNetwork(read_csr_blob(graph_path))
    layout = read_blob(layout_path)
    s = layout.sections
    part = _BlobPartition(
        _LazyRows(s["cell_offsets"], s["cell_nodes"]),
        _LazyRows(s["bnd_offsets"], s["bnd_nodes"]),
    )
    state = (net, part)
    _ATTACHED[spec[0]] = (spec, state)
    return state


def _encode_clique(clique: dict) -> tuple:
    """Flatten one cell's clique into compact typed arrays.

    Path order is the deterministic serialization order (boundary node,
    then kept-arc insertion order), so decoding reproduces the serial
    build's dict ordering — endpoints are recovered from the paths
    themselves (``nodes[0]``/``nodes[-1]``).
    """
    dists = array("d")
    offsets = array("q", [0])
    nodes = array("q")
    for kept in clique.values():
        for p in kept.values():
            dists.append(p.distance)
            nodes.extend(p.nodes)
            offsets.append(len(nodes))
    return dists, offsets, nodes


def _decode_clique(boundary: Sequence, encoded: tuple) -> dict:
    """Rebuild a clique dict from :func:`_encode_clique` arrays."""
    dists, offsets, nodes = encoded
    clique: dict = {b: {} for b in boundary}
    for p in range(len(dists)):
        path_nodes = tuple(nodes[offsets[p]:offsets[p + 1]])
        b, b2 = path_nodes[0], path_nodes[-1]
        clique[b][b2] = PathResult(
            source=b, destination=b2, nodes=path_nodes, distance=dists[p]
        )
    return clique


def _stats_tuple(stats: SearchStats) -> tuple:
    """The order-independent counters a worker ships back."""
    return (
        stats.settled_nodes,
        stats.relaxed_edges,
        stats.heap_pushes,
        stats.max_settled_distance,
    )


def _merge_stats(stats: SearchStats, shipped: tuple) -> None:
    """Accumulate a worker's counters (sums and max commute)."""
    stats.settled_nodes += shipped[0]
    stats.relaxed_edges += shipped[1]
    stats.heap_pushes += shipped[2]
    if shipped[3] > stats.max_settled_distance:
        stats.max_settled_distance = shipped[3]


def _customize_cells_task(
    spec: tuple, kernel: str, cells: Sequence[int], deltas: dict
) -> tuple:
    """Worker entry point: customize a chunk of cells from the blobs."""
    from repro.search.overlay import OverlayGraph

    net, part = _attach_cells(spec)
    net.deltas = deltas
    stats = SearchStats()
    out = []
    for cell in cells:
        fcsr = None
        if kernel == "csr":
            fcsr, _rcsr = OverlayGraph._cell_graphs(net, part, cell, kernel)
        out.append(
            (cell, _encode_clique(
                OverlayGraph._customize_cell(net, part, cell, kernel, fcsr, stats)
            ))
        )
    return out, _stats_tuple(stats)


def _attach_super(spec: tuple):
    """Attach the level-1 overlay blob named by ``spec``, cached."""
    cached = _ATTACHED.get(spec[0])
    if cached is not None and cached[0] == spec:
        return cached[1]
    from repro.service.blob import read_blob

    blob = read_blob(spec[1])
    s = blob.sections
    state = (
        s["over_offsets"], s["over_targets"],
        s["over_weights"], s["over_kinds"],
        _LazyRows(s["mem_offsets"], s["mem_nodes"]),
        _LazyRows(s["sb_offsets"], s["sb_nodes"]),
    )
    _ATTACHED[spec[0]] = (spec, state)
    return state


def _encode_super(clique: dict) -> tuple:
    """Flatten one supercell clique (distances, chains, via kinds)."""
    dists = array("d")
    offsets = array("q", [0])
    chains = array("q")
    kinds = array("q")
    for kept in clique.values():
        for arc in kept.values():
            dists.append(arc.distance)
            chains.extend(arc.chain)
            kinds.extend(arc.kinds)
            offsets.append(len(chains))
    return dists, offsets, chains, kinds


def _decode_super(sboundary: Sequence, encoded: tuple) -> dict:
    """Rebuild a supercell clique from :func:`_encode_super` arrays."""
    from repro.search.overlay import _SuperArc

    dists, offsets, chains, kinds = encoded
    clique: dict = {b: {} for b in sboundary}
    for p in range(len(dists)):
        chain = tuple(chains[offsets[p]:offsets[p + 1]])
        # each arc carries len(chain) - 1 via kinds, so after p arcs the
        # kinds array holds offsets[p] - p items — shift the run bounds
        krun = tuple(kinds[offsets[p] - p:offsets[p + 1] - p - 1])
        clique[chain[0]][chain[-1]] = _SuperArc(dists[p], chain, krun)
    return clique


def _customize_super_task(spec: tuple, supercells: Sequence[int]) -> tuple:
    """Worker entry point: supercell cliques over the mapped level-1 arcs."""
    from repro.search.overlay import _super_customize

    offsets, targets, weights, kinds, members, sboundary = _attach_super(spec)
    stats = SearchStats()
    out = []
    for sc in supercells:
        out.append(
            (sc, _encode_super(_super_customize(
                offsets, targets, weights, kinds,
                members[sc], sboundary[sc], stats,
            )))
        )
    return out, _stats_tuple(stats)


def _warm_task() -> int:
    """No-op used to force worker processes to exist (pool warm-up)."""
    return os.getpid()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ParallelCustomizer:
    """A persistent worker pool that customizes overlay cells in parallel.

    One instance owns one process pool and one spill directory for the
    lifetime of a serving stack (or a single build, when used
    transiently via ``OverlayGraph.build(..., parallel=N)``).  See the
    module docstring for the handoff design; the contract callers rely
    on:

    * :meth:`customize` returns clique tables *byte-identical* (via
      ``dumps_overlay``) to the serial loop it replaces.
    * Sequential calls with ``changed_edges`` provided re-use the
      spilled blob (cumulative weight deltas); :attr:`spills` counts
      how often a fresh spill was actually needed.
    * ``changed_edges`` must cover every weight difference between the
      previously customized state and the target network — exactly the
      invariant :meth:`~repro.search.overlay.OverlayGraph.recustomized`
      already imposes on its callers.  Pass ``None`` to force a fresh
      spill (full builds do).

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    spill_dir:
        Directory for the blob files; defaults to a private temp
        directory removed on :meth:`close`.
    start_method:
        Multiprocessing start method; defaults to
        :func:`default_start_method` (``forkserver`` where available —
        safe alongside the serving stack's threads).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` for the
        ``repro_customize_*`` instrument family.
    tracer:
        Optional tracer; :meth:`customize` emits one
        ``customize.parallel`` span per call (counts only, no node ids).
    """

    def __init__(
        self,
        workers: int,
        spill_dir: str | os.PathLike[str] | None = None,
        start_method: str | None = None,
        metrics=None,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._start_method = start_method or default_start_method()
        self._tracer = tracer
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self._owns_dir = spill_dir is None
        if spill_dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-customize-")
        else:
            self._dir = os.fspath(spill_dir)
            os.makedirs(self._dir, exist_ok=True)
        # spill state: one graph blob generation + cumulative deltas
        self._generation = 0
        self._graph_spec: tuple | None = None
        self._graph_shape: tuple | None = None
        self._deltas: dict = {}
        self._stale = False
        self._layout_partition = None
        self._layout_path: str | None = None
        self._layout_seq = 0
        # health / throughput accounting
        self.spills = 0
        self.cells_customized = 0
        self.pool_warm_s: float | None = None
        self.last_cells_per_sec = 0.0
        self._metrics = metrics
        if metrics is not None:
            metrics.gauge(
                "repro_customize_workers",
                desc="configured parallel customization worker processes",
            ).set(self.workers)
            self._m_warm = metrics.gauge(
                "repro_customize_pool_warm_seconds",
                desc="wall seconds to start the customization worker pool",
            )
            self._m_cells = metrics.counter(
                "repro_customize_cells_total",
                desc="cells customized through the parallel pool",
            )
            self._m_spills = metrics.counter(
                "repro_customize_spills_total",
                desc="CSR blob spills (first use plus forced re-spills)",
            )
            self._m_rate = metrics.gauge(
                "repro_customize_cells_per_sec",
                desc="throughput of the most recent parallel customization",
            )
        else:
            self._m_warm = self._m_cells = self._m_spills = self._m_rate = None

    # -- pool lifecycle ------------------------------------------------
    def warm(self) -> float:
        """Start the worker pool now and return its warm-up seconds.

        Idempotent; later calls return the recorded first warm-up time.
        Useful to pay the fork/spawn cost at deploy time instead of
        inside the first re-weight window (the serving stack's
        ``warm()`` does this when a customizer is configured).
        """
        self._ensure_pool()
        return self.pool_warm_s or 0.0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The executor, started (and warmed) on first use."""
        if self._closed:
            raise RuntimeError("ParallelCustomizer is closed")
        if self._pool is None:
            t0 = time.perf_counter()
            ctx = multiprocessing.get_context(self._start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
            warmups = [self._pool.submit(_warm_task) for _ in range(self.workers)]
            for f in warmups:
                f.result()
            self.pool_warm_s = time.perf_counter() - t0
            if self._m_warm is not None:
                self._m_warm.set(self.pool_warm_s)
        return self._pool

    def close(self) -> None:
        """Shut the pool down and remove an owned spill directory."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owns_dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "ParallelCustomizer":
        """Enter a ``with`` block (no setup needed)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Leave a ``with`` block, shutting the pool down."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelCustomizer(workers={self.workers}, "
            f"start_method={self._start_method!r}, spills={self.spills})"
        )

    # -- spill management ----------------------------------------------
    def _network_shape(self, network) -> tuple:
        """The cheap invariants a reusable spill must match."""
        return (
            len(network),
            getattr(network, "num_edges", None),
            bool(getattr(network, "directed", False)),
        )

    def _spill_graph(self, network) -> None:
        """Write a fresh ``.csrb`` blob of ``network`` (new generation)."""
        from repro.network.csr import csr_snapshot
        from repro.service.blob import write_csr_blob

        self._generation += 1
        path = os.path.join(self._dir, f"graph-g{self._generation}.csrb")
        write_csr_blob(csr_snapshot(network), path)
        old = self._graph_spec
        self._graph_spec = ("cells", path, self._layout_path)
        self._graph_shape = self._network_shape(network)
        self._deltas = {}
        self._stale = False
        self.spills += 1
        if self._m_spills is not None:
            self._m_spills.inc()
        if old is not None and old[1] != path:
            # workers hold their own mappings; the parent can drop the
            # old generation's file immediately (POSIX unlink-on-open)
            try:
                os.unlink(old[1])
            except OSError:  # pragma: no cover - best effort cleanup
                pass

    def _spill_layout(self, partition) -> None:
        """Write the partition layout blob (cells + boundaries)."""
        from repro.service.blob import write_blob

        cell_offsets = array("q", [0])
        cell_nodes = array("q")
        bnd_offsets = array("q", [0])
        bnd_nodes = array("q")
        try:
            for members in partition.cells:
                cell_nodes.extend(members)
                cell_offsets.append(len(cell_nodes))
            for boundary in partition.boundary:
                bnd_nodes.extend(boundary)
                bnd_offsets.append(len(bnd_nodes))
        except (TypeError, OverflowError) as exc:
            raise GraphError(
                "parallel customization needs integer node ids"
            ) from exc
        # Sequence-numbered independently of the graph generation: a
        # layout can be respilled many times per graph blob (one pool
        # serving several partitions of one network), and reusing a
        # filename would make the unchanged spec tuple hit the workers'
        # attach cache and serve the previous layout.
        self._layout_seq += 1
        path = os.path.join(self._dir, f"layout-s{self._layout_seq}.blob")
        write_blob(path, {"kind": "overlay-layout"}, [
            ("cell_offsets", "q", cell_offsets),
            ("cell_nodes", "q", cell_nodes),
            ("bnd_offsets", "q", bnd_offsets),
            ("bnd_nodes", "q", bnd_nodes),
        ])
        old = self._layout_path
        self._layout_path = path
        self._layout_partition = partition
        if old is not None and old != path:
            try:
                os.unlink(old)
            except OSError:  # pragma: no cover - best effort cleanup
                pass

    def _absorb(self, network, changed_edges) -> bool:
        """Fold ``changed_edges`` into the cumulative delta map.

        Returns ``False`` when the current spill cannot be kept — no
        spill yet, the caller could not name its changes, the network
        shape moved, a named edge does not exist on the target network
        (add+remove churn can slip past the cheap shape check), or the
        map outgrew its budget (a delta map rivaling the arc count costs
        every task more than a re-spill saves).

        Contract: ``changed_edges`` must name every weight that differs
        between the state this pool last saw (spill or absorb) and
        ``network`` — the guarantee :meth:`ServingStack.reweight
        <repro.service.serving.ServingStack.reweight>` provides along
        its snapshot chain.  A pool is therefore tied to one *logical*
        network; aim it at an unrelated network of coincidentally
        identical shape and the stale deltas silently corrupt worker
        weights.  Callers that cannot uphold the contract must pass
        ``changed_edges=None`` (full re-spill) or use a fresh pool.
        """
        if (
            self._graph_spec is None
            or changed_edges is None
            or self._graph_shape != self._network_shape(network)
        ):
            return False
        directed = bool(getattr(network, "directed", False))
        deltas = self._deltas
        for edge in changed_edges:
            u, v = edge[0], edge[1]
            try:
                w = network.neighbors(u)[v]
            except (KeyError, UnknownNodeError):
                # The edge is gone: the graph structurally changed, so
                # the spill (and any deltas folded so far — the caller
                # re-spills, which resets the map) cannot be kept.
                return False
            deltas[(u, v)] = w
            if not directed:
                deltas[(v, u)] = w
        return len(deltas) <= max(4096, len(network) // 2)

    def note_changes(self, network, changed_edges) -> None:
        """Record weight changes handled *outside* the pool.

        Serial fallbacks (single-cell refreshes, tiny builds) mutate the
        network without going through :meth:`customize`; this keeps the
        cumulative delta map coherent so the next pooled call still
        re-uses the spilled blob.  ``changed_edges=None`` (or any
        absorption failure) marks the spill stale, forcing a re-spill on
        the next pooled call instead of serving wrong weights.
        """
        if self._graph_spec is None:
            return  # nothing spilled yet; first customize() spills fresh
        if not self._absorb(network, changed_edges):
            self._stale = True

    def _prepare(self, network, partition, changed_edges) -> tuple:
        """Ensure blobs match the target network; return the task spec."""
        if self._layout_partition is not partition:
            self._spill_layout(partition)
            # a new partition invalidates the spec (it names the layout)
            if self._graph_spec is not None:
                self._graph_spec = (
                    "cells", self._graph_spec[1], self._layout_path
                )
        if self._stale or not self._absorb(network, changed_edges):
            self._spill_graph(network)
        return self._graph_spec

    # -- customization -------------------------------------------------
    def _chunks(self, cells: list) -> list:
        """Split the work list into per-task chunks (4 per worker)."""
        n = len(cells)
        size = max(1, -(-n // (self.workers * 4)))
        return [cells[i:i + size] for i in range(0, n, size)]

    def customize(
        self,
        network,
        partition,
        kernel: str,
        cells: Iterable[int],
        stats: SearchStats,
        changed_edges=None,
    ) -> dict:
        """Compute the given cells' cliques on the pool.

        Returns ``{cell: clique}`` with tables byte-identical to the
        serial ``_customize_cell`` loop, and accumulates the workers'
        search counters into ``stats`` (sums and max — order
        independent, so the totals equal the serial loop's).

        Raises
        ------
        GraphError
            For non-integer node ids (the blob restriction every
            persistent format in this package shares).
        """
        work = sorted(cells)
        if not work:
            return {}
        if self._tracer is not None:
            with self._tracer.span(
                "customize.parallel", cells=len(work), workers=self.workers
            ) as span:
                return self._run_cells(
                    network, partition, kernel, work, stats,
                    changed_edges, span,
                )
        return self._run_cells(
            network, partition, kernel, work, stats, changed_edges, None
        )

    def _run_cells(
        self, network, partition, kernel, work, stats, changed_edges, span
    ) -> dict:
        """Dispatch one prepared cell batch and reassemble the cliques."""
        pool = self._ensure_pool()
        t0 = time.perf_counter()
        spec = self._prepare(network, partition, changed_edges)
        deltas = dict(self._deltas)
        futures = [
            pool.submit(_customize_cells_task, spec, kernel, chunk, deltas)
            for chunk in self._chunks(work)
        ]
        out: dict = {}
        for future in futures:
            encoded, shipped = future.result()
            for cell, enc in encoded:
                out[cell] = _decode_clique(partition.boundary[cell], enc)
            _merge_stats(stats, shipped)
        elapsed = time.perf_counter() - t0
        self.cells_customized += len(work)
        self.last_cells_per_sec = len(work) / elapsed if elapsed > 0 else 0.0
        if self._m_cells is not None:
            self._m_cells.inc(len(work))
            self._m_rate.set(self.last_cells_per_sec)
        if span is not None:
            span.set("cells_per_sec", round(self.last_cells_per_sec, 3))
            span.set("spills", self.spills)
        return out

    def customize_super(
        self,
        level1: tuple,
        members: Sequence[Sequence[int]],
        sboundary: Sequence[Sequence[int]],
        supercells: Iterable[int],
        stats: SearchStats,
    ) -> dict:
        """Compute supercell cliques on the pool (nested overlay pass).

        ``level1`` is the ``(offsets, targets, weights, kinds)`` overlay
        adjacency; it is spilled per call (the weights change with every
        rebuild, and the arrays are small next to the graph blob).
        Returns ``{supercell: clique}`` matching
        :func:`~repro.search.overlay._super_customize` exactly.
        """
        from repro.service.blob import write_blob

        work = sorted(supercells)
        if not work:
            return {}
        pool = self._ensure_pool()
        offsets, targets, weights, kinds = level1
        mem_offsets = array("q", [0])
        mem_nodes = array("q")
        for m in members:
            mem_nodes.extend(m)
            mem_offsets.append(len(mem_nodes))
        sb_offsets = array("q", [0])
        sb_nodes = array("q")
        for sb in sboundary:
            sb_nodes.extend(sb)
            sb_offsets.append(len(sb_nodes))
        self._generation += 1
        path = os.path.join(self._dir, f"super-g{self._generation}.blob")
        write_blob(path, {"kind": "overlay-level1"}, [
            ("over_offsets", "q", array("q", offsets)),
            ("over_targets", "q", array("q", targets)),
            ("over_weights", "d", array("d", weights)),
            ("over_kinds", "q", array("q", kinds)),
            ("mem_offsets", "q", mem_offsets),
            ("mem_nodes", "q", mem_nodes),
            ("sb_offsets", "q", sb_offsets),
            ("sb_nodes", "q", sb_nodes),
        ])
        spec = ("super", path)
        futures = [
            pool.submit(_customize_super_task, spec, chunk)
            for chunk in self._chunks(work)
        ]
        out: dict = {}
        for future in futures:
            encoded, shipped = future.result()
            for sc, enc in encoded:
                out[sc] = _decode_super(sboundary[sc], enc)
            _merge_stats(stats, shipped)
        try:
            os.unlink(path)  # workers keep their mappings alive
        except OSError:  # pragma: no cover - best effort cleanup
            pass
        return out
