"""Dijkstra's algorithm: point-to-point, multi-destination, and full SSSP.

The single-source multi-destination variant (:func:`dijkstra_to_many`) is
the primitive the paper's server-side processor builds on: "Dijkstra's
algorithm is extensible to search paths from a single source to multiple
destinations by forming a spanning tree until all the destinations are
reached" (Section III-B).  Its cost is bounded by the furthest destination,
which is exactly the quantity Lemma 1 sums over sources.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.graph import NodeId
from repro.search.heap import AddressableHeap
from repro.search.result import PathResult, SearchStats, reconstruct_path

__all__ = ["dijkstra_path", "dijkstra_to_many", "dijkstra_sssp"]


def _io_snapshot(network) -> tuple[int, int]:
    io = getattr(network, "io", None)
    if io is None:
        return 0, 0
    return io.page_faults, io.distinct_pages


def _io_delta(network, stats: SearchStats, before: tuple[int, int]) -> None:
    io = getattr(network, "io", None)
    if io is None:
        return
    stats.page_faults += io.page_faults - before[0]
    stats.pages_touched += io.distinct_pages - before[1]


def _check_node(network, node: NodeId) -> None:
    if node not in network:
        raise UnknownNodeError(node)


def dijkstra_path(
    network,
    source: NodeId,
    destination: NodeId,
    stats: SearchStats | None = None,
) -> PathResult:
    """Shortest path from ``source`` to ``destination``.

    Terminates as soon as the destination is settled (standard early exit).

    Parameters
    ----------
    network:
        Any object with the :class:`~repro.network.graph.RoadNetwork` read
        interface (including :class:`~repro.network.storage.PagedNetwork`).
    stats:
        Optional accumulator for cost counters.

    Raises
    ------
    NoPathError
        If the destination is unreachable.
    UnknownNodeError
        If either endpoint is missing from the network.
    """
    results = dijkstra_to_many(network, source, [destination], stats=stats)
    return results[destination]


def dijkstra_to_many(
    network,
    source: NodeId,
    destinations: Iterable[NodeId],
    stats: SearchStats | None = None,
    strict: bool = True,
) -> dict[NodeId, PathResult]:
    """Shortest paths from one source to several destinations (SSMD).

    Grows a single spanning tree from ``source`` and stops once every
    destination is settled, so the cost is ``O(max_t ||source, t||^2)`` on a
    planar network — the paper's key server-side optimization.

    Parameters
    ----------
    destinations:
        Target nodes; duplicates are tolerated.
    strict:
        When ``True`` (default) an unreachable destination raises
        :class:`NoPathError`; otherwise it is omitted from the result.

    Returns
    -------
    dict
        ``{destination: PathResult}`` with one entry per (reachable)
        destination.  The trivial path is returned when a destination
        equals the source.
    """
    _check_node(network, source)
    targets = set(destinations)
    for node in targets:
        _check_node(network, node)
    if stats is None:
        stats = SearchStats()
    io_before = _io_snapshot(network)

    results: dict[NodeId, PathResult] = {}
    remaining = set(targets)
    if source in remaining:
        results[source] = PathResult(source, source, (source,), 0.0)
        remaining.discard(source)

    distances: dict[NodeId, float] = {source: 0.0}
    predecessors: dict[NodeId, NodeId] = {}
    settled: set[NodeId] = set()
    heap: AddressableHeap[NodeId] = AddressableHeap()
    heap.push(source, 0.0)
    stats.heap_pushes += 1

    while heap and remaining:
        node, dist = heap.pop()
        settled.add(node)
        stats.settled_nodes += 1
        stats.max_settled_distance = max(stats.max_settled_distance, dist)
        if node in remaining:
            remaining.discard(node)
            results[node] = reconstruct_path(predecessors, source, node, dist)
            if not remaining:
                break
        for neighbor, weight in network.neighbors(node).items():
            if neighbor in settled:
                continue
            stats.relaxed_edges += 1
            candidate = dist + weight
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                if heap.push_or_decrease(neighbor, candidate):
                    stats.heap_pushes += 1

    _io_delta(network, stats, io_before)
    if strict and remaining:
        missing = next(iter(remaining))
        raise NoPathError(source, missing)
    return results


def dijkstra_sssp(
    network,
    source: NodeId,
    stats: SearchStats | None = None,
    max_distance: float | None = None,
) -> tuple[dict[NodeId, float], dict[NodeId, NodeId]]:
    """Full single-source shortest-path tree (optionally radius-bounded).

    Parameters
    ----------
    max_distance:
        When given, exploration stops at nodes beyond this distance; the
        returned maps cover the ball of that radius around ``source``.

    Returns
    -------
    (distances, predecessors)
        ``distances[n]`` is the shortest distance to each settled node;
        ``predecessors`` lets callers rebuild any path with
        :func:`repro.search.result.reconstruct_path`.
    """
    _check_node(network, source)
    if stats is None:
        stats = SearchStats()
    io_before = _io_snapshot(network)

    distances: dict[NodeId, float] = {source: 0.0}
    final: dict[NodeId, float] = {}
    predecessors: dict[NodeId, NodeId] = {}
    heap: AddressableHeap[NodeId] = AddressableHeap()
    heap.push(source, 0.0)
    stats.heap_pushes += 1

    while heap:
        node, dist = heap.pop()
        if max_distance is not None and dist > max_distance:
            break
        final[node] = dist
        stats.settled_nodes += 1
        stats.max_settled_distance = max(stats.max_settled_distance, dist)
        for neighbor, weight in network.neighbors(node).items():
            if neighbor in final:
                continue
            stats.relaxed_edges += 1
            candidate = dist + weight
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                if heap.push_or_decrease(neighbor, candidate):
                    stats.heap_pushes += 1

    _io_delta(network, stats, io_before)
    return final, predecessors
