"""Shortest-path search algorithms and the OPAQUE server-side processors.

Point-to-point searches (Dijkstra, A*, bidirectional Dijkstra, ALT,
Contraction Hierarchies), the single-source multi-destination (SSMD)
primitive the paper's server builds on, the multi-source multi-destination
(MSMD) processors that evaluate obfuscated path queries, and the Lemma 1
analytic cost model.

The :data:`ENGINES` registry is the one catalogue of interchangeable
search engines; the server, CLI and benchmarks all resolve engines through
:func:`get_engine` so a new engine only needs to be registered here.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.search.result import PathResult, SearchStats
from repro.search.dijkstra import (
    dijkstra_path,
    dijkstra_sssp,
    dijkstra_to_many,
)
from repro.search.astar import astar_path, euclidean_heuristic
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.multi import (
    MSMDResult,
    MultiSourceMultiDestProcessor,
    NaivePairwiseProcessor,
    SharedTreeProcessor,
    SideSelectingProcessor,
    UnionPassResult,
    get_processor,
)
from repro.search.cost_model import (
    lemma1_cost_estimate,
    point_query_cost_estimate,
)
from repro.search.alt import (
    ALTPairwiseProcessor,
    LandmarkIndex,
    alt_path,
    select_landmarks_farthest,
)
from repro.search.ch import (
    CHManyToManyProcessor,
    ContractedGraph,
    ch_path,
    contract_network,
)
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.partition import Partition, partition_network, partition_snapshot
from repro.search.overlay import (
    CSROverlayProcessor,
    NestedOverlayGraph,
    NestedOverlayProcessor,
    OverlayGraph,
    OverlayProcessor,
    build_nested_overlay,
    build_overlay,
    nested_overlay_snapshot,
    overlay_snapshot,
)
from repro.search.kernels import (
    CSRBidirectionalPairwiseProcessor,
    CSRCHManyToManyProcessor,
    CSRHierarchy,
    CSRSharedTreeProcessor,
    ch_csr_hierarchy,
    csr_bidirectional_path,
    csr_ch_path,
    csr_dijkstra_path,
    csr_dijkstra_to_many,
)
from repro.search.vectorized import (
    VecGraph,
    VecSharedTreeProcessor,
    numpy_available,
    vec_batch_paths,
    vec_dijkstra_path,
    vec_snapshot,
)

__all__ = [
    "PathResult",
    "SearchStats",
    "dijkstra_path",
    "dijkstra_sssp",
    "dijkstra_to_many",
    "astar_path",
    "euclidean_heuristic",
    "bidirectional_dijkstra_path",
    "MSMDResult",
    "UnionPassResult",
    "MultiSourceMultiDestProcessor",
    "NaivePairwiseProcessor",
    "SharedTreeProcessor",
    "SideSelectingProcessor",
    "get_processor",
    "lemma1_cost_estimate",
    "point_query_cost_estimate",
    "LandmarkIndex",
    "alt_path",
    "select_landmarks_farthest",
    "ALTPairwiseProcessor",
    "ContractedGraph",
    "contract_network",
    "ch_path",
    "CHManyToManyProcessor",
    "CSRGraph",
    "csr_snapshot",
    "CSRHierarchy",
    "ch_csr_hierarchy",
    "csr_dijkstra_path",
    "csr_dijkstra_to_many",
    "csr_bidirectional_path",
    "csr_ch_path",
    "CSRSharedTreeProcessor",
    "CSRBidirectionalPairwiseProcessor",
    "CSRCHManyToManyProcessor",
    "Partition",
    "partition_network",
    "partition_snapshot",
    "OverlayGraph",
    "build_overlay",
    "overlay_snapshot",
    "OverlayProcessor",
    "CSROverlayProcessor",
    "NestedOverlayGraph",
    "build_nested_overlay",
    "nested_overlay_snapshot",
    "NestedOverlayProcessor",
    "VecGraph",
    "VecSharedTreeProcessor",
    "numpy_available",
    "vec_batch_paths",
    "vec_dijkstra_path",
    "vec_snapshot",
    "SearchEngine",
    "ENGINES",
    "get_engine",
    "list_engines",
]


@dataclass(frozen=True)
class SearchEngine:
    """One interchangeable search engine.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--engine`` value).
    description:
        One-line summary for ``--help`` texts and reports.
    prepare:
        ``prepare(network) -> context`` builds the engine's preprocessing
        artifact (landmark index, contracted graph, ...), or ``None`` for
        engines that need none.  Build it once, reuse it across queries.
    route:
        ``route(network, source, destination, context=None, stats=None)``
        answers one point query as a :class:`PathResult`.  Engines that
        require preprocessing build it on the fly when ``context`` is
        omitted (convenient, but pays the build cost per call).
    make_processor:
        Factory for the MSMD processor that runs this engine's strategy
        on obfuscated batches (used by
        :class:`~repro.core.server.DirectionsServer`).  One engine
        cannot batch honestly: Euclidean A*'s heuristic is inadmissible
        on travel-time networks, so the ``astar`` engine answers batches
        with the paper's exact shared SSMD trees instead.
    """

    name: str
    description: str
    prepare: Callable[[Any], Any]
    route: Callable[..., PathResult]
    make_processor: Callable[[], MultiSourceMultiDestProcessor]


def _route_dijkstra(network, source, destination, context=None, stats=None):
    return dijkstra_path(network, source, destination, stats=stats)


def _route_astar(network, source, destination, context=None, stats=None):
    return astar_path(network, source, destination, stats=stats)


def _route_bidirectional(network, source, destination, context=None, stats=None):
    return bidirectional_dijkstra_path(network, source, destination, stats=stats)


def _route_alt(network, source, destination, context=None, stats=None):
    if context is None:
        context = LandmarkIndex(network)
    return alt_path(network, source, destination, context, stats=stats)


def _route_ch(network, source, destination, context=None, stats=None):
    if context is None:
        context = contract_network(network)
    return ch_path(context, source, destination, stats=stats)


def _route_dijkstra_csr(network, source, destination, context=None, stats=None):
    return csr_dijkstra_path(network, source, destination, csr=context, stats=stats)


def _route_bidirectional_csr(network, source, destination, context=None, stats=None):
    return csr_bidirectional_path(
        network, source, destination, csr=context, stats=stats
    )


def _route_ch_csr(network, source, destination, context=None, stats=None):
    if context is None:
        context = ch_csr_hierarchy(network)
    return csr_ch_path(context, source, destination, stats=stats)


def _prepare_overlay(network):
    return overlay_snapshot(network, kernel="dict")


def _prepare_overlay_csr(network):
    return overlay_snapshot(network, kernel="csr")


def _route_overlay(network, source, destination, context=None, stats=None):
    if context is None:
        context = overlay_snapshot(network, kernel="dict")
    return context.route(source, destination, stats=stats)


def _route_overlay_csr(network, source, destination, context=None, stats=None):
    if context is None:
        context = overlay_snapshot(network, kernel="csr")
    return context.route(source, destination, stats=stats)


def _prepare_overlay_nested(network):
    return nested_overlay_snapshot(network, kernel="csr")


def _route_overlay_nested(network, source, destination, context=None, stats=None):
    if context is None:
        context = nested_overlay_snapshot(network, kernel="csr")
    return context.route(source, destination, stats=stats)


def _route_dijkstra_vec(network, source, destination, context=None, stats=None):
    return vec_dijkstra_path(network, source, destination, vec=context, stats=stats)


#: every registered engine, keyed by name
ENGINES: dict[str, SearchEngine] = {
    engine.name: engine
    for engine in (
        SearchEngine(
            name="dijkstra",
            description="plain Dijkstra (shared SSMD trees for batches)",
            prepare=lambda network: None,
            route=_route_dijkstra,
            make_processor=SharedTreeProcessor,
        ),
        SearchEngine(
            name="astar",
            description=(
                "A* with the Euclidean heuristic "
                "(batches fall back to shared SSMD trees)"
            ),
            prepare=lambda network: None,
            route=_route_astar,
            make_processor=SharedTreeProcessor,
        ),
        SearchEngine(
            name="bidirectional",
            description="bidirectional Dijkstra per pair",
            prepare=lambda network: None,
            route=_route_bidirectional,
            make_processor=lambda: NaivePairwiseProcessor(engine="bidirectional"),
        ),
        SearchEngine(
            name="alt",
            description="A* with landmark lower bounds (preprocessed)",
            prepare=LandmarkIndex,
            route=_route_alt,
            make_processor=ALTPairwiseProcessor,
        ),
        SearchEngine(
            name="ch",
            description="Contraction Hierarchies (preprocessed, batch buckets)",
            prepare=contract_network,
            route=_route_ch,
            make_processor=CHManyToManyProcessor,
        ),
        SearchEngine(
            name="dijkstra-csr",
            description=(
                "Dijkstra on the flat CSR kernel "
                "(shared CSR SSMD trees for batches)"
            ),
            prepare=csr_snapshot,
            route=_route_dijkstra_csr,
            make_processor=CSRSharedTreeProcessor,
        ),
        SearchEngine(
            name="bidirectional-csr",
            description="bidirectional Dijkstra on the flat CSR kernel, per pair",
            prepare=csr_snapshot,
            route=_route_bidirectional_csr,
            make_processor=CSRBidirectionalPairwiseProcessor,
        ),
        SearchEngine(
            name="ch-csr",
            description=(
                "Contraction Hierarchies on flat CSR arrays "
                "(preprocessed, batch buckets)"
            ),
            prepare=ch_csr_hierarchy,
            route=_route_ch_csr,
            make_processor=CSRCHManyToManyProcessor,
        ),
        SearchEngine(
            name="overlay",
            description=(
                "partition + boundary-overlay two-phase queries "
                "(CRP-style; per-cell recustomization)"
            ),
            prepare=_prepare_overlay,
            route=_route_overlay,
            make_processor=OverlayProcessor,
        ),
        SearchEngine(
            name="overlay-csr",
            description=(
                "partition overlay with flat per-cell CSR kernels "
                "(preprocessed, per-cell recustomization)"
            ),
            prepare=_prepare_overlay_csr,
            route=_route_overlay_csr,
            make_processor=CSROverlayProcessor,
        ),
        SearchEngine(
            name="overlay-nested",
            description=(
                "two-level nested partition overlay "
                "(boundary-of-boundary sweeps, per-supercell recustomization)"
            ),
            prepare=_prepare_overlay_nested,
            route=_route_overlay_nested,
            make_processor=NestedOverlayProcessor,
        ),
    )
}

# The numpy-vectorized tier registers only when numpy imports, so
# interpreters without numpy keep the exact engine catalogue above (and
# the conformance harness never parametrizes engines it cannot run).
if numpy_available():
    ENGINES["dijkstra-vec"] = SearchEngine(
        name="dijkstra-vec",
        description=(
            "numpy-vectorized batched SSMD frontier sweeps "
            "(2-D distance tables; requires numpy)"
        ),
        prepare=vec_snapshot,
        route=_route_dijkstra_vec,
        make_processor=VecSharedTreeProcessor,
    )


def get_engine(name: str) -> SearchEngine:
    """Look up a registered engine by name.

    Raises
    ------
    KeyError
        For unknown names; the message lists the valid ones.
    """
    try:
        return ENGINES[name]
    except KeyError:
        valid = ", ".join(sorted(ENGINES))
        raise KeyError(f"unknown engine {name!r}; valid: {valid}") from None


def list_engines() -> list[str]:
    """Registered engine names, sorted."""
    return sorted(ENGINES)
