"""Shortest-path search algorithms and the OPAQUE server-side processors.

Point-to-point searches (Dijkstra, A*, bidirectional Dijkstra), the
single-source multi-destination (SSMD) primitive the paper's server builds
on, the multi-source multi-destination (MSMD) processors that evaluate
obfuscated path queries, and the Lemma 1 analytic cost model.
"""

from repro.search.result import PathResult, SearchStats
from repro.search.dijkstra import (
    dijkstra_path,
    dijkstra_sssp,
    dijkstra_to_many,
)
from repro.search.astar import astar_path, euclidean_heuristic
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.multi import (
    MSMDResult,
    MultiSourceMultiDestProcessor,
    NaivePairwiseProcessor,
    SharedTreeProcessor,
    SideSelectingProcessor,
    get_processor,
)
from repro.search.cost_model import (
    lemma1_cost_estimate,
    point_query_cost_estimate,
)
from repro.search.alt import LandmarkIndex, alt_path, select_landmarks_farthest

__all__ = [
    "PathResult",
    "SearchStats",
    "dijkstra_path",
    "dijkstra_sssp",
    "dijkstra_to_many",
    "astar_path",
    "euclidean_heuristic",
    "bidirectional_dijkstra_path",
    "MSMDResult",
    "MultiSourceMultiDestProcessor",
    "NaivePairwiseProcessor",
    "SharedTreeProcessor",
    "SideSelectingProcessor",
    "get_processor",
    "lemma1_cost_estimate",
    "point_query_cost_estimate",
    "LandmarkIndex",
    "alt_path",
    "select_landmarks_farthest",
]
