"""A* point-to-point search with a Euclidean heuristic.

The paper cites A* [2] as one of the "well-known shortest path algorithms"
a directions server may run.  We provide it with a scaled Euclidean
heuristic: on networks whose weights are Euclidean lengths the scale is 1
and the heuristic is admissible; on travel-time networks (e.g.
:func:`repro.network.generators.tiger_like_network`) the caller passes the
best speed so the heuristic stays a lower bound.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.graph import NodeId
from repro.search.heap import AddressableHeap
from repro.search.result import PathResult, SearchStats, reconstruct_path

__all__ = ["astar_path", "euclidean_heuristic", "zero_heuristic"]

Heuristic = Callable[[NodeId], float]


def euclidean_heuristic(network, destination: NodeId, scale: float = 1.0) -> Heuristic:
    """Heuristic ``h(n) = scale * euclid(n, destination)``.

    ``scale`` must satisfy ``weight(u, v) >= scale * euclid(u, v)`` on every
    edge for admissibility.  Use ``scale = 1 / max_speed`` on travel-time
    networks whose fastest roads cover ``max_speed`` distance per cost unit.
    """
    if scale < 0:
        raise ValueError("heuristic scale must be non-negative")
    dest_point = network.position(destination)

    def heuristic(node: NodeId) -> float:
        return scale * network.position(node).distance_to(dest_point)

    return heuristic


def zero_heuristic(_node: NodeId) -> float:
    """Degenerate heuristic turning A* into Dijkstra (testing aid)."""
    return 0.0


def astar_path(
    network,
    source: NodeId,
    destination: NodeId,
    heuristic: Heuristic | None = None,
    stats: SearchStats | None = None,
) -> PathResult:
    """Shortest path from ``source`` to ``destination`` via A*.

    Parameters
    ----------
    heuristic:
        Callable mapping a node to a lower bound on its remaining distance.
        Defaults to the unit-scale Euclidean heuristic, which is admissible
        whenever edge weights are at least the Euclidean gap they span.
    stats:
        Optional cost accumulator (settled nodes, relaxations, page I/O
        when ``network`` is a :class:`~repro.network.storage.PagedNetwork`).

    Raises
    ------
    NoPathError
        If ``destination`` is unreachable from ``source``.
    """
    if source not in network:
        raise UnknownNodeError(source)
    if destination not in network:
        raise UnknownNodeError(destination)
    if stats is None:
        stats = SearchStats()
    if heuristic is None:
        heuristic = euclidean_heuristic(network, destination)
    io = getattr(network, "io", None)
    io_before = (io.page_faults, io.distinct_pages) if io is not None else (0, 0)

    if source == destination:
        return PathResult(source, destination, (source,), 0.0)

    g_score: dict[NodeId, float] = {source: 0.0}
    predecessors: dict[NodeId, NodeId] = {}
    settled: set[NodeId] = set()
    heap: AddressableHeap[NodeId] = AddressableHeap()
    heap.push(source, heuristic(source))
    stats.heap_pushes += 1

    result: PathResult | None = None
    while heap:
        node, _f = heap.pop()
        dist = g_score[node]
        settled.add(node)
        stats.settled_nodes += 1
        stats.max_settled_distance = max(stats.max_settled_distance, dist)
        if node == destination:
            result = reconstruct_path(predecessors, source, destination, dist)
            break
        for neighbor, weight in network.neighbors(node).items():
            if neighbor in settled:
                continue
            stats.relaxed_edges += 1
            candidate = dist + weight
            if candidate < g_score.get(neighbor, float("inf")):
                g_score[neighbor] = candidate
                predecessors[neighbor] = node
                if heap.push_or_decrease(neighbor, candidate + heuristic(neighbor)):
                    stats.heap_pushes += 1

    if io is not None:
        stats.page_faults += io.page_faults - io_before[0]
        stats.pages_touched += io.distinct_pages - io_before[1]
    if result is None:
        raise NoPathError(source, destination)
    return result
