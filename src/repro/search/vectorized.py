"""Numpy-vectorized batch kernels over :class:`~repro.network.csr.CSRGraph`.

The scalar kernels in :mod:`repro.search.kernels` pay CPython's
per-iteration interpreter cost on every relaxed arc.  This module trades
the label-setting heap for label-correcting *frontier waves* evaluated
as whole-array numpy operations: each iteration gathers the out-arcs of
every frontier node in one shot (CSR slice arithmetic), relaxes them
with a segment-minimum (``np.minimum.reduceat`` over target-sorted
candidates — the ``np.add.at`` family without its per-element dispatch
cost), and the nodes whose labels improved form the next frontier.

Batching is the point: the per-source sweeps of an MSMD batch (or of a
coalesced union pass) share one 2-D distance table of shape
``(num_sources, num_nodes)``, so every wave relaxes the union frontier
for all sources at once and the fixed per-iteration numpy overhead is
amortized across the whole batch.

Exactness
---------
With non-negative weights the frontier iteration converges to the least
fixpoint of ``dist[v] = min(dist[u] + w(u, v))`` under IEEE float64 —
the same equations Dijkstra's algorithm solves in settlement order — so
the converged distances are *bit-identical* to the scalar kernels', not
merely close.  Per-source truncation mirrors the shared-tree kernels: a
frontier entry whose label cannot improve any destination that source
still needs is dropped, and every node that ends below that bound is at
its final (Dijkstra) value, which keeps union-pass tables byte-identical
to solo evaluations.

Paths are reconstructed after convergence by walking the reverse
adjacency along exact label equalities (``dist[u] + w == dist[v]``),
which both terminates (each hop strictly decreases the label) and
reproduces the reported distance exactly.

numpy is optional for the package; when it is missing this module still
imports (so the engine registry can probe :func:`numpy_available`) and
every kernel raises ``ImportError`` instead.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from weakref import WeakKeyDictionary

from repro.exceptions import NoPathError
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.graph import NodeId
from repro.obs import record as _obs_record
from repro.search.multi import (
    MSMDResult,
    PreprocessingProcessor,
    UnionPassResult,
    _screen_union_queries,
    _slice_union_tables,
    _validate,
)
from repro.search.result import PathResult, SearchStats

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less interpreters
    np = None

__all__ = [
    "VecGraph",
    "VecSharedTreeProcessor",
    "numpy_available",
    "vec_batch_paths",
    "vec_dijkstra_path",
    "vec_snapshot",
]

_INF = float("inf")


def numpy_available() -> bool:
    """Whether numpy imported, i.e. whether the ``*-vec`` engines work."""
    return np is not None


def _require_numpy():
    if np is None:
        raise ImportError(
            "numpy is required for the vectorized (*-vec) search kernels"
        )
    return np


class VecGraph:
    """A :class:`CSRGraph` plus the ndarray views the batch kernels read.

    Thin and immutable: the read-only zero-copy views from
    :meth:`CSRGraph.as_numpy` (``offsets``/``targets``/``weights``) plus
    the precomputed out-degree array.  Path reconstruction goes through
    the wrapped snapshot's scalar reverse kernel view, so one artifact
    serves both phases.
    """

    __slots__ = ("csr", "offsets", "targets", "weights", "deg")

    def __init__(self, csr: CSRGraph) -> None:
        _require_numpy()
        views = csr.as_numpy()
        self.csr = csr
        self.offsets = views["offsets"]
        self.targets = views["targets"]
        self.weights = views["weights"]
        self.deg = np.diff(self.offsets)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the wrapped snapshot."""
        return self.csr.num_nodes

    def __contains__(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is part of the snapshot."""
        return node_id in self.csr.index_of

    def __repr__(self) -> str:
        return f"VecGraph({self.csr!r})"


# Per-network memo mirroring csr_snapshot: weak keys, version-stamped,
# and re-wrapped whenever the underlying CSR snapshot was rebuilt.
_VEC_SNAPSHOTS: "WeakKeyDictionary[object, tuple[int, VecGraph]]" = (
    WeakKeyDictionary()
)
_VEC_LOCK = threading.Lock()


def vec_snapshot(network) -> VecGraph:
    """The (memoized) :class:`VecGraph` of ``network``.

    Same memoization contract as
    :func:`~repro.network.csr.csr_snapshot`: one wrapper per network
    version, rebuilt transparently after any mutation.  Raises
    ``ImportError`` when numpy is missing.
    """
    _require_numpy()
    csr = csr_snapshot(network)
    version = getattr(network, "version", None)
    if version is None:
        return VecGraph(csr)
    with _VEC_LOCK:
        memo = _VEC_SNAPSHOTS.get(network)
    if memo is not None and memo[0] == version and memo[1].csr is csr:
        return memo[1]
    vec = VecGraph(csr)
    with _VEC_LOCK:
        _VEC_SNAPSHOTS[network] = (version, vec)
    return vec


def _sweep_tables(
    vec: VecGraph,
    src_idx: "np.ndarray",
    dest_idx_rows: list[list[int]] | None,
    stats: SearchStats,
):
    """Converge the batched frontier iteration; returns the dist table.

    ``dist`` has shape ``(len(src_idx), num_nodes)``; row ``i`` holds
    the (exact, Dijkstra-identical) distances from ``src_idx[i]`` to
    every node that row settled.  ``dest_idx_rows`` gives each row's
    needed destination indices for truncation (``None`` sweeps every
    row to the full fixpoint).
    """
    n = vec.num_nodes
    rows = len(src_idx)
    offsets, targets, weights, deg = (
        vec.offsets, vec.targets, vec.weights, vec.deg,
    )
    dist = np.full((rows, n), np.inf)
    flat = dist.ravel()  # writable view: entry (row, v) lives at row*n + v
    row_ids = np.arange(rows)
    dist[row_ids, src_idx] = 0.0
    # The frontier is a flat vector of (row, node) entries encoded as
    # row*n + node: every improved label is relaxed out on the very next
    # wave, so each wave's arrays are sized by the entries that actually
    # changed — no dense (rows, n) active plane and no cross-row waste
    # when the per-source wavefronts do not overlap.
    frontier = row_ids * n + src_idx
    dest_pad = None
    if dest_idx_rows is not None:
        width = max(1, max(len(d) for d in dest_idx_rows))
        dest_pad = np.empty((rows, width), dtype=np.int64)
        for i, dests in enumerate(dest_idx_rows):
            # A row with no needed destinations is capped at its own
            # source (label 0), so its frontier prunes immediately.
            pad = dests[0] if dests else int(src_idx[i])
            dest_pad[i, : len(dests)] = dests
            dest_pad[i, len(dests):] = pad
    settled = relaxed = 0
    pushes = rows
    maxd = 0.0
    while frontier.size:
        f_node = frontier % n
        entry_vals = flat[frontier]
        settled += int(frontier.size)
        wave_max = float(entry_vals.max())
        if wave_max > maxd:
            maxd = wave_max
        d_e = deg[f_node]
        total = int(d_e.sum())
        relaxed += total
        if total == 0:
            break
        # Flatten the CSR slices of every frontier entry into one edge
        # list: e_idx[k] walks offsets[u]..offsets[u]+deg[u] per entry.
        prefix = np.concatenate(([0], np.cumsum(d_e)[:-1]))
        e_idx = np.repeat(offsets[f_node] - prefix, d_e) + np.arange(total)
        cand = np.repeat(entry_vals, d_e) + weights[e_idx]
        key = np.repeat(frontier - f_node, d_e) + targets[e_idx]
        # Segment-min per distinct (row, target) key (duplicates arise
        # when two frontier nodes share a neighbor), one scatter a wave.
        order = np.argsort(key, kind="stable")
        ksorted = key[order]
        bounds = np.nonzero(
            np.concatenate(([True], ksorted[1:] != ksorted[:-1]))
        )[0]
        uniq = ksorted[bounds]
        mins = np.minimum.reduceat(cand[order], bounds)
        imp = mins < flat[uniq]
        if not imp.any():
            break
        improved = uniq[imp]
        better = mins[imp]
        flat[improved] = better
        pushes += int(improved.size)
        if dest_pad is not None:
            # Truncation: an improved label re-enters the frontier only
            # if it could still improve a destination its row needs
            # (the bound only shrinks, so dropped entries stay useless).
            caps = dist[row_ids[:, None], dest_pad].max(axis=1)
            improved = improved[better < caps[improved // n]]
        frontier = improved
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("vec_sweep", settled, relaxed, pushes)
    return dist


def _walk_back(
    csr: CSRGraph, dist_row: list, s_idx: int, t_idx: int
) -> PathResult:
    """Reconstruct one tree path from the converged labels.

    Follows exact label equalities backward through the reverse
    adjacency; every equality hop has ``dist[u] <= dist[v]`` with
    strict decrease preferred, so the walk terminates and the node
    sequence's weight sum reproduces ``dist[t]`` bit-for-bit.
    """
    node_ids = csr.node_ids
    if s_idx == t_idx:
        return _trivial(node_ids[s_idx])
    roffsets, rtargets, rweights = csr.reverse_kernel_view()
    sequence = [t_idx]
    v = t_idx
    hops = 0
    limit = csr.num_nodes
    while v != s_idx:
        dv = dist_row[v]
        parent = -1
        fallback = -1
        for e in range(roffsets[v], roffsets[v + 1]):
            u = rtargets[e]
            du = dist_row[u]
            if du + rweights[e] == dv:
                if du < dv:
                    parent = u
                    break
                if fallback < 0:
                    fallback = u  # zero-weight hop
        if parent < 0:
            parent = fallback
        hops += 1
        if parent < 0 or hops > limit:  # pragma: no cover - defensive
            raise NoPathError(node_ids[s_idx], node_ids[t_idx])
        sequence.append(parent)
        v = parent
    sequence.reverse()
    return PathResult(
        source=node_ids[s_idx],
        destination=node_ids[t_idx],
        nodes=tuple(node_ids[i] for i in sequence),
        distance=dist_row[t_idx],
    )


def _trivial(node: NodeId) -> PathResult:
    return PathResult(node, node, (node,), 0.0)


def vec_batch_paths(
    network,
    sources: Sequence[NodeId],
    destinations_per_source: Sequence[Iterable[NodeId]],
    vec: VecGraph | None = None,
    stats: SearchStats | None = None,
    strict: bool = True,
) -> list[dict[NodeId, PathResult]]:
    """All per-source SSMD trees of a batch in one 2-D frontier sweep.

    Row ``i`` of the result maps each destination in
    ``destinations_per_source[i]`` to its :class:`PathResult` from
    ``sources[i]``.  Distances and union-pass slicing semantics match
    :func:`repro.search.kernels.csr_dijkstra_to_many` exactly: with
    ``strict`` an unreachable destination raises
    :class:`~repro.exceptions.NoPathError`, otherwise it is omitted
    from its row.

    Raises
    ------
    ImportError
        When numpy is missing (use the scalar kernels instead).
    UnknownNodeError
        If any endpoint is missing from the network.
    """
    _require_numpy()
    if vec is None:
        vec = vec_snapshot(network)
    if stats is None:
        stats = SearchStats()
    csr = vec.csr
    src_idx = np.fromiter(
        (csr.index(s) for s in sources), dtype=np.int64, count=len(sources)
    )
    dest_ids_rows = [list(dests) for dests in destinations_per_source]
    dest_idx_rows = [
        [csr.index(t) for t in dests] for dests in dest_ids_rows
    ]
    if len(src_idx) == 0 or not any(dest_idx_rows):
        return [{} for _ in dest_idx_rows]
    dist = _sweep_tables(vec, src_idx, dest_idx_rows, stats)
    out: list[dict[NodeId, PathResult]] = []
    for i, dests in enumerate(dest_ids_rows):
        row = dist[i].tolist()
        s_idx = int(src_idx[i])
        paths: dict[NodeId, PathResult] = {}
        for t, t_idx in zip(dests, dest_idx_rows[i]):
            if row[t_idx] == _INF:
                if strict:
                    raise NoPathError(sources[i], t)
                continue
            paths[t] = _walk_back(csr, row, s_idx, t_idx)
        out.append(paths)
    return out


def vec_dijkstra_path(
    network,
    source: NodeId,
    destination: NodeId,
    vec: VecGraph | None = None,
    stats: SearchStats | None = None,
) -> PathResult:
    """Point-to-point query on the vectorized kernel.

    Same contract (and bit-identical distances) as
    :func:`repro.search.kernels.csr_dijkstra_path` — a one-row batch of
    :func:`vec_batch_paths` truncated at the single destination.
    """
    _require_numpy()
    if vec is None:
        vec = vec_snapshot(network)
    if source == destination:
        vec.csr.index(source)
        return _trivial(source)
    rows = vec_batch_paths(
        network, [source], [[destination]], vec=vec, stats=stats
    )
    return rows[0][destination]


class VecSharedTreeProcessor(PreprocessingProcessor):
    """The paper's shared SSMD trees on the batched numpy kernel.

    Registered as ``"dijkstra-vec"``: identical strategy, distances and
    union-pass slicing to
    :class:`~repro.search.kernels.CSRSharedTreeProcessor`, but every
    per-source tree of a batch (or of a coalesced union pass) grows
    inside one shared 2-D frontier sweep.
    """

    name = "dijkstra-vec"

    def _build(self, network) -> VecGraph:
        return vec_snapshot(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        """Grow every source's SSMD tree in one batched sweep."""
        _validate(sources, destinations)
        vec = self.artifact_for(network)
        result = MSMDResult()
        trees = vec_batch_paths(
            network,
            sources,
            [destinations] * len(sources),
            vec=vec,
            stats=result.stats,
        )
        for s, paths in zip(sources, trees):
            for t in destinations:
                result.paths[(s, t)] = paths[t]
        result.searches = len(sources)
        return result

    def process_union(self, network, set_queries) -> UnionPassResult:
        """One 2-D sweep over the distinct sources of all queries.

        The batched twin of
        :meth:`repro.search.kernels.CSRSharedTreeProcessor.process_union`:
        each distinct source's row is truncated at the union of the
        destinations any coalesced query needs from it, and the settled
        region — hence every sliced path — is bit-identical to a solo
        evaluation of that query.
        """
        vec = self.artifact_for(network)
        checked = _screen_union_queries(vec, set_queries)
        needed: dict[NodeId, dict[NodeId, None]] = {}
        for k, (sources, destinations) in enumerate(set_queries):
            if checked.errors[k] is not None:
                continue
            for s in sources:
                dests = needed.setdefault(s, {})
                for t in destinations:
                    dests[t] = None
        union_stats = SearchStats()
        trees: dict[NodeId, dict[NodeId, PathResult]] = {}
        if needed:
            rows = vec_batch_paths(
                network,
                list(needed),
                [list(dests) for dests in needed.values()],
                vec=vec,
                stats=union_stats,
                strict=False,
            )
            trees = dict(zip(needed, rows))
        return _slice_union_tables(
            set_queries,
            checked.errors,
            lambda s, t: trees[s].get(t),
            union_stats=union_stats,
            union_searches=len(needed),
            pairs_computed=sum(len(dests) for dests in needed.values()),
        )
