"""Search results and cost accounting.

Every search algorithm in this package returns :class:`PathResult` objects
and fills in a :class:`SearchStats`, which is the unit of measurement the
experiments use (settled nodes approximates computational cost; page faults
come from :class:`~repro.network.storage.PagedNetwork` when one is used).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.graph import NodeId

__all__ = ["SearchStats", "PathResult", "reconstruct_path"]


@dataclass(slots=True)
class SearchStats:
    """Cost counters for one search invocation.

    Attributes
    ----------
    settled_nodes:
        Nodes whose final distance was fixed (spanning-tree size; the
        paper's computational-cost proxy).
    relaxed_edges:
        Edge relaxations attempted.
    heap_pushes:
        Priority-queue insertions.
    page_faults:
        Physical page reads, when the search ran over a
        :class:`~repro.network.storage.PagedNetwork` (else 0).
    pages_touched:
        Distinct pages accessed (ditto).
    max_settled_distance:
        Radius of the spanning tree — the paper bounds cost by the square
        of this quantity.
    """

    settled_nodes: int = 0
    relaxed_edges: int = 0
    heap_pushes: int = 0
    page_faults: int = 0
    pages_touched: int = 0
    max_settled_distance: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate ``other`` into this counter (for multi-search totals)."""
        self.settled_nodes += other.settled_nodes
        self.relaxed_edges += other.relaxed_edges
        self.heap_pushes += other.heap_pushes
        self.page_faults += other.page_faults
        self.pages_touched += other.pages_touched
        self.max_settled_distance = max(
            self.max_settled_distance, other.max_settled_distance
        )

    def copy(self) -> "SearchStats":
        """Independent copy."""
        return SearchStats(
            settled_nodes=self.settled_nodes,
            relaxed_edges=self.relaxed_edges,
            heap_pushes=self.heap_pushes,
            page_faults=self.page_faults,
            pages_touched=self.pages_touched,
            max_settled_distance=self.max_settled_distance,
        )


@dataclass(frozen=True, slots=True)
class PathResult:
    """A shortest path and its total cost.

    Attributes
    ----------
    source, destination:
        Query endpoints.
    nodes:
        Node sequence from ``source`` to ``destination`` inclusive.
    distance:
        Sum of edge weights along ``nodes``.
    """

    source: NodeId
    destination: NodeId
    nodes: tuple[NodeId, ...]
    distance: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a path must contain at least one node")
        if self.nodes[0] != self.source or self.nodes[-1] != self.destination:
            raise ValueError("path endpoints do not match source/destination")

    @property
    def num_edges(self) -> int:
        """Number of edges on the path."""
        return len(self.nodes) - 1

    def edges(self) -> list[tuple[NodeId, NodeId]]:
        """Edge list ``[(n0, n1), (n1, n2), ...]``."""
        return list(zip(self.nodes, self.nodes[1:]))

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(slots=True)
class _SearchTree:
    """Internal: predecessor tree shared by the Dijkstra variants."""

    predecessors: dict[NodeId, NodeId] = field(default_factory=dict)
    distances: dict[NodeId, float] = field(default_factory=dict)


def reconstruct_path(
    predecessors: dict[NodeId, NodeId],
    source: NodeId,
    destination: NodeId,
    distance: float,
) -> PathResult:
    """Build a :class:`PathResult` by walking ``predecessors`` backwards.

    ``predecessors`` maps each settled node to the node it was reached
    from; ``source`` must be reachable by that walk or ``KeyError`` surfaces
    (callers only invoke this after the destination was settled).
    """
    sequence = [destination]
    node = destination
    while node != source:
        node = predecessors[node]
        sequence.append(node)
    sequence.reverse()
    return PathResult(
        source=source,
        destination=destination,
        nodes=tuple(sequence),
        distance=distance,
    )
