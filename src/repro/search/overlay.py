"""Partition-overlay routing engine (CRP-style two-phase queries).

The monolithic engines (Dijkstra, CH, the CSR kernels) preprocess and
query the whole road network as a unit, so one weight change forces a
full rebuild and the serving stack has no axis to shard work on.  This
module adds the production answer: split the network into bounded-size
cells (:mod:`repro.network.partition`), precompute per-cell *clique
shortcuts* between each cell's boundary nodes, and answer queries in two
phases — local search inside the source and target cells, plus one
sweep over the much smaller boundary overlay
(:func:`repro.search.kernels.overlay_sweep`).

**Customization.**  A cell's clique depends only on the edges *inside*
that cell, so re-weighting an edge (traffic) invalidates exactly the
cell containing it: :meth:`OverlayGraph.recustomized` rebuilds only the
touched cells' cliques (sharing every other cell's tables with the old
overlay) — a per-cell re-customization instead of the full rebuild a CH
engine pays.  The partition itself never reads weights, so it survives
any re-weighting unchanged.

**Exactness.**  Any shortest path decomposes into a prefix inside the
source cell, cut edges, intra-cell segments between boundary nodes, and
a suffix inside the target cell.  The local phases cover prefix and
suffix exactly; clique arcs carry each cell's intra-cell
boundary-to-boundary shortest distances (arcs whose shortest path runs
through another boundary node of the same cell are pruned — the kept
arcs compose to the same distances, which keeps the overlay sparse);
cut arcs are the original edges.  Queries on the overlay therefore
return the same distances as plain Dijkstra, on directed and
disconnected networks alike, which the engine-conformance harness
checks for the registered ``"overlay"`` (dict cell searches) and
``"overlay-csr"`` (flat per-cell CSR kernels) engines.

**Goal direction.**  Customization checks once whether every edge
weight is at least its endpoints' straight-line distance
(:attr:`OverlayGraph.metric`).  When it is — true for distance-weighted
maps like the grid generators — every overlay arc and every local
offset inherits the bound, so the point-query sweep runs A* keyed by
``dist + straight-line-to-target``: an admissible, consistent lower
bound that settles a corridor instead of a disc with identical
distances.  On non-metric weights (travel times faster than geometry)
the flag is false and the sweep is the plain exact Dijkstra — which is
why the conformance harness holds these engines to arbitrary weights.

Overlays serialize to a text format (``dumps_overlay``/``read_overlay``)
so the serving layer's :class:`~repro.service.cache.PreprocessingCache`
can spill them to disk and reload them without re-customizing.
"""

from __future__ import annotations

import os
import threading
from collections import namedtuple
from hashlib import blake2b
from collections.abc import Iterable, Sequence
from heapq import heappop, heappush
from typing import TextIO
from weakref import WeakKeyDictionary

from repro.exceptions import GraphError, NoPathError
from repro.network.csr import CSRGraph
from repro.network.graph import NodeId
from repro.network.partition import (
    Partition,
    partition_adjacency,
    partition_snapshot,
)
from repro.obs import record as _obs_record
from repro.search.dijkstra import dijkstra_to_many
from repro.search.kernels import (
    csr_dijkstra_to_many,
    nested_overlay_sweep,
    overlay_sweep,
)
from repro.search.multi import MSMDResult, PreprocessingProcessor, _validate
from repro.search.result import PathResult, SearchStats

try:  # pragma: no cover - numpy-less interpreters skip the fast path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "OverlayGraph",
    "NestedOverlayGraph",
    "build_overlay",
    "build_nested_overlay",
    "overlay_snapshot",
    "nested_overlay_snapshot",
    "OverlayProcessor",
    "CSROverlayProcessor",
    "NestedOverlayProcessor",
    "write_overlay",
    "read_overlay",
    "dumps_overlay",
    "loads_overlay",
]

_INF = float("inf")
_KERNELS = ("dict", "csr")


class _CellView:
    """Induced-subgraph read view of one cell (no copying).

    Exposes the subset of the :class:`~repro.network.graph.RoadNetwork`
    read interface the Dijkstra variants and
    :meth:`~repro.network.csr.CSRGraph.from_network` use, restricted to
    the cell's members.  With ``reverse=True`` on a directed network the
    view serves the reversed intra-cell adjacency (for backward local
    searches); on undirected networks the reverse view is the view.
    """

    __slots__ = ("_network", "_order", "_members", "_radj")

    def __init__(self, network, members: Sequence[NodeId], reverse: bool = False):
        self._network = network
        self._order = tuple(members)
        self._members = frozenset(members)
        self._radj: dict[NodeId, dict[NodeId, float]] | None = None
        if reverse and getattr(network, "directed", False):
            radj: dict[NodeId, dict[NodeId, float]] = {
                node: {} for node in self._order
            }
            for u in self._order:
                for v, w in network.neighbors(u).items():
                    if v in self._members:
                        radj[v][u] = w
            self._radj = radj

    @property
    def directed(self) -> bool:
        """Directedness of the backing network."""
        return bool(getattr(self._network, "directed", False))

    @property
    def num_nodes(self) -> int:
        """Number of cell members."""
        return len(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._members

    def nodes(self):
        """Iterate the cell's members in partition order."""
        return iter(self._order)

    def position(self, node: NodeId):
        """Position of a member node (delegates to the backing network)."""
        return self._network.position(node)

    def neighbors(self, node: NodeId) -> dict[NodeId, float]:
        """Intra-cell adjacency of ``node`` (filtered per call)."""
        if self._radj is not None:
            return self._radj[node]
        return {
            v: w
            for v, w in self._network.neighbors(node).items()
            if v in self._members
        }


def _reversed_csr(csr: CSRGraph) -> CSRGraph:
    """A CSR snapshot whose forward arrays are ``csr``'s reverse arrays."""
    if not csr.directed:
        return csr
    return CSRGraph(
        node_ids=csr.node_ids,
        index_of=csr.index_of,
        offsets=csr.roffsets,
        targets=csr.rtargets,
        weights=csr.rweights,
        xs=csr.xs,
        ys=csr.ys,
        directed=True,
        roffsets=csr.offsets,
        rtargets=csr.targets,
        rweights=csr.weights,
    )


def _flip(path: PathResult) -> PathResult:
    """Reverse a path computed on a reversed adjacency."""
    return PathResult(
        source=path.destination,
        destination=path.source,
        nodes=tuple(reversed(path.nodes)),
        distance=path.distance,
    )


class OverlayGraph:
    """Per-cell boundary cliques plus the flat overlay adjacency.

    Build with :func:`build_overlay` (or the memoizing
    :func:`overlay_snapshot`); query with :meth:`route` /
    :meth:`many_to_many`; after re-weighting edges, refresh with
    :meth:`recustomized`, which recomputes only the touched cells.

    Attributes
    ----------
    network, partition:
        The backing network and its (weight-independent) partition.
    kernel:
        ``"dict"`` (reference cell searches over live views) or
        ``"csr"`` (flat per-cell CSR kernels — the fast path).
    cliques:
        ``cliques[c][b][b2]`` is the intra-cell shortest
        :class:`~repro.search.result.PathResult` from boundary node
        ``b`` to ``b2`` of cell ``c`` (pruned: pairs whose path runs
        through another boundary node of ``c`` are omitted and compose
        from the kept arcs instead).
    boundary_ids, boundary_index:
        Dense indexing of every boundary node (cell order, then
        partition order within the cell) used by the flat overlay
        arrays.
    over_offsets, over_targets, over_weights, over_kinds:
        CSR adjacency over boundary indices: clique arcs (kind = owning
        cell) and cut arcs (kind ``-1``, current network weight).
    customize_stats:
        Aggregate search cost of the clique computations this instance
        performed (a fresh build covers every cell; a
        :meth:`recustomized` copy only the touched ones).
    customized_cells:
        How many cells this instance customized itself.
    """

    __slots__ = (
        "__weakref__",
        "network",
        "partition",
        "kernel",
        "cliques",
        "_cell_csr",
        "_cell_rcsr",
        "boundary_ids",
        "boundary_index",
        "over_offsets",
        "over_targets",
        "over_weights",
        "over_kinds",
        "metric",
        "_bxs",
        "_bys",
        "customize_stats",
        "customized_cells",
        "_cell_sigs",
        "_customizer",
    )

    def __init__(
        self,
        network,
        partition: Partition,
        kernel: str,
        cliques: list[dict],
        cell_csr: list,
        cell_rcsr: list,
        customize_stats: SearchStats,
        customized_cells: int,
        metric: bool | None = None,
        _customizer=None,
    ) -> None:
        self.network = network
        self.partition = partition
        self.kernel = kernel
        self.cliques = cliques
        self._cell_csr = cell_csr
        self._cell_rcsr = cell_rcsr
        self.customize_stats = customize_stats
        self.customized_cells = customized_cells
        # Per-cell intra-cell weight fingerprints captured when the
        # cliques were computed; recustomized() skips cells whose
        # fingerprint still matches the target network (no-op cells).
        # Deserialized overlays start empty and recompute conservatively.
        self._cell_sigs: dict[int, bytes] = {}
        # Transient parallel-customization handle, only read during
        # construction (the nested subclass's supercell pass); cleared
        # immediately so an overlay never pins a worker pool.
        self._customizer = _customizer
        self._assemble(metric)
        self._customizer = None

    # ------------------------------------------------------------------
    # Construction / customization
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network,
        partition: Partition | None = None,
        cell_capacity: int | None = None,
        kernel: str = "dict",
        parallel: int | None = None,
        customizer=None,
        **extra,
    ) -> "OverlayGraph":
        """Partition (if needed) and customize every cell.

        ``extra`` keyword arguments pass through to the constructor, so
        subclasses with additional knobs (:class:`NestedOverlayGraph`'s
        ``super_capacity``) build through this same entry point.

        Parameters
        ----------
        parallel:
            Fan the per-cell clique computations out to this many worker
            processes via a transient
            :class:`~repro.search.parallel.ParallelCustomizer` (closed
            before returning).  The result is byte-identical
            (:func:`dumps_overlay`) to the serial build.  ``None`` or
            ``1`` keeps the serial loop.
        customizer:
            A caller-owned
            :class:`~repro.search.parallel.ParallelCustomizer` to use
            instead (kept open — the serving stack reuses one pool
            across re-weights).  Takes precedence over ``parallel``.

        Raises
        ------
        GraphError
            For an unknown ``kernel``, or (parallel path) non-integer
            node ids.
        """
        if kernel not in _KERNELS:
            raise GraphError(f"unknown overlay kernel {kernel!r}")
        if partition is None:
            partition = partition_snapshot(network, cell_capacity)
        owned = None
        if customizer is None and parallel is not None and int(parallel) > 1:
            from repro.search.parallel import ParallelCustomizer

            owned = customizer = ParallelCustomizer(int(parallel))
        try:
            stats = SearchStats()
            cliques: list[dict] = []
            cell_csr: list = []
            cell_rcsr: list = []
            computed = None
            if customizer is not None and partition.num_cells > 1:
                computed = customizer.customize(
                    network, partition, kernel, range(partition.num_cells),
                    stats, changed_edges=None,
                )
            elif customizer is not None:
                customizer.note_changes(network, None)
            for cell in range(partition.num_cells):
                fcsr, rcsr = cls._cell_graphs(network, partition, cell, kernel)
                cell_csr.append(fcsr)
                cell_rcsr.append(rcsr)
                if computed is not None:
                    cliques.append(computed[cell])
                else:
                    cliques.append(
                        cls._customize_cell(
                            network, partition, cell, kernel, fcsr, stats
                        )
                    )
            overlay = cls(
                network, partition, kernel, cliques, cell_csr, cell_rcsr,
                stats, partition.num_cells, _customizer=customizer, **extra,
            )
        finally:
            if owned is not None:
                owned.close()
        sigs = overlay._cell_sigs
        for cell, members in enumerate(partition.cells):
            sigs[cell] = _cell_signature(network, members)
        return overlay

    @staticmethod
    def _cell_graphs(network, partition: Partition, cell: int, kernel: str):
        """Per-cell CSR snapshots (forward, reversed) for the csr kernel."""
        if kernel != "csr":
            return None, None
        view = _CellView(network, partition.cells[cell])
        fcsr = CSRGraph.from_network(view)
        return fcsr, _reversed_csr(fcsr)

    @staticmethod
    def _customize_cell(
        network, partition: Partition, cell: int, kernel: str, fcsr, stats
    ) -> dict:
        """Compute one cell's pruned boundary clique.

        One truncated SSMD tree per boundary node, over the cell-induced
        subgraph only; a pair whose tree path runs through another
        boundary node of the cell (with strictly positive prefix and
        remainder) is pruned — the surviving arcs compose to the same
        distances, so the overlay stays exact while much sparser than a
        full clique.
        """
        boundary = partition.boundary[cell]
        bset = frozenset(boundary)
        view = None
        if kernel != "csr":
            view = _CellView(network, partition.cells[cell])
        clique: dict[NodeId, dict[NodeId, PathResult]] = {}
        for b in boundary:
            if kernel == "csr":
                trees = csr_dijkstra_to_many(
                    network, b, boundary, csr=fcsr, stats=stats, strict=False
                )
            else:
                trees = dijkstra_to_many(
                    view, b, boundary, stats=stats, strict=False
                )
            kept: dict[NodeId, PathResult] = {}
            for b2 in boundary:
                if b2 == b:
                    continue
                path = trees.get(b2)
                if path is None or _through_boundary(network, path, bset):
                    continue
                kept[b2] = path
            clique[b] = kept
        return clique

    def touched_cells(self, edges: Iterable[Sequence[NodeId]]) -> set[int]:
        """Cells whose cliques depend on the given edges.

        Cut edges (endpoints in different cells) touch no clique — their
        new weight only needs the flat arrays refreshed, which every
        :meth:`recustomized` call does.

        Parameters
        ----------
        edges:
            ``(u, v)`` or ``(u, v, weight)`` tuples.
        """
        touched: set[int] = set()
        for edge in edges:
            u, v = edge[0], edge[1]
            cu = self.partition.cell_index(u)
            cv = self.partition.cell_index(v)
            if cu == cv:
                touched.add(cu)
        return touched

    def recustomized(
        self,
        cells: Iterable[int] | None = None,
        changed_edges: Iterable[Sequence[NodeId]] | None = None,
        parallel: int | None = None,
        customizer=None,
    ) -> "OverlayGraph":
        """A new overlay with only the given cells' cliques recomputed.

        The headline incremental-customization path: after re-weighting
        edges, recompute the touched cells (see :meth:`touched_cells`)
        against the network's *current* weights and share every other
        cell's clique tables and CSR snapshots with this instance.  Cut
        arc weights are re-read from the network unconditionally.  The
        result is byte-identical (see :func:`dumps_overlay`) to a
        from-scratch :func:`build_overlay` on the re-weighted network.

        Parameters
        ----------
        cells:
            Cell indices to recustomize; ``None`` recustomizes all.
        changed_edges:
            The ``(u, v)`` / ``(u, v, weight)`` tuples the re-weight
            touched, when the caller knows them (e.g.
            :meth:`repro.service.serving.ServingStack.reweight`).  Lets
            a metric overlay refresh its :attr:`metric` flag by checking
            only those edges instead of rescanning the whole network —
            the scan that would otherwise dominate a single-cell
            refresh on a large map.  Omitted, or starting from a
            non-metric overlay (the flag could flip back on), the flag
            is recomputed from scratch.
        parallel, customizer:
            Parallel-customization knobs, exactly as on :meth:`build`;
            the touched cells' cliques are computed on the worker pool
            when more than one cell actually needs recomputing.

        Raises
        ------
        GraphError
            For an out-of-range cell index.
        """
        return self.recustomized_on(
            self.network, cells=cells, changed_edges=changed_edges,
            parallel=parallel, customizer=customizer,
        )

    def recustomized_on(
        self,
        network,
        cells: Iterable[int] | None = None,
        changed_edges: Iterable[Sequence[NodeId]] | None = None,
        parallel: int | None = None,
        customizer=None,
    ) -> "OverlayGraph":
        """:meth:`recustomized`, but binding the result to ``network``.

        The epoch-handoff entry point of the live traffic pipeline
        (:mod:`repro.service.pipeline`): ``network`` is a *snapshot* —
        a copy of :attr:`network` with the re-weights already applied —
        and the returned overlay reads every weight from that snapshot
        while this instance (and the network queries are still in
        flight against) stays untouched.  Correctness requires exactly
        what :meth:`recustomized` requires of an in-place mutation:
        every edge whose weight differs between the two networks is
        either a cut edge or lies inside one of ``cells``.  Untouched
        cells share their clique tables and per-cell CSR snapshots with
        this instance (their intra-cell weights are identical by the
        requirement above); cut-arc weights are re-read from
        ``network`` unconditionally.

        Raises
        ------
        GraphError
            For an out-of-range cell index, or a snapshot whose node
            set does not match the partition.
        """
        partition = self.partition
        if cells is None:
            touched = set(range(partition.num_cells))
        else:
            touched = set(cells)
            for cell in touched:
                if not 0 <= cell < partition.num_cells:
                    raise GraphError(f"unknown cell index {cell}")
        if network is not self.network and len(network) != partition.num_nodes:
            raise GraphError(
                "snapshot network does not match the partitioned node set"
            )
        stats = SearchStats()
        cliques = list(self.cliques)
        cell_csr = list(self._cell_csr)
        cell_rcsr = list(self._cell_rcsr)
        # No-op cell skip: a touched cell whose intra-cell weight
        # fingerprint is unchanged on the target network (e.g. a
        # re-weight that restored the previous value, or a wide batch
        # that only grazed the cell's cut edges) keeps its clique tables
        # and per-cell CSR snapshots — they are still exact for the new
        # weights by the fingerprint match.
        old_sigs = self._cell_sigs
        new_sigs = dict(old_sigs)
        work: list[int] = []
        for cell in sorted(touched):
            sig = _cell_signature(network, partition.cells[cell])
            if cell in old_sigs and old_sigs[cell] == sig:
                continue
            new_sigs[cell] = sig
            work.append(cell)
        owned = None
        if customizer is None and parallel is not None and int(parallel) > 1:
            from repro.search.parallel import ParallelCustomizer

            owned = customizer = ParallelCustomizer(int(parallel))
        try:
            use_pool = customizer is not None and len(work) > 1
            if customizer is not None and not use_pool:
                # Keep a persistent pool's cumulative delta map coherent
                # even when this refresh is handled serially.
                customizer.note_changes(network, changed_edges)
            for cell in work:
                fcsr, rcsr = self._cell_graphs(
                    network, partition, cell, self.kernel
                )
                cell_csr[cell] = fcsr
                cell_rcsr[cell] = rcsr
                if not use_pool:
                    cliques[cell] = self._customize_cell(
                        network, partition, cell, self.kernel, fcsr, stats
                    )
            if use_pool:
                computed = customizer.customize(
                    network, partition, self.kernel, work, stats,
                    changed_edges=changed_edges,
                )
                for cell in work:
                    cliques[cell] = computed[cell]
            metric: bool | None = None
            if changed_edges is not None and self.metric:
                metric = all(
                    _edge_is_metric(network, edge[0], edge[1])
                    for edge in changed_edges
                )
            result = self._rebuilt(
                network, cliques, cell_csr, cell_rcsr, stats, set(work),
                metric, changed_edges, customizer if use_pool else None,
            )
        finally:
            if owned is not None:
                owned.close()
        result._cell_sigs = new_sigs
        return result

    def _rebuilt(
        self, network, cliques, cell_csr, cell_rcsr, stats, touched,
        metric, changed_edges, customizer=None,
    ) -> "OverlayGraph":
        """Construct the recustomized copy (subclass hook).

        Subclasses carrying derived state (:class:`NestedOverlayGraph`'s
        supercell tables) override this to thread sharing information
        from ``touched``/``changed_edges`` into their constructor, and
        to fan an affected-supercell rebuild out to ``customizer``'s
        pool when one is live for this refresh.
        """
        return type(self)(
            network, self.partition, self.kernel, cliques, cell_csr,
            cell_rcsr, stats, len(touched), metric=metric,
        )

    def _assemble(self, metric: bool | None = None) -> None:
        """Freeze the boundary overlay into flat CSR arrays."""
        partition = self.partition
        network = self.network
        boundary_ids: list[NodeId] = []
        for cell_boundary in partition.boundary:
            boundary_ids.extend(cell_boundary)
        index = {b: i for i, b in enumerate(boundary_ids)}
        offsets = [0]
        targets: list[int] = []
        weights: list[float] = []
        kinds: list[int] = []
        cell_of = partition.cell_of
        for b in boundary_ids:
            cell = cell_of[b]
            for b2, path in self.cliques[cell][b].items():
                targets.append(index[b2])
                weights.append(path.distance)
                kinds.append(cell)
            for v, w in network.neighbors(b).items():
                if cell_of[v] != cell:
                    targets.append(index[v])
                    weights.append(w)
                    kinds.append(-1)
            offsets.append(len(targets))
        self.boundary_ids = tuple(boundary_ids)
        self.boundary_index = index
        self.over_offsets = offsets
        self.over_targets = targets
        self.over_weights = weights
        self.over_kinds = kinds
        self.metric = _network_is_metric(network) if metric is None else metric
        self._bxs = [network.position(b).x for b in boundary_ids]
        self._bys = [network.position(b).y for b in boundary_ids]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return self.partition.num_cells

    @property
    def num_boundary_nodes(self) -> int:
        """Nodes participating in the overlay."""
        return len(self.boundary_ids)

    @property
    def num_clique_arcs(self) -> int:
        """Kept clique shortcut arcs (after pruning)."""
        return sum(1 for kind in self.over_kinds if kind >= 0)

    @property
    def num_cut_arcs(self) -> int:
        """Cut arcs in the overlay (each stored arc direction counts)."""
        return sum(1 for kind in self.over_kinds if kind < 0)

    def __contains__(self, node: NodeId) -> bool:
        """Whether ``node`` belongs to the partitioned network."""
        return node in self.partition

    def __repr__(self) -> str:
        return (
            f"OverlayGraph(kernel={self.kernel!r}, cells={self.num_cells}, "
            f"boundary={self.num_boundary_nodes}, "
            f"clique_arcs={self.num_clique_arcs}, "
            f"cut_arcs={self.num_cut_arcs})"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _local_forward(
        self, cell: int, source: NodeId, extra: tuple, stats: SearchStats
    ) -> dict[NodeId, PathResult]:
        """Intra-cell paths from ``source`` to the cell's boundary (+extras)."""
        targets: list[NodeId] = list(self.partition.boundary[cell])
        targets.extend(extra)
        if self.kernel == "csr":
            return csr_dijkstra_to_many(
                self.network, source, targets,
                csr=self._cell_csr[cell], stats=stats, strict=False,
            )
        view = _CellView(self.network, self.partition.cells[cell])
        return dijkstra_to_many(view, source, targets, stats=stats, strict=False)

    def _local_backward(
        self, cell: int, destination: NodeId, stats: SearchStats
    ) -> dict[NodeId, PathResult]:
        """Intra-cell paths from the cell's boundary *to* ``destination``."""
        boundary = self.partition.boundary[cell]
        if self.kernel == "csr":
            trees = csr_dijkstra_to_many(
                self.network, destination, boundary,
                csr=self._cell_rcsr[cell], stats=stats, strict=False,
            )
        else:
            view = _CellView(
                self.network, self.partition.cells[cell], reverse=True
            )
            trees = dijkstra_to_many(
                view, destination, boundary, stats=stats, strict=False
            )
        return {b: _flip(path) for b, path in trees.items()}

    def route(
        self,
        source: NodeId,
        destination: NodeId,
        stats: SearchStats | None = None,
    ) -> PathResult:
        """Two-phase point query: local cells + one overlay sweep.

        Raises
        ------
        NoPathError
            If the destination is unreachable.
        UnknownNodeError
            If either endpoint is missing from the network.
        """
        if stats is None:
            stats = SearchStats()
        cs = self.partition.cell_index(source)
        ct = self.partition.cell_index(destination)
        if source == destination:
            return PathResult(source, source, (source,), 0.0)
        rec = _obs_record.RECORDER
        if rec is not None:
            rec.record("overlay_route", cells=(cs,) if ct == cs else (cs, ct))
        extra = (destination,) if ct == cs else ()
        fwd = self._local_forward(cs, source, extra, stats)
        bwd = self._local_backward(ct, destination, stats)
        direct = fwd.get(destination) if ct == cs else None
        index = self.boundary_index
        seeds = []
        for b in self.partition.boundary[cs]:
            path = fwd.get(b)
            if path is not None:
                seeds.append((index[b], path.distance))
        target_offsets = {index[b]: path.distance for b, path in bwd.items()}
        goal = None
        if self.metric:
            p = self.network.position(destination)
            goal = (p.x, p.y)
        best, meet, _dist, parent, via, _done = overlay_sweep(
            self.over_offsets, self.over_targets, self.over_weights,
            self.over_kinds, seeds,
            num_nodes=len(self.boundary_ids),
            target_offsets=target_offsets,
            best_bound=direct.distance if direct is not None else _INF,
            stats=stats,
            goal=goal,
            xs=self._bxs,
            ys=self._bys,
        )
        if meet < 0:
            if direct is not None:
                return direct
            raise NoPathError(source, destination)
        return self._stitch(source, destination, fwd, bwd, best, meet, parent, via)

    def many_to_many(
        self,
        sources: Sequence[NodeId],
        destinations: Sequence[NodeId],
        stats: SearchStats | None = None,
    ) -> dict[tuple[NodeId, NodeId], PathResult]:
        """All-pairs shortest paths over the overlay (MSMD primitive).

        One backward local search per destination, one forward local
        search plus one exhaustive overlay sweep per source; unreachable
        pairs are omitted (mirrors
        :func:`~repro.search.kernels.csr_ch_many_to_many`).
        """
        if stats is None:
            stats = SearchStats()
        partition = self.partition
        index = self.boundary_index
        src_cells = {s: partition.cell_index(s) for s in sources}
        dst_cells = {t: partition.cell_index(t) for t in destinations}
        rec = _obs_record.RECORDER
        if rec is not None:
            rec.record(
                "overlay_msmd",
                cells=set(src_cells.values()) | set(dst_cells.values()),
            )
        backs = {
            t: self._local_backward(dst_cells[t], t, stats)
            for t in destinations
        }
        results: dict[tuple[NodeId, NodeId], PathResult] = {}
        for s in sources:
            cs = src_cells[s]
            extra = tuple(t for t in destinations if dst_cells[t] == cs)
            fwd = self._local_forward(cs, s, extra, stats)
            seeds = []
            for b in partition.boundary[cs]:
                path = fwd.get(b)
                if path is not None:
                    seeds.append((index[b], path.distance))
            _best, _meet, dist, parent, via, done = overlay_sweep(
                self.over_offsets, self.over_targets, self.over_weights,
                self.over_kinds, seeds,
                num_nodes=len(self.boundary_ids),
                target_offsets=None,
                stats=stats,
            )
            for t in destinations:
                direct = fwd.get(t) if dst_cells[t] == cs else None
                best = direct.distance if direct is not None else _INF
                meet = -1
                bwd = backs[t]
                for b, tail in bwd.items():
                    bi = index[b]
                    if done[bi]:
                        candidate = float(dist[bi]) + tail.distance
                        if candidate < best:
                            best = candidate
                            meet = bi
                if meet >= 0:
                    results[(s, t)] = self._stitch(
                        s, t, fwd, bwd, best, meet, parent, via
                    )
                elif direct is not None:
                    results[(s, t)] = direct
        return results

    def _stitch(
        self, source, destination, fwd, bwd, best, meet, parent, via
    ) -> PathResult:
        """Expand an overlay tree chain into a full node path."""
        ids = self.boundary_ids
        chain = [meet]
        node = meet
        while parent[node] >= 0:
            node = parent[node]
            chain.append(node)
        chain.reverse()
        nodes = list(fwd[ids[chain[0]]].nodes)
        for prev, curr in zip(chain, chain[1:]):
            kind = via[curr]
            if kind < 0:  # cut arc: a real edge
                nodes.append(ids[curr])
            else:  # clique arc: splice the stored intra-cell path
                nodes.extend(self.cliques[kind][ids[prev]][ids[curr]].nodes[1:])
        nodes.extend(bwd[ids[meet]].nodes[1:])
        return PathResult(
            source=source,
            destination=destination,
            nodes=tuple(nodes),
            distance=best,
        )


def _edge_is_metric(network, u: NodeId, v: NodeId) -> bool:
    """Whether edge ``(u, v)``'s current weight is >= its Euclidean length."""
    w = network.neighbors(u)[v]
    gap = network.position(u).distance_to(network.position(v))
    return w >= gap - 1e-12 * (1.0 + gap)


def _network_is_metric(network) -> bool:
    """Whether every edge weight is >= its endpoints' Euclidean distance.

    The admissibility precondition of the goal-directed overlay sweep;
    networks without an ``edges()`` view conservatively report
    ``False`` (the sweep then stays plain exact Dijkstra).
    """
    edges = getattr(network, "edges", None)
    if edges is None:
        return False
    for u, v, w in edges():
        p = network.position(u)
        q = network.position(v)
        gap = p.distance_to(q)
        if w < gap - 1e-12 * (1.0 + gap):
            return False
    return True


def _through_boundary(network, path: PathResult, bset: frozenset) -> bool:
    """Whether an intra-cell path crosses another boundary node.

    True when some strict intermediate of ``path`` is a boundary node
    with strictly positive prefix *and* remainder — the witness
    condition that makes pruning the arc safe (the two halves are
    strictly shorter boundary pairs, so kept arcs compose to the same
    distance).
    """
    nodes = path.nodes
    if len(nodes) < 3:
        return False
    total = path.distance
    prefix = 0.0
    for i in range(1, len(nodes) - 1):
        prefix += network.neighbors(nodes[i - 1])[nodes[i]]
        if nodes[i] in bset and 0.0 < prefix < total:
            return True
    return False


def _cell_signature(network, members: Sequence[NodeId]) -> bytes:
    """Order-sensitive fingerprint of a cell's intra-cell arc weights.

    Digests the ``(u, v, w)`` triples in member order and adjacency
    insertion order — exactly the arcs a cell's clique depends on (cut
    arcs are excluded; their weights live only in the flat overlay
    arrays, which every refresh re-reads).  :meth:`OverlayGraph
    .recustomized` compares fingerprints captured at customization time
    against the target network to skip no-op cells.  A collision would
    wrongly skip a cell and silently serve stale distances, so this is
    a 128-bit ``blake2b`` over the exact ``repr`` of the arc list (ids
    and shortest-roundtrip float text are unambiguous) rather than
    Python's 64-bit ``hash()``, whose structured collisions on numeric
    tuples would turn a performance shortcut into a correctness bet.
    Deserialized overlays carry no fingerprints and always recompute.
    """
    mset = frozenset(members)
    arcs = []
    for u in members:
        for v, w in network.neighbors(u).items():
            if v in mset:
                arcs.append((u, v, w))
    return blake2b(repr(arcs).encode(), digest_size=16).digest()


def build_overlay(
    network,
    partition: Partition | None = None,
    cell_capacity: int | None = None,
    kernel: str = "dict",
    parallel: int | None = None,
    customizer=None,
) -> OverlayGraph:
    """Partition ``network`` (unless given) and customize every cell.

    See :class:`OverlayGraph`; this is the non-memoized entry point.
    ``parallel``/``customizer`` fan the per-cell clique work out to a
    worker pool (see :meth:`OverlayGraph.build`).
    """
    return OverlayGraph.build(
        network, partition=partition, cell_capacity=cell_capacity,
        kernel=kernel, parallel=parallel, customizer=customizer,
    )


#: one supercell clique arc: restricted distance between two
#: super-boundary nodes, its level-1 boundary-index chain, and the
#: level-1 via kinds of each chain arc (for path stitching).
_SuperArc = namedtuple("_SuperArc", ("distance", "chain", "kinds"))


def _super_customize(
    offsets, targets, weights, kinds, members, sboundary, stats
) -> dict:
    """Compute one supercell's pruned super-boundary clique.

    One restricted Dijkstra per super-boundary node, over the level-1
    overlay arcs whose heads stay inside the supercell — the exact
    analogue of :meth:`OverlayGraph._customize_cell` one level up.  An
    arc whose tree path runs through another super-boundary node of the
    supercell (strictly positive prefix and remainder) is pruned; the
    surviving arcs compose to the same distances.
    """
    mset = frozenset(members)
    sbset = frozenset(sboundary)
    clique: dict[int, dict[int, _SuperArc]] = {}
    settled = relaxed = pushes = 0
    maxd = 0.0
    for b in sboundary:
        dist: dict[int, float] = {b: 0.0}
        parent: dict[int, int] = {}
        via: dict[int, int] = {}
        done: set[int] = set()
        remaining = len(sbset)
        heap: list[tuple[float, int]] = [(0.0, b)]
        pushes += 1
        while heap and remaining:
            d, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            settled += 1
            if d > maxd:
                maxd = d
            if u in sbset:
                remaining -= 1
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                if v not in mset:
                    continue
                relaxed += 1
                nd = d + weights[e]
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    parent[v] = u
                    via[v] = kinds[e]
                    heappush(heap, (nd, v))
                    pushes += 1
        kept: dict[int, _SuperArc] = {}
        for b2 in sboundary:
            if b2 == b or b2 not in done:
                continue
            chain = [b2]
            node = b2
            while node != b:
                node = parent[node]
                chain.append(node)
            chain.reverse()
            total = dist[b2]
            if any(
                m in sbset and 0.0 < dist[m] < total for m in chain[1:-1]
            ):
                continue
            kept[b2] = _SuperArc(
                total, tuple(chain), tuple(via[n] for n in chain[1:])
            )
        clique[b] = kept
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    return clique


class NestedOverlayGraph(OverlayGraph):
    """Two-level overlay: the boundary graph is itself partitioned.

    Level 1 is byte-identical to :class:`OverlayGraph` — same
    partition, same cliques, same :func:`dumps_overlay` text.  On top of
    it, the boundary graph is partitioned into *supercells* aligned on
    whole base cells: the cell-quotient graph (cells adjacent when a
    cut edge joins them — structure only, deliberately
    weight-independent, so the super-partition survives re-weighting
    exactly like the base partition) goes through
    :func:`repro.network.partition.partition_adjacency`, and a
    supercell's members are all boundary nodes of its cells.  Aligning
    on cells means clique arcs never cross supercells, so the
    *super-boundary* — members with a cut arc leaving the supercell —
    is just the supercell's perimeter, a small fraction of its
    boundary nodes.  Each supercell gets a pruned clique between its
    super-boundary nodes computed over the level-1 overlay arcs
    restricted to the supercell.

    Point queries then run the mixed sweep
    (:func:`repro.search.kernels.nested_overlay_sweep`): level-1 arcs
    inside the source/target supercells, supercell cliques plus
    cross-supercell arcs everywhere else — settling
    O(boundary-of-boundary) nodes outside the endpoint regions instead
    of walking the whole boundary graph.  Distances are exact (the
    standard CRP argument; the engine-conformance harness checks the
    registered ``"overlay-nested"`` engine against plain Dijkstra).

    :meth:`recustomized` stays cell-local on both levels: untouched
    base cells share their cliques as before, and only supercells whose
    members' overlay arcs could have changed are re-customized — the
    rest share their super-clique tables with this instance.

    Attributes
    ----------
    super_capacity:
        Supercell capacity in *base cells* (defaults to
        :func:`~repro.network.partition.default_cell_capacity` of the
        cell count).
    sup:
        The cell-quotient :class:`~repro.network.partition.Partition`
        (node ids are base-cell indices).
    sup_cliques:
        ``sup_cliques[sc][b][b2]`` is the ``_SuperArc`` from
        super-boundary index ``b`` to ``b2`` of supercell ``sc``.
    top_offsets, top_targets, top_weights, top_kinds:
        CSR adjacency over boundary indices at the top level: supercell
        clique arcs (kind ``-2 - sc``) and cross-supercell cut arcs
        (their level-1 kind).
    customized_supercells:
        How many supercells this instance customized itself.
    """

    __slots__ = (
        "super_capacity",
        "sup",
        "sup_cliques",
        "top_offsets",
        "top_targets",
        "top_weights",
        "top_kinds",
        "customized_supercells",
        "_sup_of",
        "_sup_members",
        "_sup_sboundary",
        "_top_np",
        "_bxy_np",
        "_reuse",
    )

    def __init__(
        self,
        network,
        partition: Partition,
        kernel: str,
        cliques: list[dict],
        cell_csr: list,
        cell_rcsr: list,
        customize_stats: SearchStats,
        customized_cells: int,
        metric: bool | None = None,
        super_capacity: int | None = None,
        _reuse: tuple | None = None,
        _customizer=None,
    ) -> None:
        # Set before super().__init__ — the base constructor runs
        # _assemble, which our override extends with the supercell level.
        self.super_capacity = super_capacity
        self._reuse = _reuse
        super().__init__(
            network, partition, kernel, cliques, cell_csr, cell_rcsr,
            customize_stats, customized_cells, metric=metric,
            _customizer=_customizer,
        )
        self._reuse = None

    # ------------------------------------------------------------------
    # Construction / customization
    # ------------------------------------------------------------------
    def _assemble(self, metric: bool | None = None) -> None:
        """Freeze level 1, then partition and customize the boundary graph."""
        super()._assemble(metric)
        self._assemble_super()

    def _cell_quotient(self) -> tuple[list, list[float], list[float]]:
        """The weight-independent cell-quotient graph plus cell centroids.

        Cells are adjacent when a cut edge joins them; the adjacency
        comes from :attr:`Partition.cut_edges` (structure only), so
        re-weighting cannot move the super-partition.
        """
        partition = self.partition
        adj: list[set[int]] = [set() for _ in range(partition.num_cells)]
        cell_of = partition.cell_of
        for u, v in partition.cut_edges:
            cu, cv = cell_of[u], cell_of[v]
            adj[cu].add(cv)
            adj[cv].add(cu)
        network = self.network
        xs: list[float] = []
        ys: list[float] = []
        for members in partition.cells:
            xs.append(
                sum(network.position(m).x for m in members) / len(members)
            )
            ys.append(
                sum(network.position(m).y for m in members) / len(members)
            )
        return [sorted(neighbors) for neighbors in adj], xs, ys

    def _assemble_super(self) -> None:
        """Partition the cell-quotient graph and customize every supercell."""
        reuse = self._reuse
        old = affected = None
        if reuse is not None:
            old, affected = reuse
            if self.super_capacity is None:
                self.super_capacity = old.super_capacity
            self.sup = old.sup
        else:
            adj, cxs, cys = self._cell_quotient()
            self.sup = partition_adjacency(
                adj, xs=cxs, ys=cys, cell_capacity=self.super_capacity
            )
            if self.super_capacity is None:
                self.super_capacity = self.sup.cell_capacity
        partition = self.partition
        index = self.boundary_index
        num = len(self.boundary_ids)
        sup_of = [0] * num
        for sc, cells in enumerate(self.sup.cells):
            for cell in cells:
                for b in partition.boundary[cell]:
                    sup_of[index[b]] = sc
        # Super-boundary: members with a cut arc leaving the supercell
        # (clique arcs never cross supercells — they are cell-internal,
        # and supercells are unions of whole cells).
        is_sb = bytearray(num)
        offsets, targets, kinds = (
            self.over_offsets, self.over_targets, self.over_kinds
        )
        for b in range(num):
            for e in range(offsets[b], offsets[b + 1]):
                if kinds[e] < 0 and sup_of[targets[e]] != sup_of[b]:
                    is_sb[b] = 1
                    is_sb[targets[e]] = 1
        members: list[list[int]] = [[] for _ in range(self.sup.num_cells)]
        sboundary: list[list[int]] = [[] for _ in range(self.sup.num_cells)]
        for b in range(num):
            members[sup_of[b]].append(b)
            if is_sb[b]:
                sboundary[sup_of[b]].append(b)
        self._sup_of = sup_of
        self._sup_members = [tuple(m) for m in members]
        self._sup_sboundary = [tuple(sb) for sb in sboundary]
        todo = [
            sc for sc in range(self.sup.num_cells)
            if old is None or affected is None or sc in affected
        ]
        # Fan the supercell cliques out to the same worker pool as the
        # cell pass when a customizer is live for this construction (a
        # parallel full build, or a pooled recustomize whose churn spans
        # more than one supercell).  Results are byte-identical — the
        # workers run _super_customize over a spilled copy of the very
        # arrays used here.
        computed: dict = {}
        if self._customizer is not None and len(todo) > 1:
            computed = self._customizer.customize_super(
                (self.over_offsets, self.over_targets,
                 self.over_weights, self.over_kinds),
                self._sup_members, self._sup_sboundary, todo,
                self.customize_stats,
            )
        sup_cliques: list[dict] = []
        customized = 0
        for sc in range(self.sup.num_cells):
            if old is not None and affected is not None and sc not in affected:
                sup_cliques.append(old.sup_cliques[sc])
                continue
            clique = computed.get(sc)
            if clique is None:
                clique = _super_customize(
                    self.over_offsets, self.over_targets,
                    self.over_weights, self.over_kinds,
                    self._sup_members[sc], self._sup_sboundary[sc],
                    self.customize_stats,
                )
            sup_cliques.append(clique)
            customized += 1
        self.sup_cliques = sup_cliques
        self.customized_supercells = customized
        self._assemble_top(is_sb)

    def _assemble_top(self, is_sb: bytearray) -> None:
        """Freeze the top level into flat CSR arrays over boundary indices."""
        num = len(self.boundary_ids)
        sup_of = self._sup_of
        offsets = [0]
        targets: list[int] = []
        weights: list[float] = []
        kinds: list[int] = []
        for b in range(num):
            if is_sb[b]:
                sc = sup_of[b]
                for b2, arc in self.sup_cliques[sc][b].items():
                    targets.append(b2)
                    weights.append(arc.distance)
                    kinds.append(-2 - sc)
                for e in range(self.over_offsets[b], self.over_offsets[b + 1]):
                    t = self.over_targets[e]
                    if sup_of[t] != sc:
                        targets.append(t)
                        weights.append(self.over_weights[e])
                        kinds.append(self.over_kinds[e])
            offsets.append(len(targets))
        self.top_offsets = offsets
        self.top_targets = targets
        self.top_weights = weights
        self.top_kinds = kinds
        # Numpy mirrors for the vectorized relax path of
        # nested_overlay_sweep; plain lists stay authoritative so the
        # engine runs (and round-trips) identically without numpy.
        if _np is not None:
            self._top_np = (
                _np.asarray(targets, dtype=_np.intp),
                _np.asarray(weights, dtype=_np.float64),
            )
            self._bxy_np = (
                _np.asarray(self._bxs, dtype=_np.float64),
                _np.asarray(self._bys, dtype=_np.float64),
            )
        else:
            self._top_np = None
            self._bxy_np = None

    def _rebuilt(
        self, network, cliques, cell_csr, cell_rcsr, stats, touched,
        metric, changed_edges, customizer=None,
    ) -> "NestedOverlayGraph":
        """Recustomized copy sharing unaffected supercell tables."""
        return type(self)(
            network, self.partition, self.kernel, cliques, cell_csr,
            cell_rcsr, stats, len(touched), metric=metric,
            super_capacity=self.super_capacity,
            _reuse=(self, self._affected_supercells(touched, changed_edges)),
            _customizer=customizer,
        )

    def _affected_supercells(self, touched, changed_edges):
        """Supercells whose restricted arcs a recustomization may change.

        A touched base cell re-weights its boundary nodes' clique arcs,
        so its supercell is affected; a changed *cut* edge re-weights
        one overlay arc directly, affecting its supercell when both
        endpoint cells share one (cross-supercell arcs live only in the
        always-rebuilt top arrays).  ``None`` (unknown changed edges —
        cut-arc weights are re-read unconditionally, so any of them may
        have moved) rebuilds every supercell.
        """
        if changed_edges is None:
            return None
        sup_of_cell = self.sup.cell_of
        affected = {sup_of_cell[cell] for cell in touched}
        cell_of = self.partition.cell_of
        for edge in changed_edges:
            u, v = edge[0], edge[1]
            cu = cell_of.get(u)
            cv = cell_of.get(v)
            if cu == cv:
                continue  # intra-cell: covered by touched above
            if cu is not None and cv is not None:
                su = sup_of_cell[cu]
                if su == sup_of_cell[cv]:
                    affected.add(su)
        return affected

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_supercells(self) -> int:
        """Number of supercells in the boundary-graph partition."""
        return self.sup.num_cells

    @property
    def num_super_boundary_nodes(self) -> int:
        """Boundary nodes participating in the top level."""
        return sum(len(sb) for sb in self._sup_sboundary)

    @property
    def num_top_arcs(self) -> int:
        """Arcs in the top-level adjacency (super cliques + cross arcs)."""
        return len(self.top_targets)

    def __repr__(self) -> str:
        return (
            f"NestedOverlayGraph(kernel={self.kernel!r}, "
            f"cells={self.num_cells}, boundary={self.num_boundary_nodes}, "
            f"supercells={self.num_supercells}, "
            f"super_boundary={self.num_super_boundary_nodes}, "
            f"top_arcs={self.num_top_arcs})"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _active_for(self, indices: Iterable[int]) -> bytearray:
        """Level-1 flags for every member of the given indices' supercells."""
        active = bytearray(len(self.boundary_ids))
        sup_of = self._sup_of
        for sc in {sup_of[i] for i in indices}:
            for m in self._sup_members[sc]:
                active[m] = 1
        return active

    def route(
        self,
        source: NodeId,
        destination: NodeId,
        stats: SearchStats | None = None,
    ) -> PathResult:
        """Two-phase point query with the mixed two-level sweep.

        Raises
        ------
        NoPathError
            If the destination is unreachable.
        UnknownNodeError
            If either endpoint is missing from the network.
        """
        if stats is None:
            stats = SearchStats()
        cs = self.partition.cell_index(source)
        ct = self.partition.cell_index(destination)
        if source == destination:
            return PathResult(source, source, (source,), 0.0)
        rec = _obs_record.RECORDER
        if rec is not None:
            rec.record("overlay_route", cells=(cs,) if ct == cs else (cs, ct))
        extra = (destination,) if ct == cs else ()
        fwd = self._local_forward(cs, source, extra, stats)
        bwd = self._local_backward(ct, destination, stats)
        direct = fwd.get(destination) if ct == cs else None
        index = self.boundary_index
        seeds = []
        for b in self.partition.boundary[cs]:
            path = fwd.get(b)
            if path is not None:
                seeds.append((index[b], path.distance))
        target_offsets = {index[b]: path.distance for b, path in bwd.items()}
        active = self._active_for(
            [i for i, _offset in seeds] + list(target_offsets)
        )
        goal = None
        if self.metric:
            p = self.network.position(destination)
            goal = (p.x, p.y)
        best, meet, _dist, parent, via, _done = nested_overlay_sweep(
            (self.over_offsets, self.over_targets,
             self.over_weights, self.over_kinds),
            (self.top_offsets, self.top_targets,
             self.top_weights, self.top_kinds),
            active, seeds,
            num_nodes=len(self.boundary_ids),
            target_offsets=target_offsets,
            best_bound=direct.distance if direct is not None else _INF,
            stats=stats,
            goal=goal,
            xs=self._bxs,
            ys=self._bys,
            top_np=self._top_np,
            xy_np=self._bxy_np,
        )
        if meet < 0:
            if direct is not None:
                return direct
            raise NoPathError(source, destination)
        return self._stitch(source, destination, fwd, bwd, best, meet, parent, via)

    def many_to_many(
        self,
        sources: Sequence[NodeId],
        destinations: Sequence[NodeId],
        stats: SearchStats | None = None,
    ) -> dict[tuple[NodeId, NodeId], PathResult]:
        """All-pairs shortest paths with per-source mixed sweeps.

        Mirrors :meth:`OverlayGraph.many_to_many`; every destination
        cell's supercells stay active in every sweep so the settled
        distances read off for each target are exact.
        """
        if stats is None:
            stats = SearchStats()
        partition = self.partition
        index = self.boundary_index
        src_cells = {s: partition.cell_index(s) for s in sources}
        dst_cells = {t: partition.cell_index(t) for t in destinations}
        rec = _obs_record.RECORDER
        if rec is not None:
            rec.record(
                "overlay_msmd",
                cells=set(src_cells.values()) | set(dst_cells.values()),
            )
        backs = {
            t: self._local_backward(dst_cells[t], t, stats)
            for t in destinations
        }
        dst_idx = [
            index[b] for bwd in backs.values() for b in bwd
        ]
        results: dict[tuple[NodeId, NodeId], PathResult] = {}
        for s in sources:
            cs = src_cells[s]
            extra = tuple(t for t in destinations if dst_cells[t] == cs)
            fwd = self._local_forward(cs, s, extra, stats)
            seeds = []
            for b in partition.boundary[cs]:
                path = fwd.get(b)
                if path is not None:
                    seeds.append((index[b], path.distance))
            active = self._active_for(
                [i for i, _offset in seeds] + dst_idx
            )
            _best, _meet, dist, parent, via, done = nested_overlay_sweep(
                (self.over_offsets, self.over_targets,
                 self.over_weights, self.over_kinds),
                (self.top_offsets, self.top_targets,
                 self.top_weights, self.top_kinds),
                active, seeds,
                num_nodes=len(self.boundary_ids),
                target_offsets=None,
                stats=stats,
                top_np=self._top_np,
            )
            for t in destinations:
                direct = fwd.get(t) if dst_cells[t] == cs else None
                best = direct.distance if direct is not None else _INF
                meet = -1
                bwd = backs[t]
                for b, tail in bwd.items():
                    bi = index[b]
                    if done[bi]:
                        candidate = float(dist[bi]) + tail.distance
                        if candidate < best:
                            best = candidate
                            meet = bi
                if meet >= 0:
                    results[(s, t)] = self._stitch(
                        s, t, fwd, bwd, best, meet, parent, via
                    )
                elif direct is not None:
                    results[(s, t)] = direct
        return results

    def _stitch(
        self, source, destination, fwd, bwd, best, meet, parent, via
    ) -> PathResult:
        """Expand a mixed two-level tree chain into a full node path."""
        chain = [meet]
        node = meet
        while parent[node] >= 0:
            node = parent[node]
            chain.append(node)
        chain.reverse()
        # Flatten supercell clique arcs into their level-1 chains, then
        # splice exactly like the flat overlay.
        flat = [chain[0]]
        flat_kinds: list[int] = []
        for prev, curr in zip(chain, chain[1:]):
            kind = via[curr]
            if kind <= -2:
                arc = self.sup_cliques[-2 - kind][prev][curr]
                flat.extend(arc.chain[1:])
                flat_kinds.extend(arc.kinds)
            else:
                flat.append(curr)
                flat_kinds.append(kind)
        ids = self.boundary_ids
        nodes = list(fwd[ids[flat[0]]].nodes)
        for prev, curr, kind in zip(flat, flat[1:], flat_kinds):
            if kind < 0:  # cut arc: a real edge
                nodes.append(ids[curr])
            else:  # clique arc: splice the stored intra-cell path
                nodes.extend(self.cliques[kind][ids[prev]][ids[curr]].nodes[1:])
        nodes.extend(bwd[ids[meet]].nodes[1:])
        return PathResult(
            source=source,
            destination=destination,
            nodes=tuple(nodes),
            distance=best,
        )


def build_nested_overlay(
    network,
    partition: Partition | None = None,
    cell_capacity: int | None = None,
    kernel: str = "csr",
    super_capacity: int | None = None,
    parallel: int | None = None,
    customizer=None,
) -> NestedOverlayGraph:
    """Build a :class:`NestedOverlayGraph` (non-memoized entry point).

    ``parallel``/``customizer`` fan both customization passes — cell
    cliques and supercell cliques — out to a worker pool (see
    :meth:`OverlayGraph.build`).
    """
    return NestedOverlayGraph.build(
        network,
        partition=partition,
        cell_capacity=cell_capacity,
        kernel=kernel,
        super_capacity=super_capacity,
        parallel=parallel,
        customizer=customizer,
    )


# Per-network memo: network -> (version, {(kernel, capacity): weakref}).
# The overlays are held *weakly*: an OverlayGraph strongly references its
# network, so a strong global cache would pin every network (and its
# overlay) for process lifetime — the classic WeakKeyDictionary
# value-references-key leak.  Callers that want reuse hold the snapshot
# (the engine registry's prepare/route contract and the serving layer's
# PreprocessingCache both do).
_OVERLAYS: "WeakKeyDictionary[object, tuple[int, dict]]" = WeakKeyDictionary()
_OVERLAY_LOCK = threading.Lock()


def overlay_snapshot(
    network,
    kernel: str = "dict",
    cell_capacity: int | None = None,
) -> OverlayGraph:
    """The (memoized) :class:`OverlayGraph` of ``network``.

    Memoized against the network's ``version`` mutation stamp like
    :func:`~repro.network.csr.csr_snapshot`, for as long as *some*
    caller still holds the snapshot (the memo is weak; see above); any
    mutation triggers a full rebuild on the next call — use
    :meth:`OverlayGraph.recustomized` (e.g. via
    :meth:`repro.service.serving.ServingStack.reweight`) to pay only
    for the touched cells instead.
    """
    import weakref

    version = getattr(network, "version", None)
    if version is None:
        return build_overlay(network, cell_capacity=cell_capacity, kernel=kernel)
    key = (kernel, cell_capacity)
    with _OVERLAY_LOCK:
        memo = _OVERLAYS.get(network)
        if memo is not None and memo[0] == version:
            ref = memo[1].get(key)
            overlay = ref() if ref is not None else None
            if overlay is not None:
                return overlay
    overlay = build_overlay(network, cell_capacity=cell_capacity, kernel=kernel)
    with _OVERLAY_LOCK:
        memo = _OVERLAYS.get(network)
        if memo is None or memo[0] != version:
            memo = (version, {})
            _OVERLAYS[network] = memo
        memo[1][key] = weakref.ref(overlay)
    return overlay


def nested_overlay_snapshot(
    network,
    kernel: str = "csr",
    cell_capacity: int | None = None,
    super_capacity: int | None = None,
) -> NestedOverlayGraph:
    """The (memoized) :class:`NestedOverlayGraph` of ``network``.

    Same weak, version-stamped memo as :func:`overlay_snapshot` (the
    key spaces are disjoint, so flat and nested overlays of one network
    coexist); use :meth:`NestedOverlayGraph.recustomized` after
    re-weighting to pay only for the touched cells and supercells.
    """
    import weakref

    version = getattr(network, "version", None)
    if version is None:
        return build_nested_overlay(
            network, cell_capacity=cell_capacity, kernel=kernel,
            super_capacity=super_capacity,
        )
    key = ("nested", kernel, cell_capacity, super_capacity)
    with _OVERLAY_LOCK:
        memo = _OVERLAYS.get(network)
        if memo is not None and memo[0] == version:
            ref = memo[1].get(key)
            overlay = ref() if ref is not None else None
            if overlay is not None:
                return overlay
    overlay = build_nested_overlay(
        network, cell_capacity=cell_capacity, kernel=kernel,
        super_capacity=super_capacity,
    )
    with _OVERLAY_LOCK:
        memo = _OVERLAYS.get(network)
        if memo is None or memo[0] != version:
            memo = (version, {})
            _OVERLAYS[network] = memo
        memo[1][key] = weakref.ref(overlay)
    return overlay


# ----------------------------------------------------------------------
# MSMD processors (registered in repro.search.multi.get_processor)
# ----------------------------------------------------------------------
class OverlayProcessor(PreprocessingProcessor):
    """Partition-overlay MSMD processor (``"overlay"``).

    The per-network artifact is the customized :class:`OverlayGraph`
    (built once, shared via the serving layer's
    :class:`~repro.service.cache.PreprocessingCache`).  Matches the CH
    processors' batch contract: an unreachable pair raises
    :class:`~repro.exceptions.NoPathError`.
    """

    name = "overlay"
    _kernel = "dict"

    def __init__(
        self,
        overlay: OverlayGraph | None = None,
        cell_capacity: int | None = None,
    ) -> None:
        super().__init__(artifact=overlay)
        self._cell_capacity = cell_capacity

    def _build(self, network) -> OverlayGraph:
        return overlay_snapshot(
            network, kernel=self._kernel, cell_capacity=self._cell_capacity
        )

    def overlay_for(self, network) -> OverlayGraph:
        """The overlay answering queries over ``network``."""
        return self.artifact_for(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        """Answer S x T via local searches plus overlay sweeps."""
        _validate(sources, destinations)
        overlay = self.overlay_for(network)
        result = MSMDResult()
        paths = overlay.many_to_many(sources, destinations, stats=result.stats)
        for s in sources:
            for t in destinations:
                path = paths.get((s, t))
                if path is None:
                    raise NoPathError(s, t)
                result.paths[(s, t)] = path
        result.searches = len(sources) + len(destinations)
        return result


class CSROverlayProcessor(OverlayProcessor):
    """Flat-kernel partition-overlay processor (``"overlay-csr"``).

    Identical strategy and distances to :class:`OverlayProcessor`; the
    local cell phases run on per-cell CSR snapshots with the pooled
    index-space kernels instead of dict searches.
    """

    name = "overlay-csr"
    _kernel = "csr"


class NestedOverlayProcessor(OverlayProcessor):
    """Two-level nested-overlay MSMD processor (``"overlay-nested"``).

    Identical batch contract and distances to :class:`OverlayProcessor`;
    the per-network artifact is the :class:`NestedOverlayGraph`, whose
    sweeps skip interior boundary nodes of every supercell the query's
    endpoints do not touch.
    """

    name = "overlay-nested"
    _kernel = "csr"

    def _build(self, network) -> NestedOverlayGraph:
        return nested_overlay_snapshot(
            network, kernel=self._kernel, cell_capacity=self._cell_capacity
        )


# ----------------------------------------------------------------------
# Persistence (text format; integer node ids, like repro.network.io)
# ----------------------------------------------------------------------
def dumps_overlay(overlay: OverlayGraph) -> str:
    """Serialize an overlay (partition + cliques) to a string.

    The format carries everything customization computed, so loading
    skips the clique searches entirely.  Node ids must be integers (the
    same restriction as :mod:`repro.network.io`).  Two overlays with
    identical partitions and cliques serialize byte-identically — the
    equality witness the recustomization property tests rely on.
    """
    from repro.network.io import partition_cell_lines

    lines = ["# repro overlay v1"]
    lines.append(f"kernel {overlay.kernel}")
    lines.append(f"capacity {overlay.partition.cell_capacity}")
    lines.extend(partition_cell_lines(overlay.partition))
    for cell, clique in enumerate(overlay.cliques):
        for b in overlay.partition.boundary[cell]:
            for path in clique[b].values():
                nodes = " ".join(str(n) for n in path.nodes)
                lines.append(f"clique {cell} {path.distance!r} {nodes}")
    return "\n".join(lines) + "\n"


def loads_overlay(text: str, network) -> OverlayGraph:
    """Rebuild an overlay serialized by :func:`dumps_overlay`.

    ``network`` must have the same content (nodes, edges) the overlay
    was customized for — the serving layer guarantees this by keying
    spill files on the network fingerprint.

    Raises
    ------
    GraphError
        For malformed input or a partition that does not match
        ``network``.
    """
    import io as _io

    return _read_overlay(_io.StringIO(text), network)


def write_overlay(overlay: OverlayGraph, path: str | os.PathLike[str]) -> None:
    """Write an overlay to ``path`` in the text format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_overlay(overlay))


def read_overlay(path: str | os.PathLike[str], network) -> OverlayGraph:
    """Read an overlay previously written by :func:`write_overlay`."""
    with open(path, "r", encoding="utf-8") as fh:
        return _read_overlay(fh, network)


def _read_overlay(fh: TextIO, network) -> OverlayGraph:
    kernel: str | None = None
    capacity: int | None = None
    cells: list[tuple[int, list[int]]] = []
    clique_lines: list[tuple[int, float, list[int]]] = []
    for line_no, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "kernel":
                if kernel is not None:
                    raise GraphError("duplicate 'kernel' header")
                if fields[1] not in _KERNELS:
                    raise GraphError(f"unknown overlay kernel {fields[1]!r}")
                kernel = fields[1]
            elif kind == "capacity":
                if capacity is not None:
                    raise GraphError("duplicate 'capacity' header")
                capacity = int(fields[1])
            elif kind == "cell":
                cells.append((int(fields[1]), [int(f) for f in fields[2:]]))
            elif kind == "clique":
                clique_lines.append(
                    (int(fields[1]), float(fields[2]),
                     [int(f) for f in fields[3:]])
                )
            else:
                raise GraphError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise GraphError(f"malformed line {line_no}: {line!r}") from exc
    from repro.network.io import parse_partition_cells

    if kernel is None or capacity is None:
        raise GraphError("missing overlay 'kernel' or 'capacity' header")
    partition = parse_partition_cells(cells, network, capacity)
    cliques: list[dict] = [
        {b: {} for b in boundary} for boundary in partition.boundary
    ]
    for cell, distance, nodes in clique_lines:
        if not 0 <= cell < partition.num_cells or len(nodes) < 2:
            raise GraphError(f"malformed clique record for cell {cell}")
        b, b2 = nodes[0], nodes[-1]
        if b not in cliques[cell] or b2 not in cliques[cell]:
            raise GraphError(
                f"clique endpoints {b}, {b2} are not boundary nodes of "
                f"cell {cell}"
            )
        cliques[cell][b][b2] = PathResult(
            source=b, destination=b2, nodes=tuple(nodes), distance=distance
        )
    cell_csr: list = []
    cell_rcsr: list = []
    for cell in range(partition.num_cells):
        fcsr, rcsr = OverlayGraph._cell_graphs(network, partition, cell, kernel)
        cell_csr.append(fcsr)
        cell_rcsr.append(rcsr)
    return OverlayGraph(
        network, partition, kernel, cliques, cell_csr, cell_rcsr,
        SearchStats(), 0,
    )
